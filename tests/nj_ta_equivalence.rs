//! Integration test: the lineage-aware window approach (NJ) and the
//! Temporal Alignment baseline (TA) must produce identical results for every
//! TP join with negation, on randomized workloads from every generator.

use tpdb::core::{
    tp_anti_join, tp_full_outer_join, tp_inner_join, tp_left_outer_join, tp_right_outer_join,
    ThetaCondition,
};
use tpdb::storage::TpRelation;
use tpdb::ta::{
    ta_anti_join, ta_full_outer_join, ta_inner_join, ta_left_outer_join, ta_right_outer_join,
};

/// Canonical form of a join result: facts, interval and probability rounded
/// to 1e-9, sorted. (Lineage *syntax* may legitimately differ between the
/// two systems; semantics — and therefore probabilities — may not.)
fn canon(rel: &TpRelation) -> Vec<(Vec<String>, i64, i64, i64)> {
    let mut rows: Vec<(Vec<String>, i64, i64, i64)> = rel
        .iter()
        .map(|t| {
            (
                t.facts().iter().map(|v| v.to_string()).collect(),
                t.interval().start(),
                t.interval().end(),
                (t.probability() * 1e9).round() as i64,
            )
        })
        .collect();
    rows.sort();
    rows
}

fn assert_equivalent(r: &TpRelation, s: &TpRelation, theta: &ThetaCondition, label: &str) {
    let pairs: [(&str, TpRelation, TpRelation); 5] = [
        (
            "inner",
            tp_inner_join(r, s, theta).unwrap(),
            ta_inner_join(r, s, theta).unwrap(),
        ),
        (
            "anti",
            tp_anti_join(r, s, theta).unwrap(),
            ta_anti_join(r, s, theta).unwrap(),
        ),
        (
            "left outer",
            tp_left_outer_join(r, s, theta).unwrap(),
            ta_left_outer_join(r, s, theta).unwrap(),
        ),
        (
            "right outer",
            tp_right_outer_join(r, s, theta).unwrap(),
            ta_right_outer_join(r, s, theta).unwrap(),
        ),
        (
            "full outer",
            tp_full_outer_join(r, s, theta).unwrap(),
            ta_full_outer_join(r, s, theta).unwrap(),
        ),
    ];
    for (kind, nj, ta) in pairs {
        assert_eq!(
            canon(&nj),
            canon(&ta),
            "NJ and TA disagree on the {kind} join of the {label} workload"
        );
    }
}

#[test]
fn equivalence_on_webkit_like_workloads() {
    for seed in [1, 2, 3] {
        let (r, s) = tpdb::datagen::webkit_like(400, seed);
        let theta = ThetaCondition::column_equals("Key", "Key");
        assert_equivalent(&r, &s, &theta, &format!("webkit-like (seed {seed})"));
    }
}

#[test]
fn equivalence_on_meteo_like_workloads() {
    for seed in [1, 2] {
        let (r, s) = tpdb::datagen::meteo_like(300, seed);
        let theta = ThetaCondition::column_equals("Metric", "Metric");
        assert_equivalent(&r, &s, &theta, &format!("meteo-like (seed {seed})"));
    }
}

#[test]
fn equivalence_on_skewed_workloads() {
    use tpdb::datagen::{zipf, GeneratorConfig};
    let r = zipf(
        &GeneratorConfig::new("zr", 300)
            .with_seed(11)
            .with_distinct_keys(12),
        1.1,
    );
    let s = zipf(
        &GeneratorConfig::new("zs", 300)
            .with_seed(12)
            .with_distinct_keys(12),
        1.1,
    );
    let theta = ThetaCondition::column_equals("Key", "Key");
    assert_equivalent(&r, &s, &theta, "zipf");
}

#[test]
fn equivalence_under_non_selective_theta() {
    // θ = true: every temporally overlapping pair matches — the worst case
    // for both systems, and the one where window grouping is stressed most.
    let (r, s) = tpdb::datagen::webkit_like(120, 5);
    let theta = ThetaCondition::always();
    assert_equivalent(&r, &s, &theta, "θ=true");
}

#[test]
fn equivalence_with_asymmetric_cardinalities() {
    let (r, _) = tpdb::datagen::webkit_like(300, 8);
    let (_, s) = tpdb::datagen::webkit_like(60, 9);
    let theta = ThetaCondition::column_equals("Key", "Key");
    assert_equivalent(&r, &s, &theta, "asymmetric");
}
