//! Property tests for the query-layer TP set operations: for random
//! union-compatible relations and adversarial data, `UNION` / `INTERSECT`
//! / `EXCEPT` executed through the query layer are **byte-identical** to
//! the core `tp_union` / `tp_intersection` / `tp_difference` functions —
//! under serial and parallel plans, and through every session path
//! (one-shot text, prepared-then-bound, drained cursor).
//!
//! The generators reuse the adversarial shapes of the plan-equivalence
//! suite (dense keys, shared endpoints, single-point intervals).

use proptest::prelude::*;
use tpdb::core::{tp_difference, tp_intersection, tp_union, TpSetOpKind, TpSetOpStream};
use tpdb::lineage::{Lineage, ProbabilityEngine, VarId};
use tpdb::prelude::Session;
use tpdb::storage::{Catalog, DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

const KEYWORDS: [(&str, TpSetOpKind); 3] = [
    ("UNION", TpSetOpKind::Union),
    ("INTERSECT", TpSetOpKind::Intersection),
    ("EXCEPT", TpSetOpKind::Difference),
];

/// Builds a duplicate-free single-key relation from raw `(key, start,
/// duration)` rows, skipping rows that would overlap an existing same-key
/// interval (the TP duplicate-free constraint).
fn build(name: &str, var_offset: u32, rows: &[(i64, i64, i64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
    let mut var = var_offset;
    for (key, start, duration) in rows {
        let interval = Interval::new(*start, *start + *duration);
        if rel
            .iter()
            .any(|t| t.fact(0) == &Value::Int(*key) && t.interval().overlaps(&interval))
        {
            continue;
        }
        let prob = 0.15 + 0.08 * f64::from(var % 10);
        rel.push(TpTuple::new(
            vec![Value::Int(*key)],
            Lineage::var(VarId(var)),
            interval,
            prob,
        ))
        .unwrap();
        var += 1;
    }
    rel
}

/// The reference result of a set operation computed directly by the core
/// functions.
fn core_reference(kind: TpSetOpKind, r: &TpRelation, s: &TpRelation) -> TpRelation {
    match kind {
        TpSetOpKind::Union => tp_union(r, s).unwrap(),
        TpSetOpKind::Intersection => tp_intersection(r, s).unwrap(),
        TpSetOpKind::Difference => tp_difference(r, s).unwrap(),
    }
}

/// Keeps only the tuples with `k >= threshold` (the manual counterpart of
/// the `WHERE k >= $1` branch filters).
fn filtered(rel: &TpRelation, threshold: i64) -> TpRelation {
    let mut out = TpRelation::new(rel.name(), rel.schema().clone());
    for t in rel.iter() {
        if let Value::Int(k) = t.fact(0) {
            if *k >= threshold {
                out.push_unchecked(t.clone());
            }
        }
    }
    out
}

/// Asserts that every query-layer path produces exactly the core result,
/// for all three set operations, serial and parallel.
fn assert_setops_identical(r: &TpRelation, s: &TpRelation, threshold: i64) {
    let mut catalog = Catalog::new();
    catalog.register(r.clone()).unwrap();
    catalog.register(s.clone()).unwrap();
    let session = Session::new(catalog);

    for (kw, kind) in KEYWORDS {
        let reference = core_reference(kind, r, s);
        let plain_text = format!("SELECT * FROM r {kw} SELECT * FROM s");

        // One-shot text, serial and parallel set-op plans. The session
        // default parallelism also exercises whatever the host offers.
        for suffix in [
            "",
            " PARALLEL 1",
            " PARALLEL 2",
            " PARALLEL 4",
            " PARALLEL 7",
        ] {
            let result = session.execute(&format!("{plain_text}{suffix}")).unwrap();
            assert_eq!(
                result.tuples(),
                reference.tuples(),
                "{kw}{suffix}: one-shot vs core"
            );
            assert_eq!(result.schema(), reference.schema(), "{kw}{suffix}: schema");
        }

        // Prepared-then-bound: the branches filter on $1; the core
        // reference runs on manually pre-filtered inputs.
        let param_text =
            format!("SELECT * FROM r WHERE k >= $1 {kw} SELECT * FROM s WHERE k >= $1");
        let stmt = session.prepare(&param_text).unwrap();
        let params = [Value::Int(threshold)];
        let bound = stmt.execute(&params).unwrap();
        let bound_again = stmt.execute(&params).unwrap();
        let filtered_reference =
            core_reference(kind, &filtered(r, threshold), &filtered(s, threshold));
        assert_eq!(
            bound.tuples(),
            filtered_reference.tuples(),
            "{kw}: prepared-bound vs core on filtered inputs"
        );
        assert_eq!(bound_again, bound, "{kw}: prepared re-execution");

        // Drained cursors agree with the materializing paths, both via
        // collect() and a manual tuple-by-tuple drain.
        let collected = session.query(&plain_text).unwrap().collect().unwrap();
        assert_eq!(
            collected.tuples(),
            reference.tuples(),
            "{kw}: cursor collect vs core"
        );
        let mut cursor = stmt.query(&params).unwrap();
        let mut manual = Vec::new();
        for t in &mut cursor {
            manual.push(t.unwrap());
        }
        assert_eq!(
            manual,
            filtered_reference.tuples().to_vec(),
            "{kw}: manual cursor drain vs core"
        );
    }
}

/// Dense keys (only 2 distinct values), starts on a small grid (shared
/// endpoints) and durations skewed toward 1 (single-point intervals).
fn adversarial_rows() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec(
        (
            0i64..2,
            0i64..10,
            prop_oneof![Just(1i64), Just(1i64), Just(1i64), 1i64..5],
        ),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn query_layer_set_operations_match_the_core_functions(
        rr in adversarial_rows(),
        ss in adversarial_rows(),
        threshold in 0i64..3,
    ) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        assert_setops_identical(&r, &s, threshold);
    }
}

// ---- deterministic regressions -------------------------------------------

#[test]
fn set_operations_agree_on_empty_inputs() {
    let r = build("r", 0, &[]);
    let s = build("s", 1000, &[(0, 2, 3), (1, 0, 1)]);
    assert_setops_identical(&r, &s, 0);
    assert_setops_identical(&s.renamed("r"), &r.renamed("s"), 0);
    assert_setops_identical(&r, &r.renamed("s"), 1);
}

#[test]
fn chained_set_operations_compose_like_the_core_functions() {
    // (r ∪ s) ∖ r, left-associatively — exactly what the chained query
    // text produces. The derived intermediates carry compound lineages, so
    // the core reference must price them through an engine preloaded with
    // the base-tuple probabilities of r and s (exactly what the query layer
    // does with the catalog's engine).
    let r = build("r", 0, &[(0, 0, 4), (1, 2, 1), (0, 6, 2)]);
    let s = build("s", 1000, &[(0, 1, 3), (1, 5, 2)]);
    let mut base_engine = ProbabilityEngine::new();
    r.register_probabilities(&mut base_engine);
    s.register_probabilities(&mut base_engine);
    let over_derived = |left: &TpRelation, right: &TpRelation, kind| {
        TpSetOpStream::with_engine_and_plan(left, right, kind, None, base_engine.clone())
            .unwrap()
            .collect_relation()
    };

    let mut catalog = Catalog::new();
    catalog.register(r.clone()).unwrap();
    catalog.register(s.clone()).unwrap();
    let session = Session::new(catalog);

    let chained = session
        .execute("SELECT * FROM r UNION SELECT * FROM s EXCEPT SELECT * FROM r")
        .unwrap();
    let union = tp_union(&r, &s).unwrap();
    let reference = over_derived(&union, &r, TpSetOpKind::Difference);
    assert_eq!(chained.tuples(), reference.tuples());

    // parentheses regroup: r ∪ (s ∖ r)
    let grouped = session
        .execute("SELECT * FROM r UNION (SELECT * FROM s EXCEPT SELECT * FROM r)")
        .unwrap();
    let difference = tp_difference(&s, &r).unwrap();
    let reference = over_derived(&r, &difference, TpSetOpKind::Union);
    assert_eq!(grouped.tuples(), reference.tuples());
}
