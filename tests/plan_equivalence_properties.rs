//! Property tests: NJ ≡ TA on adversarial synthetic data, for every TP join
//! kind under **every** overlap-join plan (sweep, hash, nested loop).
//!
//! The generators deliberately produce the inputs that stress the sweep
//! join and the window algorithms most:
//!
//! * **dense same-key partitions** — only two distinct join keys, so every
//!   probe scans a crowded sorted partition,
//! * **shared interval endpoints** — starts drawn from a small grid, so
//!   many windows open/close at the same boundary,
//! * **single-point intervals** `[t, t+1)` — the smallest representable
//!   windows, adjacent to everything around them.

use proptest::prelude::*;
use tpdb::core::{
    tp_join_parallel_with_plan, tp_join_with_plan, OverlapJoinPlan, ThetaCondition, TpJoinKind,
};
use tpdb::lineage::{Lineage, VarId};
use tpdb::storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::ta::ta_join;
use tpdb::temporal::Interval;

const PLANS: [OverlapJoinPlan; 3] = [
    OverlapJoinPlan::Sweep,
    OverlapJoinPlan::Hash,
    OverlapJoinPlan::NestedLoop,
];

/// Worker counts of the parallel == serial determinism property (chosen to
/// cover an even, a power-of-two and an odd degree above the key count).
const DEGREES: [usize; 3] = [2, 4, 7];

const KINDS: [TpJoinKind; 5] = [
    TpJoinKind::Inner,
    TpJoinKind::LeftOuter,
    TpJoinKind::Anti,
    TpJoinKind::RightOuter,
    TpJoinKind::FullOuter,
];

/// Builds a duplicate-free single-key relation from raw `(key, start,
/// duration)` rows, skipping rows that would overlap an existing same-key
/// interval (the TP duplicate-free constraint). Probabilities vary per
/// tuple so that the probability engine is stressed too.
fn build(name: &str, var_offset: u32, rows: &[(i64, i64, i64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
    let mut var = var_offset;
    for (key, start, duration) in rows {
        let interval = Interval::new(*start, *start + *duration);
        if rel
            .iter()
            .any(|t| t.fact(0) == &Value::Int(*key) && t.interval().overlaps(&interval))
        {
            continue;
        }
        let prob = 0.15 + 0.08 * f64::from(var % 10);
        rel.push(TpTuple::new(
            vec![Value::Int(*key)],
            Lineage::var(VarId(var)),
            interval,
            prob,
        ))
        .unwrap();
        var += 1;
    }
    rel
}

/// Canonical form of a join result: facts, interval and probability rounded
/// to 1e-9, sorted. Lineage *syntax* may legitimately differ between the
/// systems and plans; semantics — and therefore probabilities — may not.
fn canon(rel: &TpRelation) -> Vec<(Vec<String>, i64, i64, i64)> {
    let mut out: Vec<(Vec<String>, i64, i64, i64)> = rel
        .iter()
        .map(|t| {
            (
                t.facts().iter().map(|v| v.to_string()).collect(),
                t.interval().start(),
                t.interval().end(),
                (t.probability() * 1e9).round() as i64,
            )
        })
        .collect();
    out.sort();
    out
}

fn assert_all_plans_match_ta(r: &TpRelation, s: &TpRelation) {
    let theta = ThetaCondition::column_equals("k", "k");
    for kind in KINDS {
        let ta = canon(&ta_join(r, s, &theta, kind).unwrap());
        for plan in PLANS {
            let serial = tp_join_with_plan(r, s, &theta, kind, Some(plan)).unwrap();
            let nj = canon(&serial);
            assert_eq!(
                nj, ta,
                "NJ ({plan}) and TA disagree on the {kind:?} join of r={r} s={s}"
            );
            // Partitioned parallel execution reproduces the serial result
            // byte for byte on the same adversarial inputs.
            for degree in DEGREES {
                let parallel =
                    tp_join_parallel_with_plan(r, s, &theta, kind, Some(plan), degree).unwrap();
                assert_eq!(
                    parallel, serial,
                    "parallel (P={degree}, {plan}) diverges on the {kind:?} join of r={r} s={s}"
                );
            }
        }
    }
}

/// Dense keys (only 2 distinct values), starts on a small grid (shared
/// endpoints) and durations skewed toward 1 (single-point intervals).
fn adversarial_rows() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec(
        (
            0i64..2,
            0i64..10,
            prop_oneof![Just(1i64), Just(1i64), Just(1i64), 1i64..5],
        ),
        1..16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn nj_equals_ta_under_every_plan(rr in adversarial_rows(), ss in adversarial_rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let theta = ThetaCondition::column_equals("k", "k");
        for kind in KINDS {
            let ta = canon(&ta_join(&r, &s, &theta, kind).unwrap());
            for plan in PLANS {
                let nj = canon(&tp_join_with_plan(&r, &s, &theta, kind, Some(plan)).unwrap());
                prop_assert_eq!(&nj, &ta, "kind = {:?}, plan = {}", kind, plan);
            }
        }
    }

    /// Parallel partitioned execution must be **byte-identical** to serial
    /// execution — same tuples, same order, bit-equal probabilities — for
    /// all five join kinds under every plan (the nested-loop plan exercises
    /// the serial fallback path).
    #[test]
    fn parallel_equals_serial_under_every_plan(rr in adversarial_rows(), ss in adversarial_rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let theta = ThetaCondition::column_equals("k", "k");
        for kind in KINDS {
            for plan in PLANS {
                let serial = tp_join_with_plan(&r, &s, &theta, kind, Some(plan)).unwrap();
                for degree in DEGREES {
                    let parallel =
                        tp_join_parallel_with_plan(&r, &s, &theta, kind, Some(plan), degree).unwrap();
                    prop_assert_eq!(
                        &parallel, &serial,
                        "kind = {:?}, plan = {}, degree = {}", kind, plan, degree
                    );
                }
            }
        }
    }

    #[test]
    fn forced_plans_agree_with_each_other(rr in adversarial_rows(), ss in adversarial_rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let theta = ThetaCondition::column_equals("k", "k");
        for kind in KINDS {
            let reference = canon(&tp_join_with_plan(&r, &s, &theta, kind, Some(OverlapJoinPlan::NestedLoop)).unwrap());
            for plan in [OverlapJoinPlan::Sweep, OverlapJoinPlan::Hash] {
                let got = canon(&tp_join_with_plan(&r, &s, &theta, kind, Some(plan)).unwrap());
                prop_assert_eq!(&got, &reference, "kind = {:?}, plan = {}", kind, plan);
            }
        }
    }
}

// ---- deterministic adversarial regressions --------------------------------

#[test]
fn identical_intervals_in_a_dense_partition() {
    // Every s tuple shares the same key and the same interval: the sorted
    // partition is all ties, the active set is the whole partition.
    let r = build("r", 0, &[(0, 0, 8)]);
    let s = build(
        "s",
        1000,
        &[(0, 2, 3), (0, 2, 3), (0, 2, 3), (0, 2, 3), (0, 2, 3)],
    );
    // duplicate-free pruning keeps only the first of the identical rows, so
    // force distinct-but-touching copies too
    assert_all_plans_match_ta(&r, &s);
}

#[test]
fn chain_of_single_point_intervals() {
    // s covers [2, 7) with five adjacent single-point tuples: every boundary
    // is both an end and a start.
    let r = build("r", 0, &[(0, 0, 10)]);
    let s = build(
        "s",
        1000,
        &[(0, 2, 1), (0, 3, 1), (0, 4, 1), (0, 5, 1), (0, 6, 1)],
    );
    assert_all_plans_match_ta(&r, &s);
}

#[test]
fn shared_endpoints_staircase() {
    // Overlapping s tuples whose starts and ends land on shared grid points
    // (r itself starts and ends exactly on s boundaries).
    let r = build("r", 0, &[(0, 2, 6), (1, 2, 6)]);
    let mut s = TpRelation::new("s", Schema::tp(&[("k", DataType::Int)]));
    for (i, (start, end)) in [(0, 4), (2, 4), (2, 8), (4, 8), (6, 10)].iter().enumerate() {
        s.push(TpTuple::new(
            vec![Value::Int(0)],
            Lineage::var(VarId(2000 + i as u32)),
            Interval::new(*start, *end),
            0.4,
        ))
        .unwrap();
    }
    assert_all_plans_match_ta(&r, &s);
}

#[test]
fn single_point_probe_tuples() {
    // r tuples are themselves single-point: each probe interval [t, t+1)
    // must find exactly the s tuples valid at t.
    let r = build(
        "r",
        0,
        &[(0, 3, 1), (0, 4, 1), (0, 7, 1), (1, 3, 1), (1, 9, 1)],
    );
    let s = build("s", 1000, &[(0, 0, 4), (0, 4, 4), (1, 2, 2), (1, 8, 1)]);
    assert_all_plans_match_ta(&r, &s);
}
