//! Property tests for morsel-driven work stealing: under adversarial key
//! skew (one hot key holding ~90% of the tuples — the distribution that
//! capped the old static partitioning at ~1.1x), every TP join kind and
//! every TP set operation executed with stolen morsels at P ∈ {2, 4, 7}
//! is **byte-identical** to the serial pipeline — same tuples in the same
//! order, same schema, same relation name.
//!
//! The hot relation is sized past `MORSEL_MAX` (1024), so the hot key is
//! genuinely chopped across several morsels and the merge-by-probe-index
//! step is exercised across worker boundaries, not just within one.

use proptest::prelude::*;
use tpdb::core::{
    tp_difference, tp_intersection, tp_join, tp_join_parallel, tp_set_op_parallel, tp_union,
    ThetaCondition, TpJoinKind, TpSetOpKind,
};
use tpdb::lineage::{Lineage, VarId};
use tpdb::storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

const JOIN_KINDS: [TpJoinKind; 5] = [
    TpJoinKind::Inner,
    TpJoinKind::LeftOuter,
    TpJoinKind::RightOuter,
    TpJoinKind::FullOuter,
    TpJoinKind::Anti,
];

const SET_OPS: [TpSetOpKind; 3] = [
    TpSetOpKind::Union,
    TpSetOpKind::Intersection,
    TpSetOpKind::Difference,
];

const DEGREES: [usize; 3] = [2, 4, 7];

/// Builds a duplicate-free single-column relation with `hot` tuples of the
/// hot key 0 and `cold[k]` tuples of key `k + 1`, interleaved so key
/// groups are not contiguous in index order. Per-key intervals advance on
/// a stride so same-key tuples never overlap (the TP duplicate-free
/// constraint) without an O(n²) scan; `stagger` shifts each key's phase so
/// cross-relation overlap patterns vary per case.
fn skewed_relation(
    name: &str,
    var_offset: u32,
    hot: usize,
    cold: &[usize],
    stagger: i64,
) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
    let mut remaining: Vec<usize> = std::iter::once(hot).chain(cold.iter().copied()).collect();
    let mut emitted = vec![0i64; remaining.len()];
    let mut var = var_offset;
    loop {
        let mut pushed = false;
        for (k, left) in remaining.iter_mut().enumerate() {
            if *left == 0 {
                continue;
            }
            *left -= 1;
            pushed = true;
            // Stride 3, length 2: same-key intervals are disjoint, but
            // cross-key (and cross-relation, via stagger) overlaps abound.
            let start = emitted[k] * 3 + stagger * (k as i64 + 1);
            emitted[k] += 1;
            rel.push(TpTuple::new(
                vec![Value::Int(k as i64)],
                Lineage::var(VarId(var)),
                Interval::new(start, start + 2),
                0.15 + 0.08 * f64::from(var % 10),
            ))
            .unwrap();
            var += 1;
        }
        if !pushed {
            return rel;
        }
    }
}

fn assert_byte_identical(serial: &TpRelation, stolen: &TpRelation, context: &str) {
    assert_eq!(stolen.name(), serial.name(), "{context}: relation name");
    assert_eq!(stolen.schema(), serial.schema(), "{context}: schema");
    assert_eq!(stolen.tuples(), serial.tuples(), "{context}: tuples");
}

/// Every join kind and set operation, serial vs stolen at each degree.
fn assert_stolen_equals_serial(r: &TpRelation, s: &TpRelation) {
    let theta = ThetaCondition::column_equals("k", "k");
    for kind in JOIN_KINDS {
        let serial = tp_join(r, s, &theta, kind).unwrap();
        for degree in DEGREES {
            let stolen = tp_join_parallel(r, s, &theta, kind, degree).unwrap();
            assert_byte_identical(&serial, &stolen, &format!("{kind:?} join P={degree}"));
        }
    }
    for kind in SET_OPS {
        let serial = match kind {
            TpSetOpKind::Union => tp_union(r, s).unwrap(),
            TpSetOpKind::Intersection => tp_intersection(r, s).unwrap(),
            TpSetOpKind::Difference => tp_difference(r, s).unwrap(),
        };
        for degree in DEGREES {
            let stolen = tp_set_op_parallel(r, s, kind, degree).unwrap();
            assert_byte_identical(&serial, &stolen, &format!("{kind:?} P={degree}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The 90%-hot-key distribution: r's hot key exceeds `MORSEL_MAX`, so
    /// it is chopped across morsels; s is small but key-overlapping, so
    /// every window kind (overlapping, unmatched, negating) occurs.
    #[test]
    fn stolen_execution_is_byte_identical_under_adversarial_skew(
        hot in 1100usize..1400,
        cold in proptest::collection::vec(2usize..40, 2..5),
        s_hot in 4usize..16,
        s_cold in proptest::collection::vec(1usize..8, 2..5),
        stagger in 0i64..7,
    ) {
        let r = skewed_relation("r", 0, hot, &cold, 0);
        let s = skewed_relation("s", 100_000, s_hot, &s_cold, stagger);
        assert_stolen_equals_serial(&r, &s);
    }

    /// Skew on the *build* side instead: the probe side stays small (often
    /// a single morsel, trimming the worker count), while the shared probe
    /// index carries the hot key.
    #[test]
    fn stolen_execution_survives_a_skewed_build_side(
        r_hot in 8usize..40,
        r_cold in proptest::collection::vec(1usize..10, 1..4),
        s_hot in 300usize..600,
        stagger in 0i64..5,
    ) {
        let r = skewed_relation("r", 0, r_hot, &r_cold, stagger);
        let s = skewed_relation("s", 100_000, s_hot, &[7, 3], 1);
        assert_stolen_equals_serial(&r, &s);
    }
}

// ---- deterministic regressions -------------------------------------------

#[test]
fn empty_and_tiny_inputs_take_the_serial_fallback_unchanged() {
    let empty = skewed_relation("r", 0, 0, &[], 0);
    let tiny = skewed_relation("s", 100_000, 3, &[2], 1);
    assert_stolen_equals_serial(&empty, &tiny);
    assert_stolen_equals_serial(&tiny.renamed("r"), &empty.renamed("s"));
}

#[test]
fn the_hot_key_case_really_crosses_the_morsel_cap() {
    // Guards the premise of the proptest above: 1100+ hot tuples must not
    // fit one morsel (MORSEL_MAX = 1024), or the skew test would silently
    // degenerate to single-worker execution.
    let r = skewed_relation("r", 0, 1100, &[10], 0);
    assert!(r.len() > 1024);
}
