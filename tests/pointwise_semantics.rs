//! Integration test: point-wise (snapshot) semantics of TP joins with
//! negation.
//!
//! The defining property of the operators (first sentence of the paper): the
//! result of a TP join with negation includes, *at each time point*, the
//! probability with which a tuple of the positive relation matches none of
//! the tuples in the negative relation. For duplicate-free base relations
//! with independent tuples this probability has a closed form that we can
//! compute directly from the inputs and compare against the join output.

use proptest::prelude::*;
use tpdb::core::{tp_anti_join, tp_inner_join, tp_left_outer_join, ThetaCondition};
use tpdb::lineage::Lineage;
use tpdb::storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

/// Builds a single-key-column TP relation from (key, start, duration, prob)
/// rows, skipping rows that would violate the duplicate-free constraint.
fn build_relation(name: &str, var_offset: u32, rows: &[(i64, i64, i64, f64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
    let mut next_var = var_offset;
    for (key, start, duration, prob) in rows {
        let interval = Interval::new(*start, *start + *duration);
        let clashes = rel
            .iter()
            .any(|t| t.fact(0) == &Value::Int(*key) && t.interval().overlaps(&interval));
        if clashes {
            continue;
        }
        rel.push(TpTuple::new(
            vec![Value::Int(*key)],
            Lineage::var(tpdb::lineage::VarId(next_var)),
            interval,
            *prob,
        ))
        .unwrap();
        next_var += 1;
    }
    rel
}

/// The probability that, at time point `t`, the fact of `r_tuple` holds and
/// no matching tuple of `s` holds — computed directly from the inputs under
/// tuple independence.
fn expected_anti_probability(r_tuple: &TpTuple, s: &TpRelation, t: i64) -> f64 {
    let mut p = r_tuple.probability();
    for st in s.iter() {
        if st.valid_at(t) && st.fact(0) == r_tuple.fact(0) {
            p *= 1.0 - st.probability();
        }
    }
    p
}

/// The anti-join output probability at time point `t` for the fact of
/// `r_tuple` (0 when no output tuple covers `t`).
fn anti_join_probability_at(result: &TpRelation, r_tuple: &TpTuple, t: i64) -> f64 {
    result
        .iter()
        .find(|out| out.fact(0) == r_tuple.fact(0) && out.valid_at(t))
        .map(|out| out.probability())
        .unwrap_or(0.0)
}

fn row_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64, f64)>> {
    proptest::collection::vec((0i64..4, 0i64..30, 1i64..8, 0.05f64..1.0), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn anti_join_matches_closed_form_pointwise(rows_r in row_strategy(), rows_s in row_strategy()) {
        let r = build_relation("r", 0, &rows_r);
        let s = build_relation("s", 1000, &rows_s);
        let theta = ThetaCondition::column_equals("k", "k");
        let anti = tp_anti_join(&r, &s, &theta).unwrap();

        for r_tuple in r.iter() {
            for t in r_tuple.interval().points() {
                let expected = expected_anti_probability(r_tuple, &s, t);
                let actual = anti_join_probability_at(&anti, r_tuple, t);
                prop_assert!(
                    (expected - actual).abs() < 1e-9,
                    "anti join probability at t={t} for key {:?}: expected {expected}, got {actual}",
                    r_tuple.fact(0)
                );
            }
        }
    }

    #[test]
    fn left_outer_join_covers_every_point_of_the_positive_relation(
        rows_r in row_strategy(),
        rows_s in row_strategy(),
    ) {
        let r = build_relation("r", 0, &rows_r);
        let s = build_relation("s", 1000, &rows_s);
        let theta = ThetaCondition::column_equals("k", "k");
        let left = tp_left_outer_join(&r, &s, &theta).unwrap();

        // Every time point of every positive tuple is covered by at least one
        // output tuple with the same key (the null-extension guarantees it).
        for r_tuple in r.iter() {
            for t in r_tuple.interval().points() {
                let covered = left
                    .iter()
                    .any(|out| out.fact(0) == r_tuple.fact(0) && out.valid_at(t));
                prop_assert!(covered, "point {t} of {:?} not covered", r_tuple.fact(0));
            }
        }
    }

    #[test]
    fn inner_join_probability_is_product_of_matching_pairs(
        rows_r in row_strategy(),
        rows_s in row_strategy(),
    ) {
        let r = build_relation("r", 0, &rows_r);
        let s = build_relation("s", 1000, &rows_s);
        let theta = ThetaCondition::column_equals("k", "k");
        let inner = tp_inner_join(&r, &s, &theta).unwrap();

        // every output tuple corresponds to exactly one (r, s) pair, so its
        // probability is the product of the pair's probabilities
        for out in inner.iter() {
            let pr = r
                .iter()
                .find(|t| t.fact(0) == out.fact(0) && t.interval().contains(&out.interval()))
                .expect("originating r tuple");
            let ps = s
                .iter()
                .find(|t| t.fact(0) == out.fact(1) && t.interval().contains(&out.interval()))
                .expect("originating s tuple");
            prop_assert!((out.probability() - pr.probability() * ps.probability()).abs() < 1e-9);
        }
    }

    #[test]
    fn outputs_within_each_fact_never_overlap_in_anti_joins(
        rows_r in row_strategy(),
        rows_s in row_strategy(),
    ) {
        let r = build_relation("r", 0, &rows_r);
        let s = build_relation("s", 1000, &rows_s);
        let theta = ThetaCondition::column_equals("k", "k");
        let anti = tp_anti_join(&r, &s, &theta).unwrap();
        // the anti join of a duplicate-free relation is duplicate-free
        let violations = tpdb::storage::check_duplicate_free(&anti);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }
}
