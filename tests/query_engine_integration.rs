//! Integration test: the query engine on generated workloads — parsing,
//! planning, strategy selection and result consistency across the whole
//! stack (datagen → storage → query → core/ta).

use tpdb::core::ThetaCondition;
use tpdb::query::{parse_query, LogicalPlan, QueryEngine};
use tpdb::storage::{Catalog, Value};

fn engine_with_webkit(n: usize) -> QueryEngine {
    let (r, s) = tpdb::datagen::webkit_like(n, 3);
    let mut catalog = Catalog::new();
    catalog.register(r).unwrap();
    catalog.register(s).unwrap();
    QueryEngine::new(catalog)
}

#[test]
fn textual_query_equals_programmatic_plan() {
    let engine = engine_with_webkit(400);
    let text = "SELECT * FROM webkit_r TP ANTI JOIN webkit_s ON webkit_r.Key = webkit_s.Key";
    let via_text = engine.query(text).unwrap();

    let plan = LogicalPlan::scan("webkit_r").tp_join(
        LogicalPlan::scan("webkit_s"),
        ThetaCondition::column_equals("Key", "Key"),
        tpdb::core::TpJoinKind::Anti,
        tpdb::query::JoinStrategy::Nj,
    );
    let via_plan = engine.run(&plan).unwrap();

    assert_eq!(via_text.len(), via_plan.len());
    assert!(parse_query(text).is_ok());
}

#[test]
fn strategy_choice_does_not_change_the_answer() {
    let engine = engine_with_webkit(300);
    let nj = engine
        .query("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key STRATEGY NJ")
        .unwrap();
    let ta = engine
        .query("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key STRATEGY TA")
        .unwrap();
    assert_eq!(nj.len(), ta.len());
    // total probability mass (probability × duration) must agree
    let mass = |rel: &tpdb::storage::TpRelation| -> f64 {
        rel.iter()
            .map(|t| t.probability() * t.interval().duration() as f64)
            .sum()
    };
    assert!((mass(&nj) - mass(&ta)).abs() < 1e-6);
}

#[test]
fn where_clause_filters_join_output() {
    let engine = engine_with_webkit(200);
    let all = engine
        .query("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key")
        .unwrap();
    let filtered = engine
        .query("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key WHERE Key = 0")
        .unwrap();
    assert!(filtered.len() < all.len());
    assert!(filtered.iter().all(|t| t.fact(0) == &Value::Int(0)));
}

#[test]
fn projection_keeps_temporal_and_probabilistic_attributes() {
    let engine = engine_with_webkit(200);
    let result = engine
        .query("SELECT Key FROM webkit_r TP ANTI JOIN webkit_s ON webkit_r.Key = webkit_s.Key")
        .unwrap();
    assert_eq!(result.schema().arity(), 1);
    for t in result.iter() {
        assert!((0.0..=1.0).contains(&t.probability()));
        assert!(t.interval().duration() > 0);
    }
}

#[test]
fn explain_runs_without_executing() {
    let engine = engine_with_webkit(100);
    let text = engine
        .explain("SELECT * FROM webkit_r TP FULL OUTER JOIN webkit_s ON webkit_r.Key = webkit_s.Key STRATEGY TA")
        .unwrap();
    assert!(text.contains("⟗"));
    assert!(text.contains("strategy=TA"));
}
