//! Integration test: the session API on generated workloads — parsing,
//! preparing, parameter binding, cursor streaming, strategy selection and
//! result consistency across the whole stack (datagen → storage → query →
//! core/ta). The deprecated `QueryEngine` shim is exercised once to pin
//! its compatibility contract.

use tpdb::core::ThetaCondition;
use tpdb::query::{parse_query, LogicalPlan, Session};
use tpdb::storage::{Catalog, Value};

fn session_with_webkit(n: usize) -> Session {
    let (r, s) = tpdb::datagen::webkit_like(n, 3);
    let mut catalog = Catalog::new();
    catalog.register(r).unwrap();
    catalog.register(s).unwrap();
    Session::new(catalog)
}

#[test]
fn textual_query_equals_programmatic_plan() {
    let session = session_with_webkit(400);
    let text = "SELECT * FROM webkit_r TP ANTI JOIN webkit_s ON webkit_r.Key = webkit_s.Key";
    let via_text = session.execute(text).unwrap();

    let plan = LogicalPlan::scan("webkit_r").tp_join(
        LogicalPlan::scan("webkit_s"),
        ThetaCondition::column_equals("Key", "Key"),
        tpdb::core::TpJoinKind::Anti,
        tpdb::query::JoinStrategy::Nj,
    );
    let via_plan = session.run(&plan).unwrap();

    assert_eq!(via_text.len(), via_plan.len());
    assert!(parse_query(text).is_ok());
}

#[test]
fn strategy_choice_does_not_change_the_answer() {
    let session = session_with_webkit(300);
    let nj = session
        .execute("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key STRATEGY NJ")
        .unwrap();
    let ta = session
        .execute("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key STRATEGY TA")
        .unwrap();
    assert_eq!(nj.len(), ta.len());
    // total probability mass (probability × duration) must agree
    let mass = |rel: &tpdb::storage::TpRelation| -> f64 {
        rel.iter()
            .map(|t| t.probability() * t.interval().duration() as f64)
            .sum()
    };
    assert!((mass(&nj) - mass(&ta)).abs() < 1e-6);
}

#[test]
fn where_clause_filters_join_output() {
    let session = session_with_webkit(200);
    let all = session
        .execute("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key")
        .unwrap();
    let filtered = session
        .execute("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key WHERE Key = 0")
        .unwrap();
    assert!(filtered.len() < all.len());
    assert!(filtered.iter().all(|t| t.fact(0) == &Value::Int(0)));

    // the same filter as a prepared statement with a bound parameter
    let stmt = session
        .prepare("SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key WHERE Key = $1")
        .unwrap();
    let bound = stmt.execute(&[Value::Int(0)]).unwrap();
    assert_eq!(bound, filtered);
}

#[test]
fn cursor_streams_the_same_tuples_execution_materializes() {
    let session = session_with_webkit(250);
    let q = "SELECT * FROM webkit_r TP FULL OUTER JOIN webkit_s ON webkit_r.Key = webkit_s.Key";
    let materialized = session.execute(q).unwrap();
    let mut cursor = session.query(q).unwrap();
    let first = cursor.next().unwrap().unwrap();
    assert_eq!(&first, materialized.tuple(0));
    let rest = cursor.collect().unwrap();
    assert_eq!(rest.len() + 1, materialized.len());
}

#[test]
fn projection_keeps_temporal_and_probabilistic_attributes() {
    let session = session_with_webkit(200);
    let result = session
        .execute("SELECT Key FROM webkit_r TP ANTI JOIN webkit_s ON webkit_r.Key = webkit_s.Key")
        .unwrap();
    assert_eq!(result.schema().arity(), 1);
    for t in result.iter() {
        assert!((0.0..=1.0).contains(&t.probability()));
        assert!(t.interval().duration() > 0);
    }
}

#[test]
fn explain_runs_without_executing() {
    let session = session_with_webkit(100);
    let text = session
        .explain("SELECT * FROM webkit_r TP FULL OUTER JOIN webkit_s ON webkit_r.Key = webkit_s.Key STRATEGY TA")
        .unwrap();
    assert!(text.contains("⟗"));
    assert!(text.contains("strategy=TA"));
    assert!(text.contains("Plan cache:"));
}

#[test]
#[allow(deprecated)]
fn deprecated_query_engine_shim_still_works() {
    let (r, s) = tpdb::datagen::webkit_like(150, 3);
    let mut catalog = Catalog::new();
    catalog.register(r).unwrap();
    catalog.register(s).unwrap();
    let engine = tpdb::query::QueryEngine::new(catalog);
    let q = "SELECT * FROM webkit_r TP ANTI JOIN webkit_s ON webkit_r.Key = webkit_s.Key";
    let via_shim = engine.query(q).unwrap();
    let via_session = engine.session().execute(q).unwrap();
    assert_eq!(via_shim, via_session);
}
