//! Edge-case tests for `Catalog::import_delimited` — the CSV/TSV bulk
//! loader. Quoting, line endings, `NULL` vs empty-string, typed per-line
//! errors (with 1-based line numbers) and the duplicate-key (TP
//! duplicate-free) check are all pinned here; the happy path is covered by
//! the snapshot/bench suites.

// Tests assert bit-exact values on purpose (reproducibility contract).
#![allow(clippy::float_cmp)]

use tpdb::storage::{Catalog, DataType, Schema, StorageError, Value};
use tpdb::temporal::Interval;

fn meteo_schema() -> Schema {
    Schema::tp(&[("city", DataType::Str), ("temp", DataType::Float)])
}

fn import(text: &str) -> Result<Vec<(Vec<Value>, Interval, f64)>, StorageError> {
    let mut catalog = Catalog::new();
    let relation = catalog.import_delimited("m", meteo_schema(), ',', text)?;
    Ok(relation
        .iter()
        .map(|t| {
            (
                (0..relation.schema().arity())
                    .map(|i| t.fact(i).clone())
                    .collect(),
                t.interval(),
                t.probability(),
            )
        })
        .collect())
}

fn parse_error(text: &str) -> (usize, String) {
    match import(text).unwrap_err() {
        StorageError::ParseError { line, message } => (line, message),
        other => panic!("expected ParseError, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Quoting
// ---------------------------------------------------------------------------

#[test]
fn quoted_fields_keep_delimiters_literal() {
    let rows = import("\"Delft, Zuid\",18.5,0,5,0.9\n").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].0[0], Value::Str("Delft, Zuid".into()));
    assert_eq!(rows[0].0[1], Value::Float(18.5));
}

#[test]
fn quoted_fields_keep_newlines_literal() {
    let rows = import("\"Delft\nZuid\",1.0,0,5,0.9\ncity2,2.0,0,5,0.8\n").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].0[0], Value::Str("Delft\nZuid".into()));
    assert_eq!(rows[1].0[0], Value::Str("city2".into()));
}

#[test]
fn doubled_quotes_escape_inside_quoted_fields() {
    let rows = import("\"say \"\"hi\"\"\",1.0,0,5,0.9\n").unwrap();
    assert_eq!(rows[0].0[0], Value::Str("say \"hi\"".into()));
}

#[test]
fn unterminated_quote_reports_the_record_line() {
    let (line, message) = parse_error("a,1.0,0,5,0.9\n\"oops,2.0,0,5,0.9\n");
    assert_eq!(line, 2);
    assert!(message.contains("unterminated quoted field"), "{message}");
}

#[test]
fn numbers_may_be_quoted_too() {
    let rows = import("\"Delft\",\"18.5\",\"0\",\"5\",\"0.9\"\n").unwrap();
    assert_eq!(rows[0].0[1], Value::Float(18.5));
    assert_eq!(rows[0].1, Interval::new(0, 5));
    assert_eq!(rows[0].2, 0.9);
}

// ---------------------------------------------------------------------------
// Line endings, blank lines, NULL vs empty string
// ---------------------------------------------------------------------------

#[test]
fn crlf_line_endings_are_accepted() {
    let rows = import("a,1.0,0,5,0.9\r\nb,2.0,0,5,0.8\r\n").unwrap();
    assert_eq!(rows.len(), 2);
    // No stray `\r` in the last field.
    assert_eq!(rows[1].2, 0.8);
}

#[test]
fn blank_lines_are_skipped_but_still_counted() {
    // The malformed record sits on line 4: line numbers must count the
    // blank lines, not the records.
    let (line, _) = parse_error("a,1.0,0,5,0.9\n\n\nb,bad,0,5,0.8\n");
    assert_eq!(line, 4);
}

#[test]
fn missing_trailing_newline_is_fine() {
    let rows = import("a,1.0,0,5,0.9").unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn empty_unquoted_field_is_null_and_empty_quoted_field_is_empty_string() {
    let rows = import(",1.0,0,5,0.9\n\"\",2.0,6,9,0.8\n").unwrap();
    assert_eq!(rows[0].0[0], Value::Null);
    assert_eq!(rows[1].0[0], Value::str(""));
}

#[test]
fn empty_trailing_field_counts_toward_the_arity() {
    // `a,,0,5,0.9` has five fields; the empty second one is a NULL temp.
    let rows = import("a,,0,5,0.9\n").unwrap();
    assert_eq!(rows[0].0[1], Value::Null);
    // ...while a record that ends mid-way is an arity error, not a crash.
    let (line, message) = parse_error("a,1.0,0,5\n");
    assert_eq!(line, 1);
    assert!(message.contains("expected 5 field(s), got 4"), "{message}");
}

// ---------------------------------------------------------------------------
// Typed per-line errors
// ---------------------------------------------------------------------------

#[test]
fn too_many_fields_is_an_arity_error() {
    let (line, message) = parse_error("a,1.0,0,5,0.9,extra\n");
    assert_eq!(line, 1);
    assert!(message.contains("expected 5 field(s), got 6"), "{message}");
}

#[test]
fn bad_typed_value_names_its_column() {
    let (line, message) = parse_error("a,warm,0,5,0.9\n");
    assert_eq!(line, 1);
    assert!(
        message.contains("column temp") && message.contains("`warm`"),
        "{message}"
    );
}

#[test]
fn bool_columns_parse_strictly() {
    let mut catalog = Catalog::new();
    let schema = Schema::tp(&[("ok", DataType::Bool)]);
    let relation = catalog
        .import_delimited(
            "flags",
            schema.clone(),
            ',',
            "true,0,5,0.9\nfalse,5,9,0.8\n",
        )
        .unwrap();
    let got: Vec<_> = relation.iter().map(|t| t.fact(0).clone()).collect();
    assert_eq!(got, vec![Value::Bool(true), Value::Bool(false)]);
    // `1` is not a boolean.
    let err = catalog
        .import_delimited("flags2", schema, ',', "1,0,5,0.9\n")
        .unwrap_err();
    assert!(
        matches!(err, StorageError::ParseError { line: 1, .. }),
        "{err:?}"
    );
}

#[test]
fn malformed_interval_endpoints_are_reported() {
    let (line, message) = parse_error("a,1.0,zero,5,0.9\n");
    assert_eq!(line, 1);
    assert!(
        message.contains("invalid interval start: `zero`"),
        "{message}"
    );
    let (line, message) = parse_error("a,1.0,0,1e3,0.9\n");
    assert_eq!(line, 1);
    assert!(message.contains("invalid interval end: `1e3`"), "{message}");
}

#[test]
fn empty_intervals_are_rejected_per_line() {
    // end <= start violates the half-open interval contract.
    let (line, _) = parse_error("a,1.0,0,5,0.9\nb,2.0,7,7,0.8\n");
    assert_eq!(line, 2);
}

#[test]
fn malformed_probabilities_are_reported() {
    let (line, message) = parse_error("a,1.0,0,5,likely\n");
    assert_eq!(line, 1);
    assert!(
        message.contains("invalid probability: `likely`"),
        "{message}"
    );
    for out_of_range in ["1.5", "-0.1", "inf", "NaN"] {
        let (line, message) = parse_error(&format!("a,1.0,0,5,{out_of_range}\n"));
        assert_eq!(line, 1, "{out_of_range}");
        assert!(
            message.contains("must be finite and within [0, 1]"),
            "{out_of_range}: {message}"
        );
    }
}

#[test]
fn duplicate_keys_are_reported_against_the_later_line() {
    // Same fact (a, 1.0) valid over [0,5) and the overlapping [3,9).
    let (line, message) = parse_error("a,1.0,0,5,0.9\nb,2.0,0,5,0.8\na,1.0,3,9,0.7\n");
    assert_eq!(line, 3);
    assert!(message.contains("duplicate key"), "{message}");
    // Touching intervals ([0,5) then [5,9)) do not overlap: accepted.
    let rows = import("a,1.0,0,5,0.9\na,1.0,5,9,0.7\n").unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn null_facts_participate_in_the_duplicate_key_check() {
    let (line, _) = parse_error(",1.0,0,5,0.9\n,1.0,2,4,0.8\n");
    assert_eq!(line, 2);
}

// ---------------------------------------------------------------------------
// Failure atomicity and the file path front-end
// ---------------------------------------------------------------------------

#[test]
fn failed_import_leaves_the_catalog_without_the_relation() {
    let mut catalog = Catalog::new();
    let err = catalog
        .import_delimited("m", meteo_schema(), ',', "a,1.0,0,5,2.0\n")
        .unwrap_err();
    assert!(matches!(err, StorageError::ParseError { .. }));
    assert!(catalog.relation("m").is_err(), "no partial relation");
    // The name is still free: a corrected import succeeds.
    let relation = catalog
        .import_delimited("m", meteo_schema(), ',', "a,1.0,0,5,0.9\n")
        .unwrap();
    assert_eq!(relation.len(), 1);
}

#[test]
fn importing_over_an_existing_relation_is_a_typed_error() {
    let mut catalog = Catalog::new();
    catalog
        .import_delimited("m", meteo_schema(), ',', "a,1.0,0,5,0.9\n")
        .unwrap();
    let err = catalog
        .import_delimited("m", meteo_schema(), ',', "b,2.0,0,5,0.8\n")
        .unwrap_err();
    assert_eq!(err, StorageError::RelationExists("m".into()));
}

#[test]
fn tsv_uses_the_same_machinery() {
    let mut catalog = Catalog::new();
    let relation = catalog
        .import_delimited("m", meteo_schema(), '\t', "Delft, Zuid\t18.5\t0\t5\t0.9\n")
        .unwrap();
    // With a tab delimiter the comma is just text — no quoting needed.
    assert_eq!(
        relation.iter().next().unwrap().fact(0),
        &Value::Str("Delft, Zuid".into())
    );
}

#[test]
fn import_from_a_missing_file_is_a_snapshot_io_error() {
    let mut catalog = Catalog::new();
    let missing = std::env::temp_dir().join(format!(
        "tpdb-csv-{}-does-not-exist.csv",
        std::process::id()
    ));
    let err = catalog
        .import_delimited_path("m", meteo_schema(), ',', &missing)
        .unwrap_err();
    assert!(matches!(err, StorageError::SnapshotIo { .. }), "{err:?}");
}

#[test]
fn imported_tuples_get_atomic_lineages_and_marginals() {
    let mut catalog = Catalog::new();
    let relation = catalog
        .import_delimited("m", meteo_schema(), ',', "a,1.0,0,5,0.9\nb,2.0,0,5,0.25\n")
        .unwrap();
    let mut engine = catalog.probability_engine();
    for tuple in relation.iter() {
        let p = engine.try_probability(tuple.lineage()).unwrap();
        assert_eq!(p, tuple.probability(), "marginal of {}", tuple.lineage());
    }
}
