//! Smoke test: every example in `examples/` builds and runs to completion.
//!
//! `cargo test` compiles the examples but never executes them, so a broken
//! `main` (panic, unwrap on a changed API result, ...) would go unnoticed.
//! This test runs each example binary through the same `cargo` that drives
//! the test run; the example builds are cache hits since the test build
//! already compiled them.

use std::process::Command;

const EXAMPLES: [&str; 6] = [
    "booking_website",
    "concurrent_clients",
    "nj_vs_ta",
    "quickstart",
    "sensor_monitoring",
    "set_operations",
];

#[test]
fn all_examples_run_to_completion() {
    for example in EXAMPLES {
        let output = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--example", example])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
