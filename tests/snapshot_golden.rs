//! Golden-fixture regression test for snapshot format v1.
//!
//! `tests/fixtures/snapshots/v1_meteo_tiny.snap` is a committed snapshot of
//! a small, fully deterministic meteo-style catalog covering every value
//! type (including `NULL`), every lineage op code and a non-trivial
//! marginal table. The tests pin the format in both directions:
//!
//! * **encode**: re-serializing the same catalog today must reproduce the
//!   fixture byte for byte — any unintentional change to the writer (field
//!   order, endianness, checksums) fails here first;
//! * **decode**: loading the committed bytes must keep working and yield
//!   exactly the original catalog — old snapshots stay readable.
//!
//! If the format changes *intentionally*, bump `VERSION` in
//! `tpdb-storage::snapshot`, add a new fixture, and keep this one to prove
//! the old version is still rejected or migrated deliberately.
//!
//! Regenerate (only for a deliberate format change) with:
//! `TPDB_BLESS_SNAPSHOTS=1 cargo test --test snapshot_golden`

use tpdb::lineage::{Lineage, VarId};
use tpdb::storage::{Catalog, DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

const FIXTURE: &[u8] = include_bytes!("fixtures/snapshots/v1_meteo_tiny.snap");
const FIXTURE_PATH: &str = "tests/fixtures/snapshots/v1_meteo_tiny.snap";

/// The catalog frozen in the fixture: three hand-picked meteo readings
/// (every scalar type plus a `NULL`), a derived relation whose lineage
/// exercises `true`/`false`/`var`/`not`/`and`/`or`, and the marginals the
/// builder interned for `reading1..reading3`.
fn tiny_meteo() -> Catalog {
    let mut catalog = Catalog::new();
    let mut readings = catalog
        .create_relation(
            "reading",
            Schema::tp(&[
                ("station", DataType::Str),
                ("temp", DataType::Float),
                ("hour", DataType::Int),
                ("valid", DataType::Bool),
            ]),
        )
        .unwrap();
    readings
        .push(
            vec![
                Value::Str("DEB".into()),
                Value::Float(18.5),
                Value::Int(7),
                Value::Bool(true),
            ],
            Interval::new(0, 6),
            0.9,
        )
        .push(
            vec![
                Value::Str("DEB".into()),
                Value::Null,
                Value::Int(8),
                Value::Bool(false),
            ],
            Interval::new(6, 12),
            0.4,
        )
        .push(
            vec![
                Value::Str("AMS".into()),
                Value::Float(-3.25),
                Value::Int(7),
                Value::Bool(true),
            ],
            Interval::new(3, 4),
            0.625,
        );
    let _ = readings.finish();

    // A derived relation whose lineage walks every op code of the format.
    let v1 = Lineage::var(VarId(0));
    let v2 = Lineage::var(VarId(1));
    let v3 = Lineage::var(VarId(2));
    let mut derived = TpRelation::new("warm_spell", Schema::tp(&[("station", DataType::Str)]));
    derived
        .push(TpTuple::new(
            vec![Value::Str("DEB".into())],
            Lineage::or(vec![
                Lineage::and(vec![v1.clone(), Lineage::not(v2)]),
                Lineage::and(vec![v3, Lineage::tru()]),
            ]),
            Interval::new(0, 12),
            0.75,
        ))
        .unwrap();
    derived
        .push(TpTuple::new(
            vec![Value::Str("AMS".into())],
            Lineage::and(vec![v1, Lineage::fls()]),
            Interval::new(3, 4),
            0.0,
        ))
        .unwrap();
    catalog.register(derived).unwrap();
    catalog
}

#[test]
fn encoding_the_tiny_meteo_catalog_reproduces_the_fixture_exactly() {
    let bytes = tiny_meteo().to_snapshot_bytes().unwrap();
    if std::env::var_os("TPDB_BLESS_SNAPSHOTS").is_some() {
        std::fs::write(FIXTURE_PATH, &bytes).unwrap();
        return;
    }
    assert_eq!(
        bytes, FIXTURE,
        "snapshot writer output drifted from the committed v1 fixture; if \
         the format change is intentional, bump the version and bless a new \
         fixture (TPDB_BLESS_SNAPSHOTS=1)"
    );
}

#[test]
fn loading_the_committed_fixture_reconstructs_the_catalog() {
    let expected = tiny_meteo();
    let mut loaded = Catalog::new();
    loaded.load_snapshot_bytes(FIXTURE).unwrap();

    assert_eq!(loaded.relation_names(), expected.relation_names());
    for name in expected.relation_names() {
        assert_eq!(
            loaded.relation(&name).unwrap(),
            expected.relation(&name).unwrap(),
            "relation `{name}` decoded from the fixture"
        );
    }
    assert_eq!(loaded.symbols().len(), expected.symbols().len());
    for (id, name) in expected.symbols().iter() {
        assert_eq!(loaded.symbols().name(id), Some(name), "symbol {id}");
    }
    for id in 0..3 {
        assert_eq!(
            loaded.probability_of(VarId(id)),
            expected.probability_of(VarId(id)),
            "marginal of x{id}"
        );
    }
    // And the canonical-bytes property holds for the fixture itself.
    assert_eq!(loaded.to_snapshot_bytes().unwrap(), FIXTURE);
}
