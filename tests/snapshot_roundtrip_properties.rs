//! Property tests for the binary snapshot format: for random catalogs,
//!
//! 1. `save → load → save` is **byte-identical** (the format is canonical:
//!    a decoded catalog re-encodes to exactly the bytes it came from),
//! 2. a loaded catalog answers every TP join kind and every TP set
//!    operation identically to the pre-save catalog, through both the
//!    one-shot and the prepared session paths,
//! 3. loaded marginals reprice compound lineage formulas exactly
//!    (bit-for-bit), and the rebuilt probability engine still passes the
//!    arena invariants of `verify_arena`.
//!
//! The relation generators reuse the adversarial shapes of the
//! plan-equivalence suite: dense keys, shared endpoints, single-point
//! intervals.

use proptest::prelude::*;
use tpdb::lineage::{Lineage, VarId};
use tpdb::prelude::Session;
use tpdb::storage::{Catalog, DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

const JOIN_KEYWORDS: [&str; 5] = ["INNER", "LEFT OUTER", "RIGHT OUTER", "FULL OUTER", "ANTI"];
const SETOP_KEYWORDS: [&str; 3] = ["UNION", "INTERSECT", "EXCEPT"];

/// Builds a duplicate-free single-key relation from raw `(key, start,
/// duration)` rows, skipping rows that would overlap an existing same-key
/// interval (the TP duplicate-free constraint).
fn build(name: &str, var_offset: u32, rows: &[(i64, i64, i64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
    let mut var = var_offset;
    for (key, start, duration) in rows {
        let interval = Interval::new(*start, *start + *duration);
        if rel
            .iter()
            .any(|t| t.fact(0) == &Value::Int(*key) && t.interval().overlaps(&interval))
        {
            continue;
        }
        let prob = 0.15 + 0.08 * f64::from(var % 10);
        rel.push(TpTuple::new(
            vec![Value::Int(*key)],
            Lineage::var(VarId(var)),
            interval,
            prob,
        ))
        .unwrap();
        var += 1;
    }
    rel
}

fn catalog_over(r: &TpRelation, s: &TpRelation) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(r.clone()).unwrap();
    catalog.register(s.clone()).unwrap();
    catalog
}

/// Round-trips `catalog` through the snapshot byte format and returns the
/// reloaded catalog, asserting the canonical-bytes property on the way.
fn reload(catalog: &Catalog) -> Catalog {
    let first = catalog.to_snapshot_bytes().unwrap();
    let mut loaded = Catalog::new();
    loaded.load_snapshot_bytes(&first).unwrap();
    let second = loaded.to_snapshot_bytes().unwrap();
    assert_eq!(first, second, "save → load → save must be byte-identical");
    loaded
}

/// Every query answered by `original` must come back identical from
/// `loaded`, through one-shot and prepared execution.
fn assert_queries_identical(original: Catalog, loaded: Catalog, threshold: i64) {
    let before = Session::new(original);
    let after = Session::new(loaded);
    let mut texts: Vec<String> = JOIN_KEYWORDS
        .iter()
        .map(|kw| format!("SELECT * FROM r TP {kw} JOIN s ON r.k = s.k WHERE k >= $1"))
        .collect();
    texts.extend(
        SETOP_KEYWORDS
            .iter()
            .map(|kw| format!("SELECT * FROM r {kw} SELECT * FROM s WHERE k >= $1")),
    );
    for text in texts {
        let params = [Value::Int(threshold)];
        let one_shot_text = text.replace("$1", &threshold.to_string());
        assert_eq!(
            after.execute(&one_shot_text).unwrap(),
            before.execute(&one_shot_text).unwrap(),
            "one-shot `{one_shot_text}` after reload"
        );
        let stmt_before = before.prepare(&text).unwrap();
        let stmt_after = after.prepare(&text).unwrap();
        assert_eq!(
            stmt_after.execute(&params).unwrap(),
            stmt_before.execute(&params).unwrap(),
            "prepared `{text}` after reload"
        );
    }
}

/// Compound formulas over the variables actually present in the relations;
/// repricing them against the reloaded marginals must be bit-exact.
fn assert_marginals_reprice(original: &Catalog, loaded: &Catalog, r: &TpRelation, s: &TpRelation) {
    let vars: Vec<Lineage> = r
        .iter()
        .chain(s.iter())
        .map(|t| t.lineage().clone())
        .collect();
    if vars.is_empty() {
        return;
    }
    let first = vars[0].clone();
    let compounds = [
        Lineage::and(vars.clone()),
        Lineage::or(vars.clone()),
        Lineage::not(first.clone()),
        Lineage::or(vec![
            Lineage::and(vars.clone()),
            Lineage::not(Lineage::or(vars.clone())),
        ]),
        Lineage::and(vec![first.clone(), Lineage::not(first)]),
    ];
    let mut before = original.probability_engine();
    let mut after = loaded.probability_engine();
    for formula in &compounds {
        let p_before = before.try_probability(formula).unwrap();
        let p_after = after.try_probability(formula).unwrap();
        assert_eq!(
            p_before.to_bits(),
            p_after.to_bits(),
            "{formula}: {p_before} vs {p_after} after reload"
        );
    }
    assert_eq!(before.verify_arena(), Ok(()));
    assert_eq!(after.verify_arena(), Ok(()));
}

/// Dense keys (only 2 distinct values), starts on a small grid (shared
/// endpoints) and durations skewed toward 1 (single-point intervals).
fn adversarial_rows() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec(
        (
            0i64..2,
            0i64..10,
            prop_oneof![Just(1i64), Just(1i64), Just(1i64), 1i64..5],
        ),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn save_load_save_is_byte_identical(
        rr in adversarial_rows(),
        ss in adversarial_rows(),
    ) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        reload(&catalog_over(&r, &s));
    }

    #[test]
    fn loaded_catalogs_answer_joins_and_setops_identically(
        rr in adversarial_rows(),
        ss in adversarial_rows(),
        threshold in 0i64..3,
    ) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let original = catalog_over(&r, &s);
        let loaded = reload(&original);
        assert_queries_identical(original, loaded, threshold);
    }

    #[test]
    fn loaded_marginals_reprice_compound_lineages_exactly(
        rr in adversarial_rows(),
        ss in adversarial_rows(),
    ) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let original = catalog_over(&r, &s);
        let loaded = reload(&original);
        assert_marginals_reprice(&original, &loaded, &r, &s);
    }
}

// ---- deterministic regressions -------------------------------------------

/// The file-based API round-trips the paper's booking example, including
/// interned symbol names and string-typed columns.
#[test]
fn file_round_trip_preserves_the_paper_example() {
    let (a, b) = tpdb::datagen::booking_example();
    let mut original = Catalog::new();
    original.register(a).unwrap();
    original.register(b).unwrap();

    let path = std::env::temp_dir().join(format!(
        "tpdb-roundtrip-{}-booking.snap",
        std::process::id()
    ));
    original.save_snapshot(&path).unwrap();
    let mut loaded = Catalog::new();
    loaded.load_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.relation_names(), original.relation_names());
    for name in original.relation_names() {
        assert_eq!(
            loaded.relation(&name).unwrap(),
            original.relation(&name).unwrap(),
            "relation `{name}` after file round trip"
        );
    }
    assert_eq!(
        loaded.symbols().len(),
        original.symbols().len(),
        "symbol dictionary survives"
    );
    assert_eq!(
        loaded.to_snapshot_bytes().unwrap(),
        original.to_snapshot_bytes().unwrap()
    );
}

/// An empty catalog round-trips too (no relations, no symbols).
#[test]
fn empty_catalog_round_trips() {
    let original = Catalog::new();
    let loaded = reload(&original);
    assert!(loaded.relation_names().is_empty());
}
