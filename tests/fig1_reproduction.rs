//! Integration test: the running example of the paper (Fig. 1) end to end,
//! through the umbrella crate and through the session API.

use tpdb::prelude::*;

/// The seven answer tuples of Fig. 1b, as (Name, Hotel, Ts, Te, probability).
const EXPECTED: [(&str, Option<&str>, i64, i64, f64); 7] = [
    ("Ann", None, 2, 4, 0.70),
    ("Ann", Some("hotel1"), 4, 6, 0.49),
    ("Ann", Some("hotel2"), 5, 8, 0.42),
    ("Ann", None, 4, 5, 0.21),
    ("Ann", None, 5, 6, 0.084),
    ("Ann", None, 6, 8, 0.28),
    ("Jim", None, 7, 10, 0.80),
];

fn check_result(result: &TpRelation) {
    assert_eq!(result.len(), EXPECTED.len());
    for (name, hotel, ts, te, p) in EXPECTED {
        let found = result.iter().find(|t| {
            t.fact(0) == &Value::str(name)
                && t.interval() == Interval::new(ts, te)
                && match hotel {
                    Some(h) => t.fact(2) == &Value::str(h),
                    None => t.fact(2).is_null(),
                }
        });
        let tuple = found
            .unwrap_or_else(|| panic!("missing expected tuple ({name}, {hotel:?}, [{ts},{te}))"));
        assert!(
            (tuple.probability() - p).abs() < 1e-9,
            "probability mismatch for ({name}, {hotel:?}, [{ts},{te})): expected {p}, got {}",
            tuple.probability()
        );
    }
}

#[test]
fn left_outer_join_via_library_api() {
    let (a, b) = tpdb::datagen::booking_example();
    let theta = ThetaCondition::column_equals("Loc", "Loc");
    let result = tp_left_outer_join(&a, &b, &theta).unwrap();
    check_result(&result);
}

#[test]
fn left_outer_join_via_session_nj_and_ta() {
    let (a, b) = tpdb::datagen::booking_example();
    let mut catalog = Catalog::new();
    catalog.register(a).unwrap();
    catalog.register(b).unwrap();
    let session = Session::new(catalog);

    for strategy in ["NJ", "TA"] {
        let q = format!("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY {strategy}");
        // materializing execution and a drained streaming cursor agree
        let result = session.execute(&q).unwrap();
        check_result(&result);
        let streamed = session.query(&q).unwrap().collect().unwrap();
        check_result(&streamed);
    }
}

#[test]
fn window_sets_match_fig_2() {
    let (a, b) = tpdb::datagen::booking_example();
    let theta = ThetaCondition::column_equals("Loc", "Loc");
    let wuon = lawan(&lawau(&overlapping_windows(&a, &b, &theta).unwrap(), &a));

    // Fig. 2: 2 unmatched, 2 overlapping, 3 negating windows.
    assert_eq!(
        wuon.iter()
            .filter(|w| w.kind == WindowKind::Unmatched)
            .count(),
        2
    );
    assert_eq!(
        wuon.iter()
            .filter(|w| w.kind == WindowKind::Overlapping)
            .count(),
        2
    );
    assert_eq!(
        wuon.iter()
            .filter(|w| w.kind == WindowKind::Negating)
            .count(),
        3
    );

    // The negating window over [5,6) carries λs = b3 ∨ b2.
    let w6 = wuon
        .iter()
        .find(|w| w.kind == WindowKind::Negating && w.interval == Interval::new(5, 6))
        .unwrap();
    let vars = w6.lambda_s.as_ref().unwrap().vars();
    assert_eq!(vars.len(), 2);
}

#[test]
fn anti_join_is_the_null_padded_part_of_the_left_outer_join() {
    let (a, b) = tpdb::datagen::booking_example();
    let theta = ThetaCondition::column_equals("Loc", "Loc");
    let left = tp_left_outer_join(&a, &b, &theta).unwrap();
    let anti = tp_anti_join(&a, &b, &theta).unwrap();

    let padded: Vec<_> = left.iter().filter(|t| t.fact(2).is_null()).collect();
    assert_eq!(padded.len(), anti.len());
    for t in anti.iter() {
        let twin = padded
            .iter()
            .find(|p| p.interval() == t.interval() && p.fact(0) == t.fact(0))
            .unwrap();
        assert!((twin.probability() - t.probability()).abs() < 1e-12);
    }
}
