//! Property tests for the session API: for random queries and data, the
//! three execution paths —
//!
//! 1. the legacy one-shot shim (`QueryEngine::query` with the literal
//!    inlined in the text),
//! 2. prepared-then-bound execution (`Session::prepare` + `$1` binding),
//! 3. cursor streaming (a drained [`ResultCursor`]),
//!
//! — produce **identical** `TpRelation`s, for all five TP join kinds. The
//! generators reuse the adversarial shapes of the plan-equivalence suite
//! (dense keys, shared endpoints, single-point intervals).

use proptest::prelude::*;
use tpdb::lineage::{Lineage, VarId};
use tpdb::prelude::Session;
use tpdb::storage::{Catalog, DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

const KIND_KEYWORDS: [&str; 5] = ["INNER", "LEFT OUTER", "RIGHT OUTER", "FULL OUTER", "ANTI"];

/// Builds a duplicate-free single-key relation from raw `(key, start,
/// duration)` rows, skipping rows that would overlap an existing same-key
/// interval (the TP duplicate-free constraint).
fn build(name: &str, var_offset: u32, rows: &[(i64, i64, i64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
    let mut var = var_offset;
    for (key, start, duration) in rows {
        let interval = Interval::new(*start, *start + *duration);
        if rel
            .iter()
            .any(|t| t.fact(0) == &Value::Int(*key) && t.interval().overlaps(&interval))
        {
            continue;
        }
        let prob = 0.15 + 0.08 * f64::from(var % 10);
        rel.push(TpTuple::new(
            vec![Value::Int(*key)],
            Lineage::var(VarId(var)),
            interval,
            prob,
        ))
        .unwrap();
        var += 1;
    }
    rel
}

fn catalog_over(r: &TpRelation, s: &TpRelation) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(r.clone()).unwrap();
    catalog.register(s.clone()).unwrap();
    catalog
}

/// Asserts that all execution paths agree for every join kind at the given
/// filter threshold.
fn assert_paths_identical(r: &TpRelation, s: &TpRelation, threshold: i64) {
    let session = Session::new(catalog_over(r, s));
    #[allow(deprecated)]
    let legacy_engine = tpdb::query::QueryEngine::new(catalog_over(r, s));

    for kw in KIND_KEYWORDS {
        let literal_text =
            format!("SELECT * FROM r TP {kw} JOIN s ON r.k = s.k WHERE k >= {threshold}");
        let param_text = format!("SELECT * FROM r TP {kw} JOIN s ON r.k = s.k WHERE k >= $1");
        let params = [Value::Int(threshold)];

        // Path 1: the legacy one-shot shim with the literal inlined.
        #[allow(deprecated)]
        let legacy = legacy_engine.query(&literal_text).unwrap();

        // Path 2a: one-shot session execution (plan cache; literal text).
        let one_shot = session.execute(&literal_text).unwrap();
        // Path 2b: prepared once, bound, executed (twice — re-execution
        // must not change the answer).
        let stmt = session.prepare(&param_text).unwrap();
        let prepared = stmt.execute(&params).unwrap();
        let prepared_again = stmt.execute(&params).unwrap();

        // Path 3a: drained cursor via collect().
        let collected = session
            .query_with(&param_text, &params)
            .unwrap()
            .collect()
            .unwrap();
        // Path 3b: drained cursor via the Iterator, tuple by tuple.
        let mut cursor = stmt.query(&params).unwrap();
        let mut manual = TpRelation::new("result", cursor.schema().clone());
        for t in &mut cursor {
            manual.push_unchecked(t.unwrap());
        }

        assert_eq!(one_shot, legacy, "{kw}: session vs legacy shim");
        assert_eq!(prepared, legacy, "{kw}: prepared vs legacy shim");
        assert_eq!(prepared_again, prepared, "{kw}: prepared re-execution");
        assert_eq!(collected, legacy, "{kw}: cursor collect vs legacy shim");
        assert_eq!(manual, legacy, "{kw}: manual cursor drain vs legacy shim");
    }
}

/// Dense keys (only 2 distinct values), starts on a small grid (shared
/// endpoints) and durations skewed toward 1 (single-point intervals).
fn adversarial_rows() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec(
        (
            0i64..2,
            0i64..10,
            prop_oneof![Just(1i64), Just(1i64), Just(1i64), 1i64..5],
        ),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn legacy_prepared_and_cursor_paths_are_identical(
        rr in adversarial_rows(),
        ss in adversarial_rows(),
        threshold in 0i64..3,
    ) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        assert_paths_identical(&r, &s, threshold);
    }
}

// ---- deterministic regressions -------------------------------------------

#[test]
fn paths_agree_on_the_paper_example() {
    let (a, b) = tpdb::datagen::booking_example();
    let session = Session::new({
        let mut c = Catalog::new();
        c.register(a.clone()).unwrap();
        c.register(b.clone()).unwrap();
        c
    });
    let literal = session
        .execute("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE Name = 'Ann'")
        .unwrap();
    let stmt = session
        .prepare("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE Name = $1")
        .unwrap();
    let prepared = stmt.execute(&[Value::str("Ann")]).unwrap();
    let streamed = stmt.query(&[Value::str("Ann")]).unwrap().collect().unwrap();
    assert_eq!(prepared, literal);
    assert_eq!(streamed, literal);
    assert_eq!(literal.len(), 6);
}

#[test]
fn paths_agree_on_empty_inputs() {
    let r = build("r", 0, &[]);
    let s = build("s", 1000, &[(0, 2, 3)]);
    assert_paths_identical(&r, &s, 0);
    assert_paths_identical(&s.renamed("r"), &r.renamed("s"), 0);
}
