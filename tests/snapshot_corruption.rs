//! Fault-injection suite for the binary snapshot format.
//!
//! Every test corrupts a valid snapshot — flipping, truncating or zeroing
//! header fields and section bytes, or hand-crafting a payload with a
//! specific semantic fault under a *valid* checksum — and asserts three
//! things:
//!
//! 1. the load fails with the **expected typed** `StorageError` variant
//!    (never a panic),
//! 2. the target catalog is left **byte-for-byte unchanged** (load is
//!    all-or-nothing), and
//! 3. exhaustive sweeps hold: *every* single-byte flip and *every*
//!    truncation length of a real snapshot is rejected.
//!
//! The hand-rolled `Snap` builder below mirrors the on-disk layout
//! documented in `tpdb-storage::snapshot` so individual fields can be
//! faulted precisely; its checksums are recomputed with the real `crc64`
//! so only the injected fault — not a checksum mismatch — explains the
//! rejection.

// Tests assert bit-exact values on purpose (reproducibility contract).
#![allow(clippy::float_cmp)]

use tpdb::storage::snapshot::{crc64, MAGIC, VERSION};
use tpdb::storage::{Catalog, DataType, Schema, StorageError, Value};
use tpdb::temporal::Interval;

// Section tags of the v1 format.
const TAG_SYMBOLS: u32 = 1;
const TAG_MARGINALS: u32 = 2;
const TAG_RELATIONS: u32 = 3;

// Per-value tags.
const VAL_INT: u8 = 2;
const VAL_STR: u8 = 4;

// Lineage op tags.
const OP_VAR: u8 = 2;
const OP_AND: u8 = 4;

// ---------------------------------------------------------------------------
// Little-endian byte builders (test-local mirror of the writer)
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A snapshot as three raw section payloads plus header fields, assembled
/// with freshly computed checksums. Tests mutate one field or payload and
/// leave everything else — including the CRCs — valid.
struct Snap {
    magic: [u8; 8],
    version: u32,
    /// `(tag, payload)` per section; checksum and length are derived.
    sections: Vec<(u32, Vec<u8>)>,
    /// Overrides the section count if set (to lie about it).
    count_override: Option<u32>,
    /// Extra bytes appended after the last section.
    trailing: Vec<u8>,
}

impl Snap {
    fn assemble(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.magic);
        put_u32(&mut out, self.version);
        let count = self.count_override.unwrap_or(self.sections.len() as u32);
        put_u32(&mut out, count);
        for (tag, payload) in &self.sections {
            put_u32(&mut out, *tag);
            put_u64(&mut out, payload.len() as u64);
            put_u64(&mut out, crc64(payload));
            out.extend_from_slice(payload);
        }
        out.extend_from_slice(&self.trailing);
        out
    }
}

/// The smallest interesting valid snapshot: one symbol `m1` (bound 1), one
/// marginal `(x0, 0.9)`, one relation `m(k: Int)` holding the single tuple
/// `(7, [3, 5), 0.9, x0)`.
fn minimal() -> Snap {
    Snap {
        magic: MAGIC,
        version: VERSION,
        sections: vec![
            (TAG_SYMBOLS, symbols_payload(&["m1"], 1)),
            (TAG_MARGINALS, marginals_payload(&[(0, 0.9)])),
            (TAG_RELATIONS, relations_payload(&default_relation())),
        ],
        count_override: None,
        trailing: Vec::new(),
    }
}

fn symbols_payload(names: &[&str], var_bound: u32) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        put_str(&mut out, name);
    }
    put_u32(&mut out, var_bound);
    out
}

fn marginals_payload(pairs: &[(u32, f64)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, pairs.len() as u32);
    for &(var, prob) in pairs {
        put_u32(&mut out, var);
        put_f64(&mut out, prob);
    }
    out
}

/// Knobs for the single-relation payload so each decode-side check can be
/// tripped in isolation.
struct Rel {
    name: &'static str,
    dtype_tag: u8,
    value: Vec<u8>,
    start: i64,
    end: i64,
    prob_bits: u64,
    lineage: Vec<u8>,
    lineage_ops: u32,
}

fn default_relation() -> Rel {
    let mut value = vec![VAL_INT];
    put_i64(&mut value, 7);
    Rel {
        name: "m",
        dtype_tag: 1, // Int
        value,
        start: 3,
        end: 5,
        prob_bits: 0.9f64.to_bits(),
        lineage: vec![OP_VAR, 0, 0, 0, 0], // var x0
        lineage_ops: 1,
    }
}

fn relations_payload(rel: &Rel) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, 1); // relation count
    put_str(&mut out, rel.name);
    put_u32(&mut out, 1); // arity
    put_str(&mut out, "k");
    out.push(rel.dtype_tag);
    put_u64(&mut out, 1); // tuple count
    out.extend_from_slice(&rel.value);
    put_i64(&mut out, rel.start);
    put_i64(&mut out, rel.end);
    put_u64(&mut out, rel.prob_bits);
    put_u32(&mut out, rel.lineage_ops);
    out.extend_from_slice(&rel.lineage);
    out
}

// ---------------------------------------------------------------------------
// All-or-nothing rejection harness
// ---------------------------------------------------------------------------

/// A non-empty catalog whose contents differ from every fixture in this
/// file, used to prove failed loads leave the target untouched.
fn sentinel() -> Catalog {
    let mut catalog = Catalog::new();
    let mut builder = catalog
        .create_relation("sentinel", Schema::tp(&[("city", DataType::Str)]))
        .unwrap();
    builder
        .push(
            vec![Value::Str("Delft".into())],
            Interval::new(10, 20),
            0.25,
        )
        .push(
            vec![Value::Str("Leiden".into())],
            Interval::new(15, 30),
            0.75,
        );
    let _ = builder.finish();
    catalog
}

/// Loads `bytes` into a sentinel catalog, asserts the load fails without
/// mutating the catalog, and hands back the typed error for matching.
fn assert_rejects(bytes: &[u8]) -> StorageError {
    let mut catalog = sentinel();
    let before = catalog.to_snapshot_bytes().unwrap();
    let epoch = catalog.schema_epoch();
    let err = catalog
        .load_snapshot_bytes(bytes)
        .expect_err("corrupt snapshot must be rejected");
    assert_eq!(
        catalog.to_snapshot_bytes().unwrap(),
        before,
        "failed load must leave the catalog unchanged (all-or-nothing)"
    );
    assert_eq!(
        catalog.schema_epoch(),
        epoch,
        "failed load must not bump the schema epoch"
    );
    err
}

fn assert_corrupt_in(err: StorageError, section: &str, detail_contains: &str) {
    match err {
        StorageError::SnapshotCorrupt { section: s, detail } => {
            assert_eq!(s, section, "wrong section in: {detail}");
            assert!(
                detail.contains(detail_contains),
                "detail `{detail}` should mention `{detail_contains}`"
            );
        }
        other => panic!("expected SnapshotCorrupt in `{section}`, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Baseline sanity: the hand-rolled minimal snapshot is actually valid
// ---------------------------------------------------------------------------

#[test]
fn minimal_snapshot_loads_and_reencodes_identically() {
    let bytes = minimal().assemble();
    let mut catalog = sentinel();
    catalog.load_snapshot_bytes(&bytes).unwrap();
    let relation = catalog.relation("m").unwrap();
    assert_eq!(relation.len(), 1);
    let tuple = relation.iter().next().unwrap();
    assert_eq!(tuple.fact(0), &Value::Int(7));
    assert_eq!(tuple.interval(), Interval::new(3, 5));
    assert_eq!(tuple.probability(), 0.9);
    assert_eq!(catalog.symbols().name(tpdb::lineage::VarId(0)), Some("m1"));
    // The builder mirrors the real writer exactly.
    assert_eq!(catalog.to_snapshot_bytes().unwrap(), bytes);
}

// ---------------------------------------------------------------------------
// Header faults
// ---------------------------------------------------------------------------

#[test]
fn flipped_magic_bytes_are_rejected() {
    for i in 0..MAGIC.len() {
        let mut snap = minimal();
        snap.magic[i] ^= 0xFF;
        let err = assert_rejects(&snap.assemble());
        assert_eq!(err, StorageError::SnapshotBadMagic, "magic byte {i}");
    }
}

#[test]
fn zeroed_magic_is_rejected() {
    let mut snap = minimal();
    snap.magic = [0; 8];
    assert_eq!(
        assert_rejects(&snap.assemble()),
        StorageError::SnapshotBadMagic
    );
}

#[test]
fn unsupported_versions_are_rejected() {
    for found in [0, VERSION + 1, 7, u32::MAX] {
        let mut snap = minimal();
        snap.version = found;
        let err = assert_rejects(&snap.assemble());
        assert_eq!(
            err,
            StorageError::SnapshotUnsupportedVersion {
                found,
                supported: VERSION,
            }
        );
    }
}

#[test]
fn zero_section_count_is_a_missing_section() {
    let mut snap = minimal();
    snap.sections.clear();
    snap.count_override = Some(0);
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "header",
        "missing section `symbols`",
    );
}

#[test]
fn overstated_section_count_is_rejected() {
    let mut snap = minimal();
    snap.count_override = Some(4); // only 3 sections follow
    let err = assert_rejects(&snap.assemble());
    assert!(
        matches!(err, StorageError::SnapshotTruncated { .. }),
        "reading the phantom fourth section must hit end-of-buffer, got {err:?}"
    );
}

#[test]
fn absurd_section_count_is_rejected_before_allocating() {
    let mut snap = minimal();
    snap.count_override = Some(u32::MAX);
    assert_corrupt_in(assert_rejects(&snap.assemble()), "header", "cannot fit");
}

#[test]
fn unknown_section_tag_is_rejected() {
    let mut snap = minimal();
    snap.sections[0].0 = 9;
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "header",
        "unknown section tag 9",
    );
}

#[test]
fn duplicate_section_is_rejected() {
    let mut snap = minimal();
    let dup = snap.sections[0].clone();
    snap.sections.push(dup);
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "header",
        "duplicate section `symbols`",
    );
}

#[test]
fn missing_sections_are_rejected() {
    for (drop_at, name) in [(0, "symbols"), (1, "marginals"), (2, "relations")] {
        let mut snap = minimal();
        snap.sections.remove(drop_at);
        assert_corrupt_in(
            assert_rejects(&snap.assemble()),
            "header",
            &format!("missing section `{name}`"),
        );
    }
}

#[test]
fn trailing_bytes_after_last_section_are_rejected() {
    let mut snap = minimal();
    snap.trailing = vec![0xAB, 0xCD];
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "header",
        "2 trailing byte(s)",
    );
}

#[test]
fn corrupted_checksum_field_is_a_checksum_mismatch() {
    // Flip one bit of each stored CRC (not the payload): the declared and
    // computed checksums disagree and the mismatch names the section.
    for (index, name) in [(0, "symbols"), (1, "marginals"), (2, "relations")] {
        let snap = minimal();
        let mut bytes = snap.assemble();
        // Walk to the section's CRC field: header is 16 bytes, each section
        // header is tag(4) + len(8) + crc(8) before its payload.
        let mut offset = 16;
        for (_, payload) in snap.sections.iter().take(index) {
            offset += 20 + payload.len();
        }
        let crc_at = offset + 12;
        bytes[crc_at] ^= 0x01;
        match assert_rejects(&bytes) {
            StorageError::SnapshotChecksumMismatch {
                section,
                expected,
                got,
            } => {
                assert_eq!(section, name);
                assert_ne!(expected, got);
            }
            other => panic!("expected checksum mismatch for `{name}`, got {other:?}"),
        }
    }
}

#[test]
fn overstated_section_length_is_rejected() {
    let snap = minimal();
    let mut bytes = snap.assemble();
    // The first section's length field sits right after the header + tag.
    let len_at = 16 + 4;
    let huge = (bytes.len() as u64) * 2;
    bytes[len_at..len_at + 8].copy_from_slice(&huge.to_le_bytes());
    let err = assert_rejects(&bytes);
    assert!(
        matches!(err, StorageError::SnapshotTruncated { .. }),
        "a length past end-of-buffer must be truncation, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Symbols-section faults (valid checksums, bad content)
// ---------------------------------------------------------------------------

#[test]
fn var_bound_below_dictionary_len_is_rejected() {
    let mut snap = minimal();
    snap.sections[0].1 = symbols_payload(&["m1"], 0);
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "symbols",
        "variable-space bound 0 is smaller than the dictionary",
    );
}

#[test]
fn duplicate_symbol_names_are_rejected() {
    let mut snap = minimal();
    snap.sections[0].1 = symbols_payload(&["m1", "m1"], 2);
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "symbols",
        "duplicate symbol name `m1`",
    );
}

#[test]
fn non_utf8_symbol_name_is_rejected() {
    let mut payload = Vec::new();
    put_u32(&mut payload, 1);
    put_u32(&mut payload, 2); // 2-byte name...
    payload.extend_from_slice(&[0xFF, 0xFE]); // ...that is not UTF-8
    put_u32(&mut payload, 1);
    let mut snap = minimal();
    snap.sections[0].1 = payload;
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "symbols",
        "not valid UTF-8",
    );
}

#[test]
fn overstated_symbol_count_is_rejected() {
    let mut snap = minimal();
    let mut payload = symbols_payload(&["m1"], 1);
    payload[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
    snap.sections[0].1 = payload;
    assert_corrupt_in(assert_rejects(&snap.assemble()), "symbols", "cannot fit");
}

#[test]
fn trailing_symbol_section_bytes_are_rejected() {
    let mut snap = minimal();
    snap.sections[0].1.push(0);
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "symbols",
        "trailing byte(s) after the section body",
    );
}

// ---------------------------------------------------------------------------
// Marginals-section faults
// ---------------------------------------------------------------------------

#[test]
fn marginal_var_out_of_bound_is_a_bad_symbol() {
    let mut snap = minimal();
    snap.sections[1].1 = marginals_payload(&[(5, 0.9)]);
    assert_eq!(
        assert_rejects(&snap.assemble()),
        StorageError::SnapshotBadSymbol { id: 5, bound: 1 }
    );
}

#[test]
fn out_of_range_marginal_probability_is_rejected() {
    for bad in [1.5, -0.25, f64::INFINITY] {
        let mut snap = minimal();
        snap.sections[1].1 = marginals_payload(&[(0, bad)]);
        assert_eq!(
            assert_rejects(&snap.assemble()),
            StorageError::SnapshotInvalidProbability(bad)
        );
    }
}

#[test]
fn nan_marginal_probability_is_rejected() {
    let mut snap = minimal();
    snap.sections[1].1 = marginals_payload(&[(0, f64::NAN)]);
    match assert_rejects(&snap.assemble()) {
        StorageError::SnapshotInvalidProbability(p) => assert!(p.is_nan()),
        other => panic!("expected SnapshotInvalidProbability(NaN), got {other:?}"),
    }
}

#[test]
fn unsorted_marginal_var_ids_are_rejected() {
    let mut snap = minimal();
    snap.sections[0].1 = symbols_payload(&["m1"], 3);
    snap.sections[1].1 = marginals_payload(&[(2, 0.5), (1, 0.5)]);
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "marginals",
        "not strictly increasing at id 1",
    );
}

#[test]
fn duplicate_marginal_var_ids_are_rejected() {
    let mut snap = minimal();
    snap.sections[1].1 = marginals_payload(&[(0, 0.5), (0, 0.6)]);
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "marginals",
        "not strictly increasing at id 0",
    );
}

// ---------------------------------------------------------------------------
// Relations-section faults
// ---------------------------------------------------------------------------

fn minimal_with(rel: Rel) -> Snap {
    let mut snap = minimal();
    snap.sections[2].1 = relations_payload(&rel);
    snap
}

#[test]
fn unknown_field_type_tag_is_rejected() {
    let rel = Rel {
        dtype_tag: 9,
        ..default_relation()
    };
    assert_corrupt_in(
        assert_rejects(&minimal_with(rel).assemble()),
        "relations",
        "unknown field type tag 9",
    );
}

#[test]
fn unknown_value_tag_is_rejected() {
    let rel = Rel {
        value: vec![9],
        ..default_relation()
    };
    assert_corrupt_in(
        assert_rejects(&minimal_with(rel).assemble()),
        "relations",
        "unknown value tag 9",
    );
}

#[test]
fn value_of_the_wrong_type_for_its_column_is_rejected() {
    // A string value in the Int column `k`, same total byte budget.
    let mut value = vec![VAL_STR];
    put_str(&mut value, "oops");
    let rel = Rel {
        value,
        ..default_relation()
    };
    assert_corrupt_in(
        assert_rejects(&minimal_with(rel).assemble()),
        "relations",
        "does not fit column `k` of `m`",
    );
}

#[test]
fn empty_interval_is_rejected() {
    let rel = Rel {
        start: 5,
        end: 5,
        ..default_relation()
    };
    let err = assert_rejects(&minimal_with(rel).assemble());
    assert!(
        matches!(err, StorageError::SnapshotCorrupt { ref section, .. } if section == "relations"),
        "an end <= start interval must be corrupt, got {err:?}"
    );
}

#[test]
fn out_of_range_tuple_probability_is_rejected() {
    let rel = Rel {
        prob_bits: 1.5f64.to_bits(),
        ..default_relation()
    };
    assert_eq!(
        assert_rejects(&minimal_with(rel).assemble()),
        StorageError::SnapshotInvalidProbability(1.5)
    );
}

#[test]
fn nan_tuple_probability_is_rejected() {
    let rel = Rel {
        prob_bits: f64::NAN.to_bits(),
        ..default_relation()
    };
    match assert_rejects(&minimal_with(rel).assemble()) {
        StorageError::SnapshotInvalidProbability(p) => assert!(p.is_nan()),
        other => panic!("expected SnapshotInvalidProbability(NaN), got {other:?}"),
    }
}

#[test]
fn lineage_var_out_of_bound_is_a_bad_symbol() {
    let rel = Rel {
        lineage: vec![OP_VAR, 1, 0, 0, 0], // x1 with bound 1
        ..default_relation()
    };
    assert_eq!(
        assert_rejects(&minimal_with(rel).assemble()),
        StorageError::SnapshotBadSymbol { id: 1, bound: 1 }
    );
}

#[test]
fn unknown_lineage_op_tag_is_rejected() {
    let rel = Rel {
        lineage: vec![9, 0, 0, 0, 0],
        ..default_relation()
    };
    assert_corrupt_in(
        assert_rejects(&minimal_with(rel).assemble()),
        "relations",
        "unknown lineage op tag 9",
    );
}

#[test]
fn empty_lineage_op_stream_is_rejected() {
    let rel = Rel {
        lineage_ops: 0,
        lineage: Vec::new(),
        ..default_relation()
    };
    assert_corrupt_in(
        assert_rejects(&minimal_with(rel).assemble()),
        "relations",
        "empty lineage op stream",
    );
}

#[test]
fn connective_with_too_few_operands_is_rejected() {
    // A single AND op claiming 5 operands over an empty stack.
    let mut lineage = vec![OP_AND];
    put_u32(&mut lineage, 5);
    let rel = Rel {
        lineage_ops: 1,
        lineage,
        ..default_relation()
    };
    assert_corrupt_in(
        assert_rejects(&minimal_with(rel).assemble()),
        "relations",
        "connective needs 5 operand(s)",
    );
}

#[test]
fn lineage_stream_leaving_extra_operands_is_rejected() {
    // Two var pushes and no connective: two operands left on the stack.
    let mut lineage = vec![OP_VAR, 0, 0, 0, 0];
    lineage.extend_from_slice(&[OP_VAR, 0, 0, 0, 0]);
    let rel = Rel {
        lineage_ops: 2,
        lineage,
        ..default_relation()
    };
    assert_corrupt_in(
        assert_rejects(&minimal_with(rel).assemble()),
        "relations",
        "extra operands",
    );
}

#[test]
fn duplicate_relation_names_are_rejected() {
    let one = relations_payload(&default_relation());
    let mut payload = Vec::new();
    put_u32(&mut payload, 2);
    payload.extend_from_slice(&one[4..]); // strip each inner count
    payload.extend_from_slice(&one[4..]);
    let mut snap = minimal();
    snap.sections[2].1 = payload;
    assert_corrupt_in(
        assert_rejects(&snap.assemble()),
        "relations",
        "duplicate relation name `m`",
    );
}

#[test]
fn overstated_tuple_count_is_rejected() {
    let mut payload = relations_payload(&default_relation());
    // tuple count u64 sits after count(4) + name(4+1) + arity(4) +
    // field name(4+1) + dtype(1).
    let at = 4 + 5 + 4 + 5 + 1;
    payload[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let mut snap = minimal();
    snap.sections[2].1 = payload;
    assert_corrupt_in(assert_rejects(&snap.assemble()), "relations", "cannot fit");
}

// ---------------------------------------------------------------------------
// Exhaustive sweeps over a real snapshot
// ---------------------------------------------------------------------------

/// A real catalog (builder-interned symbols, compound marginals, two
/// relations) whose snapshot exercises every section non-trivially.
fn real_snapshot() -> Vec<u8> {
    let mut catalog = Catalog::new();
    let mut weather = catalog
        .create_relation(
            "weather",
            Schema::tp(&[("city", DataType::Str), ("temp", DataType::Float)]),
        )
        .unwrap();
    weather
        .push(
            vec![Value::Str("Delft".into()), Value::Float(18.5)],
            Interval::new(0, 4),
            0.6,
        )
        .push(
            vec![Value::Str("Delft".into()), Value::Null],
            Interval::new(4, 9),
            0.3,
        );
    let _ = weather.finish();
    let mut flags = catalog
        .create_relation("flags", Schema::tp(&[("ok", DataType::Bool)]))
        .unwrap();
    flags.push(vec![Value::Bool(true)], Interval::new(1, 2), 0.5);
    let _ = flags.finish();
    catalog.to_snapshot_bytes().unwrap()
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let bytes = real_snapshot();
    let mut catalog = sentinel();
    let before = catalog.to_snapshot_bytes().unwrap();
    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0xFF;
        let err = catalog
            .load_snapshot_bytes(&flipped)
            .expect_err("every byte of the format is integrity-protected");
        assert!(
            matches!(
                err,
                StorageError::SnapshotBadMagic
                    | StorageError::SnapshotUnsupportedVersion { .. }
                    | StorageError::SnapshotChecksumMismatch { .. }
                    | StorageError::SnapshotTruncated { .. }
                    | StorageError::SnapshotCorrupt { .. }
            ),
            "byte {i}: unexpected error {err:?}"
        );
    }
    assert_eq!(catalog.to_snapshot_bytes().unwrap(), before);
}

#[test]
fn every_truncation_length_is_rejected() {
    let bytes = real_snapshot();
    let mut catalog = sentinel();
    let before = catalog.to_snapshot_bytes().unwrap();
    for len in 0..bytes.len() {
        let err = catalog
            .load_snapshot_bytes(&bytes[..len])
            .expect_err("a truncated snapshot must never load");
        assert!(
            matches!(
                err,
                StorageError::SnapshotBadMagic
                    | StorageError::SnapshotTruncated { .. }
                    | StorageError::SnapshotChecksumMismatch { .. }
                    | StorageError::SnapshotCorrupt { .. }
            ),
            "length {len}: unexpected error {err:?}"
        );
    }
    assert_eq!(catalog.to_snapshot_bytes().unwrap(), before);
}

#[test]
fn zeroing_each_section_payload_is_a_checksum_mismatch() {
    let snap = minimal();
    let assembled = snap.assemble();
    let mut offset = 16;
    for (index, (_, payload)) in snap.sections.iter().enumerate() {
        let payload_at = offset + 20;
        let mut bytes = assembled.clone();
        for b in &mut bytes[payload_at..payload_at + payload.len()] {
            *b = 0;
        }
        let err = assert_rejects(&bytes);
        assert!(
            matches!(err, StorageError::SnapshotChecksumMismatch { .. }),
            "zeroed section {index}: expected checksum mismatch, got {err:?}"
        );
        offset = payload_at + payload.len();
    }
}

#[test]
fn io_error_is_typed_and_leaves_catalog_unchanged() {
    let mut catalog = sentinel();
    let before = catalog.to_snapshot_bytes().unwrap();
    let missing = std::env::temp_dir().join(format!(
        "tpdb-corruption-{}-does-not-exist.snap",
        std::process::id()
    ));
    let err = catalog.load_snapshot(&missing).unwrap_err();
    assert!(
        matches!(err, StorageError::SnapshotIo { .. }),
        "missing file must be SnapshotIo, got {err:?}"
    );
    assert_eq!(catalog.to_snapshot_bytes().unwrap(), before);
}
