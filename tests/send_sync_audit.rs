//! The `Send`/`Sync` audit behind the server front-end: every type a
//! worker thread touches must cross (or be shared across) thread
//! boundaries. These are compile-time proofs — if a `Rc`, `RefCell` or
//! raw pointer sneaks into any of these types, this file stops building,
//! which is the point: the server's thread-safety is a checked property,
//! not an assumption.

use tpdb::prelude::*;
use tpdb::query::{PreparedPlan, ShardedPlanCache};
use tpdb::server::{Client, Response, ServerHandle, ServerStats};
use tpdb::storage::SharedCatalog;

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn engine_types_cross_thread_boundaries() {
    // Storage: catalogs move to worker threads and snapshots are shared.
    assert_send_sync::<Catalog>();
    assert_send_sync::<SharedCatalog>();
    assert_send_sync::<TpRelation>();
    assert_send_sync::<TpTuple>();
    assert_send_sync::<Value>();
    assert_send_sync::<Schema>();

    // Lineage: formulas ride inside tuples; the probability engine is
    // per-evaluation state a worker owns.
    assert_send_sync::<Lineage>();
    assert_send_sync::<SymbolTable>();
    assert_send_sync::<ProbabilityEngine>();

    // Temporal primitives.
    assert_send_sync::<Interval>();
}

#[test]
fn query_layer_types_cross_thread_boundaries() {
    // Sessions can be owned by a worker; prepared handles borrow them.
    assert_send_sync::<Session>();
    assert_send_sync::<PreparedQuery<'static>>();
    // Cursors wrap a boxed operator pipeline: `PhysicalOperator: Send`
    // makes the whole pipeline movable to the thread that drains it.
    assert_send::<ResultCursor>();
    // The shared plan cache is the one all workers hit concurrently.
    assert_send_sync::<ShardedPlanCache>();
    assert_send_sync::<PreparedPlan>();
    assert_send_sync::<TpdbError>();
}

#[test]
fn server_types_cross_thread_boundaries() {
    assert_send_sync::<ServerHandle>();
    assert_send_sync::<ServerStats>();
    assert_send::<Client>();
    assert_send_sync::<Response>();
}
