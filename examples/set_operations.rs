//! Temporal-probabilistic set operations (difference, intersection, union)
//! on two prediction feeds — the extension module built on the same window
//! machinery as the joins.
//!
//! Run with: `cargo run --example set_operations`

use tpdb::core::{tp_difference, tp_intersection, tp_union};
use tpdb::lineage::Lineage;
use tpdb::storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

fn feed(name: &str, var_prefix: u32, rows: &[(&str, (i64, i64), f64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("Event", DataType::Str)]));
    for (i, (event, iv, p)) in rows.iter().enumerate() {
        rel.push(TpTuple::new(
            vec![Value::str(event)],
            Lineage::var(tpdb::lineage::VarId(var_prefix + i as u32)),
            Interval::new(iv.0, iv.1),
            *p,
        ))
        .expect("example rows are valid");
    }
    rel
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two services predict periods during which events are likely to happen.
    let alpha = feed(
        "alpha",
        0,
        &[("maintenance", (0, 10), 0.8), ("peak-load", (2, 6), 0.5)],
    );
    let beta = feed(
        "beta",
        100,
        &[("maintenance", (4, 8), 0.5), ("outage", (0, 4), 0.9)],
    );

    println!("{alpha}");
    println!("{beta}");

    // Where does alpha predict something that beta does not confirm?
    println!("alpha ∖ beta:\n{}", tp_difference(&alpha, &beta)?);

    // Where do both feeds agree (and how confident is the combination)?
    println!("alpha ∩ beta:\n{}", tp_intersection(&alpha, &beta)?);

    // The merged prediction timeline.
    println!("alpha ∪ beta:\n{}", tp_union(&alpha, &beta)?);
    Ok(())
}
