//! Temporal-probabilistic set operations (`UNION` / `INTERSECT` /
//! `EXCEPT`) on two prediction feeds — first-class citizens of the query
//! language: they parse, plan, EXPLAIN, prepare and stream through the
//! Session API exactly like TP joins, and execute lazily on the same
//! window machinery.
//!
//! Run with: `cargo run --example set_operations`

use tpdb::core::tp_union;
use tpdb::lineage::Lineage;
use tpdb::query::Session;
use tpdb::storage::{Catalog, DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

fn feed(name: &str, var_prefix: u32, rows: &[(&str, (i64, i64), f64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("Event", DataType::Str)]));
    for (i, (event, iv, p)) in rows.iter().enumerate() {
        rel.push(TpTuple::new(
            vec![Value::str(event)],
            Lineage::var(tpdb::lineage::VarId(var_prefix + i as u32)),
            Interval::new(iv.0, iv.1),
            *p,
        ))
        .expect("example rows are valid");
    }
    rel
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two services predict periods during which events are likely to happen.
    let alpha = feed(
        "alpha",
        0,
        &[("maintenance", (0, 10), 0.8), ("peak-load", (2, 6), 0.5)],
    );
    let beta = feed(
        "beta",
        100,
        &[("maintenance", (4, 8), 0.5), ("outage", (0, 4), 0.9)],
    );

    println!("{alpha}");
    println!("{beta}");

    let mut catalog = Catalog::new();
    catalog.register(alpha.clone())?;
    catalog.register(beta.clone())?;
    let session = Session::new(catalog);

    // Where does alpha predict something that beta does not confirm?
    let difference = session.execute("SELECT * FROM alpha EXCEPT SELECT * FROM beta")?;
    println!("alpha ∖ beta:\n{difference}");

    // Where do both feeds agree (and how confident is the combination)?
    let intersection = session.execute("SELECT * FROM alpha INTERSECT SELECT * FROM beta")?;
    println!("alpha ∩ beta:\n{intersection}");

    // The merged prediction timeline — streamed through a cursor: tuples
    // leave the two-pass window pipeline one at a time.
    let mut cursor = session.query("SELECT * FROM alpha UNION SELECT * FROM beta")?;
    let first = cursor.next().expect("the union is non-empty")?;
    println!(
        "first union tuple off the stream: {} over {} (p = {:.2})",
        first.fact(0),
        first.interval(),
        first.probability()
    );
    let union = cursor.collect()?;

    // Sanity check against the core function the query layer lowers to:
    // the streamed query result is byte-identical to a direct core call.
    let direct = tp_union(&alpha, &beta)?;
    assert_eq!(union.tuples(), &direct.tuples()[1..]);
    println!("rest of the merged timeline:\n{union}");

    // EXPLAIN shows the lowering: the set operation rides on the sweep
    // overlap join of the all-attribute equality condition.
    println!(
        "{}",
        session.explain("SELECT * FROM alpha UNION SELECT * FROM beta")?
    );

    // Set operations compose with WHERE, parameters and chaining — prepare
    // once, bind many, like any other statement.
    let stmt = session.prepare(
        "SELECT * FROM alpha WHERE Event = $1 UNION SELECT * FROM beta WHERE Event = $1",
    )?;
    for event in ["maintenance", "outage"] {
        let rows = stmt.execute(&[Value::str(event)])?;
        println!(
            "merged timeline of '{event}' ({} interval(s)):\n{rows}",
            rows.len()
        );
    }
    Ok(())
}
