//! Temporal-probabilistic set operations (difference, intersection, union)
//! on two prediction feeds — the extension module built on the same window
//! machinery as the joins. The derived relations are registered back into
//! a session's catalog, where the query language (and its plan cache) can
//! filter them like any base relation.
//!
//! Run with: `cargo run --example set_operations`

use tpdb::core::{tp_difference, tp_intersection, tp_union};
use tpdb::lineage::Lineage;
use tpdb::query::Session;
use tpdb::storage::{Catalog, DataType, Schema, TpRelation, TpTuple, Value};
use tpdb::temporal::Interval;

fn feed(name: &str, var_prefix: u32, rows: &[(&str, (i64, i64), f64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("Event", DataType::Str)]));
    for (i, (event, iv, p)) in rows.iter().enumerate() {
        rel.push(TpTuple::new(
            vec![Value::str(event)],
            Lineage::var(tpdb::lineage::VarId(var_prefix + i as u32)),
            Interval::new(iv.0, iv.1),
            *p,
        ))
        .expect("example rows are valid");
    }
    rel
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two services predict periods during which events are likely to happen.
    let alpha = feed(
        "alpha",
        0,
        &[("maintenance", (0, 10), 0.8), ("peak-load", (2, 6), 0.5)],
    );
    let beta = feed(
        "beta",
        100,
        &[("maintenance", (4, 8), 0.5), ("outage", (0, 4), 0.9)],
    );

    println!("{alpha}");
    println!("{beta}");

    // Where does alpha predict something that beta does not confirm?
    let difference = tp_difference(&alpha, &beta)?;
    println!("alpha ∖ beta:\n{difference}");

    // Where do both feeds agree (and how confident is the combination)?
    println!("alpha ∩ beta:\n{}", tp_intersection(&alpha, &beta)?);

    // The merged prediction timeline.
    let union = tp_union(&alpha, &beta)?;
    println!("alpha ∪ beta:\n{union}");

    // Register the derived relations in a session: set-operation results
    // are first-class TP relations, so the query layer (prepared
    // statements, parameter binding, cursors) works on them unchanged.
    let mut catalog = Catalog::new();
    catalog.register(difference.renamed("diff"))?;
    catalog.register(union.renamed("merged"))?;
    let session = Session::new(catalog);

    let stmt = session.prepare("SELECT * FROM merged WHERE Event = $1")?;
    for event in ["maintenance", "outage"] {
        let rows = stmt.execute(&[Value::str(event)])?;
        println!(
            "merged timeline of '{event}' ({} interval(s)):\n{rows}",
            rows.len()
        );
    }
    Ok(())
}
