//! The server front-end under concurrent load: start a TP server
//! in-process over the meteo workload, hammer it from four client
//! threads (prepared statements, bound parameters, plain queries), and
//! print the aggregate request statistics — throughput, plan-cache
//! behavior and the per-client agreement check that every client saw
//! byte-identical rows.
//!
//! Run with: `cargo run --release --example concurrent_clients`

use std::time::Instant;
use tpdb::query::Session;
use tpdb::server::{protocol, Client, Server, ServerConfig};
use tpdb::storage::{Catalog, Value};

const CLIENTS: usize = 4;
const ROUNDS: usize = 5;
const JOIN: &str = "SELECT * FROM meteo_r TP LEFT JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (r, s) = tpdb::datagen::meteo_like(400, 7);
    println!("workload: meteo, {} + {} tuples", r.len(), s.len());

    let mut catalog = Catalog::new();
    catalog.register(r)?;
    catalog.register(s)?;

    // Serial reference: the rows every concurrent client must reproduce,
    // rendered exactly as the server renders them.
    let mut serial = Session::new(catalog.clone());
    serial.set_parallelism(1);
    let reference = protocol::render_relation_rows(&serial.execute(JOIN)?);
    println!(
        "reference result: {} rows (serial session)",
        reference.len()
    );

    let server = Server::start(
        catalog,
        ServerConfig {
            workers: CLIENTS,
            queue_depth: 4 * CLIENTS,
            parallelism: 1,
        },
    )?;
    let addr = server.local_addr();
    println!(
        "server: 127.0.0.1:{}, {CLIENTS} workers, queue depth {}",
        addr.port(),
        4 * CLIENTS
    );

    let started = Instant::now();
    let mut per_client = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for id in 0..CLIENTS {
            let reference = &reference;
            handles.push(scope.spawn(move || -> Result<(usize, u128), String> {
                let fail = |e: tpdb::server::ClientError| format!("client {id}: {e}");
                let mut client = Client::connect(addr).map_err(|e| format!("client {id}: {e}"))?;
                client
                    .prepare("drill", "SELECT * FROM meteo_r WHERE Metric = $1")
                    .map_err(fail)?;
                let t0 = Instant::now();
                let mut requests = 0usize;
                for round in 0..ROUNDS {
                    // The shared join: every client must see the serial rows.
                    let rows = client.query(JOIN).map_err(fail)?;
                    if &rows.rows != reference {
                        return Err(format!("client {id}: round {round} diverged from serial"));
                    }
                    // A parameterized drill-down through the prepared path.
                    let metric = (round % 8) as i64;
                    client
                        .execute("drill", &[Value::Int(metric)])
                        .map_err(fail)?;
                    requests += 2;
                }
                client.close().map_err(fail)?;
                Ok((requests, t0.elapsed().as_millis()))
            }));
        }
        for handle in handles {
            per_client.push(handle.join().expect("client thread panicked"));
        }
    });
    let wall_ms = started.elapsed().as_millis().max(1);

    let mut total_requests = 0usize;
    for (id, outcome) in per_client.into_iter().enumerate() {
        let (requests, ms) = outcome?;
        println!("client {id}: {requests} requests in {ms} ms — all rows byte-identical");
        total_requests += requests;
    }

    let stats = server.shutdown();
    println!("---");
    println!(
        "aggregate: {total_requests} requests over {CLIENTS} clients in {wall_ms} ms \
         ({:.0} req/s)",
        total_requests as f64 * 1000.0 / wall_ms as f64
    );
    println!(
        "server counters: {} connections, {} requests, {} executed, \
         cache {} hits / {} misses, {} busy rejections",
        stats.connections,
        stats.requests,
        stats.executed,
        stats.cache_hits,
        stats.cache_misses,
        stats.busy_rejections
    );
    assert_eq!(stats.connections as usize, CLIENTS);
    assert_eq!(stats.executing, 0);
    Ok(())
}
