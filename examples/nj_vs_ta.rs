//! Head-to-head comparison of the lineage-aware window approach (NJ) and
//! the Temporal Alignment baseline (TA) on a Webkit-like workload — a
//! miniature version of the paper's Fig. 7 that also verifies that both
//! systems return the same answer. Both strategies run through the session
//! API as prepared statements, re-executed per input size without
//! re-parsing.
//!
//! Run with: `cargo run --release --example nj_vs_ta`

use std::time::Instant;
use tpdb::query::Session;
use tpdb::storage::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [1_000usize, 2_000, 4_000];
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "tuples", "NJ [ms]", "TA [ms]", "speedup"
    );
    for n in sizes {
        let (r, s) = tpdb::datagen::webkit_like(n, 42);
        let mut catalog = Catalog::new();
        catalog.register(r)?;
        catalog.register(s)?;
        let session = Session::new(catalog);

        let nj_stmt = session.prepare(
            "SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key STRATEGY NJ",
        )?;
        let ta_stmt = session.prepare(
            "SELECT * FROM webkit_r TP LEFT JOIN webkit_s ON webkit_r.Key = webkit_s.Key STRATEGY TA",
        )?;

        let start = Instant::now();
        let nj = nj_stmt.execute(&[])?;
        let nj_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let ta = ta_stmt.execute(&[])?;
        let ta_ms = start.elapsed().as_secs_f64() * 1000.0;

        // Same semantics: same number of output tuples and same total
        // probability mass.
        assert_eq!(nj.len(), ta.len());
        let mass = |rel: &tpdb::storage::TpRelation| -> f64 {
            rel.iter()
                .map(|t| t.probability() * t.interval().duration() as f64)
                .sum()
        };
        assert!((mass(&nj) - mass(&ta)).abs() < 1e-6);

        println!(
            "{:>8} {:>12.2} {:>12.2} {:>9.1}x",
            n,
            nj_ms,
            ta_ms,
            ta_ms / nj_ms.max(1e-9)
        );
    }
    println!("\nBoth systems returned identical results at every size.");
    Ok(())
}
