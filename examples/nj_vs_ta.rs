//! Head-to-head comparison of the lineage-aware window approach (NJ) and
//! the Temporal Alignment baseline (TA) on a Webkit-like workload — a
//! miniature version of the paper's Fig. 7 that also verifies that both
//! systems return the same answer.
//!
//! Run with: `cargo run --release --example nj_vs_ta`

use std::time::Instant;
use tpdb::core::{tp_left_outer_join, ThetaCondition};
use tpdb::ta::ta_left_outer_join;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [1_000usize, 2_000, 4_000];
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "tuples", "NJ [ms]", "TA [ms]", "speedup"
    );
    for n in sizes {
        let (r, s) = tpdb::datagen::webkit_like(n, 42);
        let theta = ThetaCondition::column_equals("Key", "Key");

        let start = Instant::now();
        let nj = tp_left_outer_join(&r, &s, &theta)?;
        let nj_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let ta = ta_left_outer_join(&r, &s, &theta)?;
        let ta_ms = start.elapsed().as_secs_f64() * 1000.0;

        // Same semantics: same number of output tuples and same total
        // probability mass.
        assert_eq!(nj.len(), ta.len());
        let mass = |rel: &tpdb::storage::TpRelation| -> f64 {
            rel.iter()
                .map(|t| t.probability() * t.interval().duration() as f64)
                .sum()
        };
        assert!((mass(&nj) - mass(&ta)).abs() < 1e-6);

        println!(
            "{:>8} {:>12.2} {:>12.2} {:>9.1}x",
            n,
            nj_ms,
            ta_ms,
            ta_ms / nj_ms.max(1e-9)
        );
    }
    println!("\nBoth systems returned identical results at every size.");
    Ok(())
}
