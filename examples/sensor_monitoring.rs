//! A Meteo-style monitoring scenario on synthetic data: find, for every
//! station and point in time, the probability that a measured metric is
//! *not* corroborated by any reference series — a TP anti join on a
//! non-selective condition, the workload family of Fig. 5b/6b/7b — driven
//! through the session API with a parameterized drill-down query and a
//! streaming cursor.
//!
//! Run with: `cargo run --release --example sensor_monitoring`

use tpdb::lineage::ProbabilityEngine;
use tpdb::query::Session;
use tpdb::storage::{Catalog, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 000 prediction tuples per relation: station measurements (r) and a
    // reference feed (s), joined on the metric id — only ~40 distinct
    // metrics exist, so θ is deliberately non-selective.
    let (measurements, reference) = tpdb::datagen::meteo_like(4_000, 7);
    println!(
        "measurements: {} tuples over {} stations / {} metrics",
        measurements.len(),
        measurements.distinct_values(0).len(),
        measurements.distinct_values(1).len()
    );
    println!("reference:    {} tuples", reference.len());

    let mut catalog = Catalog::new();
    catalog.register(measurements)?;
    catalog.register(reference)?;
    let session = Session::new(catalog);

    // Which measurement intervals are not corroborated by the reference
    // feed at all (or only by reference tuples that are probably wrong)?
    // Stream the anti join through a cursor and keep a top-10 of the most
    // "suspicious" intervals — the full result is never materialized.
    let cursor = session
        .query("SELECT * FROM meteo_r TP ANTI JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric")?;
    let mut ranked = Vec::new();
    let mut total = 0usize;
    for tuple in cursor {
        let tuple = tuple?;
        total += 1;
        ranked.push(tuple);
        ranked.sort_by(|x, y| y.probability().total_cmp(&x.probability()));
        ranked.truncate(10);
    }
    println!("anti join streamed {total} output tuples; top uncorroborated intervals:");
    for t in &ranked {
        println!(
            "  station {:>4}  metric {:>3}  {}  p = {:.3}",
            t.fact(0),
            t.fact(1),
            t.interval(),
            t.probability()
        );
    }

    // Drill down per metric with a prepared, parameterized statement: one
    // parse for any number of metrics.
    let per_metric = session.prepare(
        "SELECT * FROM meteo_r TP ANTI JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric WHERE Metric = $1",
    )?;
    for metric in [0i64, 1, 2] {
        let rows = per_metric.execute(&[Value::Int(metric)])?;
        println!("metric {metric}: {} uncorroborated interval(s)", rows.len());
    }
    let stats = session.stats();
    println!(
        "plan cache after the sweep: {} hit(s), {} miss(es)",
        stats.cache_hits, stats.cache_misses
    );

    // The left outer join additionally keeps the corroborated pairs; verify
    // the probability of one derived tuple against the lineage engine.
    let full = session
        .execute("SELECT * FROM meteo_r TP LEFT JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric")?;
    let mut engine = ProbabilityEngine::new();
    session
        .catalog()
        .relation("meteo_r")?
        .register_probabilities(&mut engine);
    session
        .catalog()
        .relation("meteo_s")?
        .register_probabilities(&mut engine);
    let sample = full.tuple(0);
    let recomputed = engine.probability(sample.lineage());
    assert!((recomputed - sample.probability()).abs() < 1e-9);
    println!(
        "left outer join produced {} tuples; spot-checked probability {:.4} matches its lineage",
        full.len(),
        sample.probability()
    );
    Ok(())
}
