//! A Meteo-style monitoring scenario on synthetic data: find, for every
//! station and point in time, the probability that a measured metric is
//! *not* corroborated by any reference series — a TP anti join on a
//! non-selective condition, the workload family of Fig. 5b/6b/7b.
//!
//! Run with: `cargo run --release --example sensor_monitoring`

use tpdb::core::{tp_anti_join, tp_left_outer_join, ThetaCondition};
use tpdb::lineage::ProbabilityEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 000 prediction tuples per relation: station measurements (r) and a
    // reference feed (s), joined on the metric id — only ~40 distinct
    // metrics exist, so θ is deliberately non-selective.
    let (measurements, reference) = tpdb::datagen::meteo_like(4_000, 7);
    let theta = ThetaCondition::column_equals("Metric", "Metric");

    println!(
        "measurements: {} tuples over {} stations / {} metrics",
        measurements.len(),
        measurements.distinct_values(0).len(),
        measurements.distinct_values(1).len()
    );
    println!("reference:    {} tuples", reference.len());

    // Which measurement intervals are not corroborated by the reference feed
    // at all (or only by reference tuples that are probably wrong)?
    let uncorroborated = tp_anti_join(&measurements, &reference, &theta)?;
    println!("anti join produced {} output tuples", uncorroborated.len());

    // Summarize: the ten most "suspicious" intervals — highest probability
    // of having no corroboration.
    let mut ranked: Vec<_> = uncorroborated.iter().collect();
    ranked.sort_by(|x, y| y.probability().total_cmp(&x.probability()));
    println!("top uncorroborated intervals:");
    for t in ranked.iter().take(10) {
        println!(
            "  station {:>4}  metric {:>3}  {}  p = {:.3}",
            t.fact(0),
            t.fact(1),
            t.interval(),
            t.probability()
        );
    }

    // The left outer join additionally keeps the corroborated pairs; verify
    // the probability of one derived tuple against the lineage engine.
    let full = tp_left_outer_join(&measurements, &reference, &theta)?;
    let mut engine = ProbabilityEngine::new();
    measurements.register_probabilities(&mut engine);
    reference.register_probabilities(&mut engine);
    let sample = full.tuple(0);
    let recomputed = engine.probability(sample.lineage());
    assert!((recomputed - sample.probability()).abs() < 1e-9);
    println!(
        "left outer join produced {} tuples; spot-checked probability {:.4} matches its lineage",
        full.len(),
        sample.probability()
    );
    Ok(())
}
