//! The booking-website scenario of the paper's introduction, driven through
//! the textual query language and the pipelined query engine.
//!
//! The website archives predictions about where clients want to travel
//! (relation `a`) and about hotel availability (relation `b`). To manage
//! supply and demand it asks, for each day, with which probability a client
//! will find *no* accommodation at their preferred location — a TP left
//! outer / anti join.
//!
//! Run with: `cargo run --example booking_website`

use tpdb::query::QueryEngine;
use tpdb::storage::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example of Fig. 1, prepackaged by the data generator.
    let (a, b) = tpdb::datagen::booking_example();

    let mut catalog = Catalog::new();
    catalog.register(a)?;
    catalog.register(b)?;
    let engine = QueryEngine::new(catalog);

    // Q = a ⟕_{a.Loc = b.Loc} b  — Fig. 1b.
    let q = "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc";
    println!("EXPLAIN {q}\n{}", engine.explain(q)?);
    let result = engine.query(q)?;
    println!("Result ({} tuples):\n{result}", result.len());

    // When will Ann definitely need an alternative? The anti join keeps, per
    // day, the probability that *no* matching hotel is available.
    let q = "SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = 'Ann'";
    let unbooked = engine.query(q)?;
    println!("Days on which Ann finds no hotel (with probability):\n{unbooked}");

    // The same query executed with the Temporal Alignment baseline gives the
    // same answer — just more slowly on large inputs.
    let q_ta = "SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = 'Ann' STRATEGY TA";
    let unbooked_ta = engine.query(q_ta)?;
    assert_eq!(unbooked.len(), unbooked_ta.len());
    println!(
        "(Temporal Alignment strategy returns the same {} tuples.)",
        unbooked_ta.len()
    );
    Ok(())
}
