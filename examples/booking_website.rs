//! The booking-website scenario of the paper's introduction, driven through
//! the session API: prepared statements, parameter binding, streaming
//! cursors and the plan cache.
//!
//! The website archives predictions about where clients want to travel
//! (relation `a`) and about hotel availability (relation `b`). To manage
//! supply and demand it asks, for each day, with which probability a client
//! will find *no* accommodation at their preferred location — a TP left
//! outer / anti join. A production front-end serves that question for
//! *many* clients: prepare the statement once, bind each client's name.
//!
//! Run with: `cargo run --example booking_website`

use tpdb::query::Session;
use tpdb::storage::{Catalog, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example of Fig. 1, prepackaged by the data generator.
    let (a, b) = tpdb::datagen::booking_example();

    let mut catalog = Catalog::new();
    catalog.register(a)?;
    catalog.register(b)?;
    let session = Session::new(catalog);

    // Q = a ⟕_{a.Loc = b.Loc} b  — Fig. 1b.
    let q = "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc";
    println!("EXPLAIN {q}\n{}", session.explain(q)?);
    let result = session.execute(q)?;
    println!("Result ({} tuples):\n{result}", result.len());

    // When will a client definitely need an alternative? The anti join
    // keeps, per day, the probability that *no* matching hotel is
    // available. Prepared once, executed per client with a bound `$1`.
    let stmt =
        session.prepare("SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = $1")?;
    for client in ["Ann", "Jim"] {
        let unbooked = stmt.execute(&[Value::str(client)])?;
        println!("Days on which {client} finds no hotel (with probability):\n{unbooked}");
    }

    // The same prepared statement as a streaming cursor: tuples arrive as
    // they leave the window pipeline, nothing is materialized.
    let mut cursor = stmt.query(&[Value::str("Ann")])?;
    let first = cursor.next().expect("Ann has unbooked days")?;
    println!(
        "first streamed tuple: {} during {} with p = {:.2}",
        first.fact(0),
        first.interval(),
        first.probability()
    );
    drop(cursor); // dropping a cursor abandons the rest of the computation

    // Both executions above reused the cached plan: one miss, then hits.
    let stats = session.stats();
    println!(
        "plan cache: {} hit(s), {} miss(es), {} cached plan(s)",
        stats.cache_hits, stats.cache_misses, stats.cached_plans
    );
    assert!(stats.cache_hits >= 1);

    // The deprecated pre-session shim still compiles and agrees — kept as
    // the compatibility demonstration for code that has not migrated yet.
    #[allow(deprecated)]
    {
        let (a, b) = tpdb::datagen::booking_example();
        let mut catalog = Catalog::new();
        catalog.register(a)?;
        catalog.register(b)?;
        let engine = tpdb::query::QueryEngine::new(catalog);
        let legacy = engine.query(q)?;
        assert_eq!(legacy.len(), result.len());
        println!(
            "(deprecated QueryEngine shim returns the same {} tuples)",
            legacy.len()
        );
    }
    Ok(())
}
