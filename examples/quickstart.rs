//! Quickstart: build two TP relations, run every TP join with negation and
//! print the results.
//!
//! Run with: `cargo run --example quickstart`

use tpdb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the base relations through a catalog. Every pushed tuple gets
    //    an atomic lineage variable (a1, a2, ..., b1, ...) and its marginal
    //    probability is registered with the catalog.
    let mut catalog = Catalog::new();

    let mut a = catalog.create_relation(
        "a",
        Schema::tp(&[
            ("Name", tpdb::storage::DataType::Str),
            ("Loc", tpdb::storage::DataType::Str),
        ]),
    )?;
    a.push(
        vec![Value::str("Ann"), Value::str("ZAK")],
        Interval::new(2, 8),
        0.7,
    )
    .push(
        vec![Value::str("Jim"), Value::str("WEN")],
        Interval::new(7, 10),
        0.8,
    );
    let a = a.finish();

    let mut b = catalog.create_relation(
        "b",
        Schema::tp(&[
            ("Hotel", tpdb::storage::DataType::Str),
            ("Loc", tpdb::storage::DataType::Str),
        ]),
    )?;
    b.push(
        vec![Value::str("hotel3"), Value::str("SOR")],
        Interval::new(1, 4),
        0.9,
    )
    .push(
        vec![Value::str("hotel2"), Value::str("ZAK")],
        Interval::new(5, 8),
        0.6,
    )
    .push(
        vec![Value::str("hotel1"), Value::str("ZAK")],
        Interval::new(4, 6),
        0.7,
    );
    let b = b.finish();

    println!("{a}");
    println!("{b}");

    // 2. The join condition θ: a.Loc = b.Loc.
    let theta = ThetaCondition::column_equals("Loc", "Loc");

    // 3. Run every TP join with negation.
    println!("TP inner join:\n{}", tp_inner_join(&a, &b, &theta)?);
    println!(
        "TP left outer join (the query of Fig. 1b):\n{}",
        tp_left_outer_join(&a, &b, &theta)?
    );
    println!("TP anti join:\n{}", tp_anti_join(&a, &b, &theta)?);
    println!(
        "TP right outer join:\n{}",
        tp_right_outer_join(&a, &b, &theta)?
    );
    println!(
        "TP full outer join:\n{}",
        tp_full_outer_join(&a, &b, &theta)?
    );

    // 4. Look at the windows behind the left outer join.
    let windows = overlapping_windows(&a, &b, &theta)?;
    let wuon = lawan(&lawau(&windows, &a));
    println!("generalized lineage-aware temporal windows of a with respect to b:");
    for w in &wuon {
        println!("  {}", w.display_with(&a, &b, catalog.symbols()));
    }
    Ok(())
}
