//! Quickstart: build two TP relations, run every TP join with negation
//! through a `Session` and print the results.
//!
//! Run with: `cargo run --example quickstart`

use tpdb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the base relations through a catalog. Every pushed tuple gets
    //    an atomic lineage variable (a1, a2, ..., b1, ...) and its marginal
    //    probability is registered with the catalog.
    let mut catalog = Catalog::new();

    let mut a = catalog.create_relation(
        "a",
        Schema::tp(&[
            ("Name", tpdb::storage::DataType::Str),
            ("Loc", tpdb::storage::DataType::Str),
        ]),
    )?;
    a.push(
        vec![Value::str("Ann"), Value::str("ZAK")],
        Interval::new(2, 8),
        0.7,
    )
    .push(
        vec![Value::str("Jim"), Value::str("WEN")],
        Interval::new(7, 10),
        0.8,
    );
    let a = a.finish();

    let mut b = catalog.create_relation(
        "b",
        Schema::tp(&[
            ("Hotel", tpdb::storage::DataType::Str),
            ("Loc", tpdb::storage::DataType::Str),
        ]),
    )?;
    b.push(
        vec![Value::str("hotel3"), Value::str("SOR")],
        Interval::new(1, 4),
        0.9,
    )
    .push(
        vec![Value::str("hotel2"), Value::str("ZAK")],
        Interval::new(5, 8),
        0.6,
    )
    .push(
        vec![Value::str("hotel1"), Value::str("ZAK")],
        Interval::new(4, 6),
        0.7,
    );
    let b = b.finish();

    println!("{a}");
    println!("{b}");

    // 2. Keep direct handles on the relations for the window inspection
    //    below, then hand the catalog to a session — the query front-end.
    let session = Session::new(catalog);

    // 3. Run every TP join with negation through the query language. The
    //    session caches the parsed plans, so re-running any of these
    //    queries would skip parse + validation entirely.
    for (title, kind) in [
        ("TP inner join", "INNER"),
        ("TP left outer join (the query of Fig. 1b)", "LEFT OUTER"),
        ("TP anti join", "ANTI"),
        ("TP right outer join", "RIGHT OUTER"),
        ("TP full outer join", "FULL OUTER"),
    ] {
        let q = format!("SELECT * FROM a TP {kind} JOIN b ON a.Loc = b.Loc");
        println!("{title}:\n{}", session.execute(&q)?);
    }

    // 4. The same join as a lazy tuple stream (what session cursors drive):
    //    the first answer tuple is formed from a single window.
    let theta = ThetaCondition::column_equals("Loc", "Loc");
    let mut stream = TpJoinStream::new(&*a, &*b, &theta, tpdb::core::TpJoinKind::LeftOuter)?;
    let first = stream.next().expect("the join has answers");
    println!(
        "first streamed answer tuple: {} @ {} (after {} window)",
        first.fact(0),
        first.interval(),
        stream.windows_consumed()
    );

    // 5. Look at the windows behind the left outer join.
    let windows = overlapping_windows(&a, &b, &theta)?;
    let wuon = lawan(&lawau(&windows, &a));
    println!("generalized lineage-aware temporal windows of a with respect to b:");
    for w in &wuon {
        println!("  {}", w.display_with(&a, &b, session.catalog().symbols()));
    }
    Ok(())
}
