//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides the subset the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over integer and float ranges, and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through SplitMix64
//! — fully deterministic per seed, which is all the workload generators
//! require. Stream-compatibility with the real `rand::rngs::StdRng`
//! (ChaCha12) is *not* promised; seeds produce different but equally valid
//! datasets.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods for producing typed random values.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (0.0f64..1.0).sample_from(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that values of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        // map the 53-bit fraction onto [start, end] inclusively
        let frac = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + frac * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` via Lemire-style rejection on the high bits.
fn uniform_u128<G: Rng>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // rejection sampling keeps the distribution exactly uniform
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        // spans exceeding u64 (never hit by this workspace's generators)
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

/// Maps 64 random bits to a float in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator of this stand-in: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let j: i64 = rng.random_range(1i64..=3);
            assert!((1..=3).contains(&j));
            let f: f64 = rng.random_range(0.05..1.0);
            assert!((0.05..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
