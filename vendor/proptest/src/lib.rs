//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest's API that the workspace's property
//! tests use: range / tuple / `Just` / union strategies, `prop_map`,
//! `prop_recursive`, `collection::vec`, `any::<bool>()`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` randomized
//! cases drawn from a deterministic per-test RNG (seeded from the test's
//! module path), so failures are reproducible run-to-run. Unlike the real
//! proptest there is **no shrinking** — a failing case reports the case
//! number and assertion message only.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Value-tree-free stand-ins for `proptest::collection`.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy generating a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Stand-in for `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Strategy producing uniformly random `bool`s.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    macro_rules! arbitrary_via_full_range {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = ::std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    arbitrary_via_full_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

/// The commonly used subset, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs the body of a `proptest!`-generated case, mapping `prop_assert*`
/// early returns into a panic carrying the case number.
#[doc(hidden)]
pub fn run_case(case: u32, result: Result<(), String>) {
    if let Err(message) = result {
        panic!("proptest case #{case} failed: {message}");
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                $(let $arg = ($strat);)+
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    $crate::run_case(case, outcome);
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`", left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}", left, right, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`", left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`: {}", left, right, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
