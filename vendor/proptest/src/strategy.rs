//! Strategies: composable recipes for generating random test inputs.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: values are either drawn from `self`
    /// (the leaf) or from `branch` applied to the strategy built so far,
    /// nesting up to `depth` levels. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility but not
    /// used by this stand-in.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Prefer branching 3:1 so deeply structured values dominate
            // while leaves remain reachable at every level.
            current = Union::weighted(vec![
                (1, leaf.clone()),
                (3, branch(current).boxed()),
            ])
            .boxed();
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adaptor applying a function to every generated value.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among strategies with a common value type.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    /// Uniform choice among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(options.into_iter().map(|o| (1, o)).collect())
    }

    /// Choice among `options`, each picked proportionally to its weight.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        let total_weight = options.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "Union weights must not all be zero");
        Self { options, total_weight }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self { options: self.options.clone(), total_weight: self.total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total_weight);
        for (weight, option) in &self.options {
            if pick < *weight {
                return option.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is always below the total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Length bounds for [`crate::collection::vec`]: `min..max` (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.random_range(self.min..self.max)
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self { min: range.start, max: range.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        Self { min: *range.start(), max: *range.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self { min: len, max: len + 1 }
    }
}

/// Strategy generating vectors of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        Self { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
