//! Test-runner configuration and the deterministic RNG behind `proptest!`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies. Seeded from the test's module path so each
/// test draws a distinct but run-to-run reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives a reproducible RNG from an arbitrary name (FNV-1a hash).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(hash))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
