//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API that the figure benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], `criterion_group!` /
//! `criterion_main!` and [`black_box`] — with a deliberately simple
//! measurement loop: one warm-up iteration followed by `sample_size` timed
//! iterations, reporting the mean and minimum wall-clock time per
//! iteration. There is no statistical analysis, HTML report, or baseline
//! comparison; swap in the real criterion for publication-grade numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 20 }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 20, f);
        self
    }
}

/// A named collection of measurements sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { timings: Vec::new() };
    // warm-up iteration, not recorded
    f(&mut bencher);
    bencher.timings.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    let timings = &bencher.timings;
    if timings.is_empty() {
        println!("  {label}: no iterations recorded");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / u32::try_from(timings.len()).unwrap_or(u32::MAX);
    let min = timings.iter().min().copied().unwrap_or_default();
    println!("  {label}: mean {mean:?}, min {min:?} ({} samples)", timings.len());
}

/// Identifies one benchmark within a group, e.g. `NJ/8000`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a series name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(name: S) -> Self {
        Self(name.into())
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs and times one iteration of the benchmarked routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.timings.push(start.elapsed());
        drop(black_box(out));
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
