//! No-op `Serialize` / `Deserialize` derives for the offline serde stand-in.
//!
//! The derives intentionally expand to nothing: the marker traits in the
//! stand-in `serde` crate carry no methods, and no code in this workspace
//! serializes through them yet. Deriving still validates that the attribute
//! positions compile, so switching to the real `serde_derive` later is
//! source-compatible.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
