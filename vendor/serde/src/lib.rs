//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! just enough of serde's public surface for the workspace to compile: the
//! `Serialize` / `Deserialize` traits and (behind the `derive` feature)
//! no-op derive macros of the same names. No actual serialization format is
//! wired up yet; swapping this for the real `serde` is a one-line change in
//! the workspace manifest once the registry is reachable.

/// A data structure that can be serialized (marker-only in this stand-in).
pub trait Serialize {}

/// A data structure that can be deserialized (marker-only in this stand-in).
pub trait Deserialize<'de>: Sized {}

/// A data structure that can be deserialized without borrowing.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
