//! # TPDB — Temporal-Probabilistic Database engine
//!
//! An open-source Rust reproduction of *"Outer and Anti Joins in
//! Temporal-Probabilistic Databases"* (Papaioannou, Theobald, Böhlen — ICDE
//! 2019).
//!
//! The umbrella crate re-exports the public API of every component crate so
//! that downstream users can depend on a single crate:
//!
//! * [`temporal`] — interval algebra and sweep-line primitives,
//! * [`lineage`] — boolean lineage formulas and exact probability,
//! * [`storage`] — the TP data model, relations and catalog,
//! * [`core`] — lineage-aware temporal windows, LAWAU/LAWAN and TP joins,
//! * [`ta`] — the Temporal Alignment baseline,
//! * [`query`] — the pipelined (Volcano-style) query engine,
//! * [`server`] — the concurrent multi-session TCP front-end,
//! * [`datagen`] — synthetic dataset generators for the experiments.
//!
//! ## Quickstart
//!
//! ```
//! use tpdb::prelude::*;
//!
//! // Build the running example of the paper (Fig. 1).
//! let (a, b) = tpdb::datagen::booking_example();
//!
//! // TP left outer join:   Q = a ⟕_{a.Loc = b.Loc} b
//! let theta = ThetaCondition::column_equals("Loc", "Loc");
//! let result = tp_left_outer_join(&a, &b, &theta).unwrap();
//!
//! // Seven answer tuples, as in Fig. 1b.
//! assert_eq!(result.len(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tpdb_core as core;
pub use tpdb_datagen as datagen;
pub use tpdb_lineage as lineage;
pub use tpdb_query as query;
pub use tpdb_server as server;
pub use tpdb_storage as storage;
pub use tpdb_ta as ta;
pub use tpdb_temporal as temporal;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use tpdb_core::{
        lawan, lawau, overlapping_windows, tp_anti_join, tp_difference, tp_full_outer_join,
        tp_inner_join, tp_intersection, tp_left_outer_join, tp_right_outer_join, tp_union,
        ThetaCondition, TpJoinStream, TpSetOpKind, TpSetOpStream, Window, WindowKind,
    };
    pub use tpdb_lineage::{Lineage, ProbabilityEngine, SymbolTable, VarId};
    pub use tpdb_query::{PreparedQuery, ResultCursor, Session, SessionStats, TpdbError};
    pub use tpdb_storage::{Catalog, Field, Schema, TpRelation, TpTuple, Value};
    pub use tpdb_temporal::{Interval, TimePoint};
}
