//! Sessions: prepared statements, parameter binding, plan caching and
//! streaming execution.

use crate::cursor::ResultCursor;
use crate::exec::execute_plan_with;
use crate::plan::LogicalPlan;
use crate::planner::{explain_with, plan_query_with, QueryOptions};
use crate::shared_cache::{normalize_text, prepare_plan, PreparedPlan};
use crate::TpdbError;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tpdb_storage::{Catalog, DataType, Schema, TpRelation, TpTuple, Value};

/// Upper bound on cached plans per session; the oldest entry is evicted
/// first (FIFO) once the cache is full.
const MAX_CACHED_PLANS: usize = 128;

/// A TP database session: a catalog of relations plus the standard
/// database front-end contract — *prepare once, bind many, stream
/// results*.
///
/// * [`prepare`](Self::prepare) parses and validates a statement **once**
///   and returns a [`PreparedQuery`] that can be executed many times with
///   different `$n` parameter bindings.
/// * Parsed plans are cached per session, keyed by the normalized query
///   text and the catalog's schema epoch — re-preparing (or re-executing)
///   the same text skips the parser and validator entirely, and any
///   catalog mutation invalidates the affected entries automatically.
///   [`stats`](Self::stats) exposes the hit/miss counters; `EXPLAIN`
///   output reports them too.
/// * [`query`](Self::query) opens a streaming [`ResultCursor`] that yields
///   tuples as they leave the join pipeline instead of materializing the
///   result; [`execute`](Self::execute) is the materializing counterpart.
///
/// Every method returns the unified [`TpdbError`].
///
/// ```
/// use tpdb_query::Session;
/// use tpdb_storage::{Catalog, Value};
///
/// let mut catalog = Catalog::new();
/// let (a, b) = tpdb_datagen::booking_example();
/// catalog.register(a).unwrap();
/// catalog.register(b).unwrap();
/// let session = Session::new(catalog);
///
/// // Prepare once; bind and execute many times.
/// let stmt = session
///     .prepare("SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = $1")
///     .unwrap();
/// let ann = stmt.execute(&[Value::str("Ann")]).unwrap();
/// let jim = stmt.execute(&[Value::str("Jim")]).unwrap();
/// assert_eq!(ann.len(), 4);
/// assert_eq!(jim.len(), 1);
///
/// // The one-shot path shares the plan cache: this is a cache hit.
/// let again = session
///     .execute_with(
///         "SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = $1",
///         &[Value::str("Jim")],
///     )
///     .unwrap();
/// assert_eq!(again, jim);
/// assert!(session.stats().cache_hits >= 1);
/// ```
#[derive(Debug)]
pub struct Session {
    catalog: Catalog,
    options: QueryOptions,
    cache: Mutex<PlanCache>,
}

#[derive(Debug, Default)]
struct PlanCache {
    entries: HashMap<String, Arc<PreparedPlan>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    prepared: u64,
    executions: u64,
}

/// Counters of a session's plan cache and execution activity
/// ([`Session::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Plan-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Plan-cache lookups that had to parse + validate (including lookups
    /// invalidated by a schema-epoch change).
    pub cache_misses: u64,
    /// Plans currently cached.
    pub cached_plans: usize,
    /// `prepare` calls served (cached or not).
    pub statements_prepared: u64,
    /// Statements executed (materializing and cursor openings alike).
    pub executions: u64,
}

impl Session {
    /// Creates a session over an existing catalog with default options
    /// (parallelism = all available cores).
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            options: QueryOptions::default(),
            cache: Mutex::new(PlanCache::default()),
        }
    }

    /// The underlying catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (to register or drop relations).
    /// Mutating the relation set bumps the catalog's schema epoch, which
    /// invalidates every cached plan prepared before the change.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The default degree of parallelism for TP joins run by this session.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.options.parallelism
    }

    /// Sets the default degree of parallelism for TP joins (`1` = serial;
    /// clamped to at least 1). Plans that pin a degree via
    /// [`LogicalPlan::with_parallelism`] or the `PARALLEL n` query suffix
    /// override this default. Cursors opened with [`query`](Self::query)
    /// always drive the serial streaming pipeline unless the query pins a
    /// degree.
    pub fn set_parallelism(&mut self, degree: usize) {
        self.options.parallelism = degree.max(1);
    }

    /// Locks the plan cache, recovering from poisoning: the cache holds
    /// counters and `Arc`'d immutable plans, every mutation is a single
    /// map/deque call, so a panicking thread cannot leave it torn — and a
    /// best-effort cache must never take the session down with it.
    fn cache_guard(&self) -> MutexGuard<'_, PlanCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parses, validates and caches a statement, returning a handle that
    /// executes it with bound parameter values. Preparing the same
    /// (whitespace-normalized) text again is answered from the plan cache
    /// without re-parsing, until a catalog mutation invalidates the entry.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery<'_>, TpdbError> {
        let plan = self.cached_plan(text)?;
        self.cache_guard().prepared += 1;
        Ok(PreparedQuery {
            session: self,
            plan,
        })
    }

    /// One-shot execution of a statement without parameters, returning the
    /// materialized result relation. Repeated calls with the same text hit
    /// the plan cache and skip parse + validation.
    ///
    /// `SAVE SNAPSHOT '<path>'` executes here too (it only reads the
    /// catalog); `LOAD SNAPSHOT` mutates the catalog and therefore needs
    /// [`execute_statement`](Self::execute_statement).
    pub fn execute(&self, text: &str) -> Result<TpRelation, TpdbError> {
        self.execute_with(text, &[])
    }

    /// Executes a statement that may mutate the catalog — the entry point
    /// for `LOAD SNAPSHOT '<path>'`, which atomically replaces the
    /// catalog's contents (and thereby invalidates every cached plan via
    /// the schema epoch). Every other statement, `SAVE SNAPSHOT` included,
    /// behaves exactly as under [`execute`](Self::execute).
    ///
    /// Returns the statement summary: snapshot statements report one
    /// `(Relation, Tuples)` row per relation written or loaded.
    pub fn execute_statement(&mut self, text: &str) -> Result<TpRelation, TpdbError> {
        let prepared = self.cached_plan(text)?;
        match &prepared.plan {
            LogicalPlan::LoadSnapshot { path } => {
                self.catalog.load_snapshot(path)?;
                self.cache_guard().executions += 1;
                snapshot_summary(&self.catalog)
            }
            _ => self.run_prepared(&prepared, &[]),
        }
    }

    /// One-shot execution with `$n` parameter values (`params[0]` binds
    /// `$1`).
    pub fn execute_with(&self, text: &str, params: &[Value]) -> Result<TpRelation, TpdbError> {
        let plan = self.cached_plan(text)?;
        self.run_prepared(&plan, params)
    }

    /// Opens a streaming [`ResultCursor`] over a statement without
    /// parameters. See [`query_with`](Self::query_with).
    pub fn query(&self, text: &str) -> Result<ResultCursor, TpdbError> {
        self.query_with(text, &[])
    }

    /// Opens a streaming [`ResultCursor`] with `$n` parameter values: the
    /// result is produced tuple by tuple from the streaming join pipeline;
    /// nothing is materialized unless the cursor is drained.
    pub fn query_with(&self, text: &str, params: &[Value]) -> Result<ResultCursor, TpdbError> {
        let plan = self.cached_plan(text)?;
        self.open_cursor(&plan, params)
    }

    /// Executes an already-built logical plan (no text, no cache).
    pub fn run(&self, plan: &LogicalPlan) -> Result<TpRelation, TpdbError> {
        self.cache_guard().executions += 1;
        execute_plan_with(&self.catalog, plan, &self.options)
    }

    /// Returns the `EXPLAIN` output of a statement without executing it:
    /// the logical and physical plans, the open `$n` parameter slots of a
    /// parameterized statement, and the state of the session's plan cache.
    /// The lookup itself goes through the cache, so explaining and then
    /// executing a statement costs one parse.
    pub fn explain(&self, text: &str) -> Result<String, TpdbError> {
        let plan = self.cached_plan(text)?;
        let mut out = explain_with(&self.catalog, &plan.plan, &self.options)?;
        out.push_str(&self.cache_line());
        Ok(out)
    }

    /// A snapshot of the session's plan-cache and execution counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let cache = self.cache_guard();
        SessionStats {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cached_plans: cache.entries.len(),
            statements_prepared: cache.prepared,
            executions: cache.executions,
        }
    }

    /// The `Plan cache:` line appended to `EXPLAIN` output.
    fn cache_line(&self) -> String {
        let s = self.stats();
        format!(
            "Plan cache: {} hit(s), {} miss(es), {} cached plan(s)\n",
            s.cache_hits, s.cache_misses, s.cached_plans
        )
    }

    /// Looks up (or parses, validates and caches) the plan of `text`.
    fn cached_plan(&self, text: &str) -> Result<Arc<PreparedPlan>, TpdbError> {
        let key = normalize_text(text);
        let epoch = self.catalog.schema_epoch();
        {
            let mut cache = self.cache_guard();
            let cached = cache
                .entries
                .get(&key)
                .filter(|entry| entry.epoch == epoch)
                .map(Arc::clone);
            if let Some(entry) = cached {
                cache.hits += 1;
                return Ok(entry);
            }
            cache.misses += 1;
        }
        // Parse and validate outside the lock; a racing prepare of the same
        // text at worst parses twice. `prepare_plan` is the shared
        // parse-and-validate path (also used by the server's
        // [`crate::ShardedPlanCache`]).
        let prepared = Arc::new(prepare_plan(&self.catalog, &self.options, text)?);
        let mut cache = self.cache_guard();
        if !cache.entries.contains_key(&key) {
            cache.order.push_back(key.clone());
            if cache.order.len() > MAX_CACHED_PLANS {
                if let Some(evicted) = cache.order.pop_front() {
                    cache.entries.remove(&evicted);
                }
            }
        }
        cache.entries.insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Binds parameters and executes to a materialized relation.
    fn run_prepared(
        &self,
        prepared: &PreparedPlan,
        params: &[Value],
    ) -> Result<TpRelation, TpdbError> {
        match &prepared.plan {
            // Saving only reads the catalog, so the shared-session paths may
            // run it; loading replaces the catalog and is routed to
            // `execute_statement` (&mut self) instead.
            LogicalPlan::SaveSnapshot { path } => {
                self.catalog.save_snapshot(path)?;
                self.cache_guard().executions += 1;
                snapshot_summary(&self.catalog)
            }
            LogicalPlan::LoadSnapshot { .. } => Err(TpdbError::Storage(
                tpdb_storage::StorageError::PlanNotApplicable {
                    plan: "LoadSnapshot".to_owned(),
                    reason: "LOAD SNAPSHOT replaces the catalog; run it through \
                             Session::execute_statement on an exclusive session"
                        .to_owned(),
                },
            )),
            _ => {
                let bound = self.bound_plan(prepared, params)?;
                self.cache_guard().executions += 1;
                execute_plan_with(&self.catalog, &bound, &self.options)
            }
        }
    }

    /// Binds parameters and opens a streaming cursor. Joins under a cursor
    /// run the serial streaming pipeline (an explicit `PARALLEL n` pin on
    /// the query still wins), so the first tuple does not wait for the full
    /// result.
    fn open_cursor(
        &self,
        prepared: &PreparedPlan,
        params: &[Value],
    ) -> Result<ResultCursor, TpdbError> {
        if prepared.plan.is_utility() {
            return Err(TpdbError::Storage(
                tpdb_storage::StorageError::PlanNotApplicable {
                    plan: "snapshot".to_owned(),
                    reason: "utility statements produce no result stream; execute them instead"
                        .to_owned(),
                },
            ));
        }
        let bound = self.bound_plan(prepared, params)?;
        self.cache_guard().executions += 1;
        let op = plan_query_with(&self.catalog, &bound, &QueryOptions::serial())?;
        Ok(ResultCursor::new(op))
    }

    /// The plan with `$n` placeholders substituted (validating the value
    /// count).
    fn bound_plan(
        &self,
        prepared: &PreparedPlan,
        params: &[Value],
    ) -> Result<LogicalPlan, TpdbError> {
        if params.len() != prepared.parameters {
            return Err(TpdbError::ParameterCount {
                expected: prepared.parameters,
                got: params.len(),
            });
        }
        if prepared.parameters == 0 {
            Ok(prepared.plan.clone())
        } else {
            prepared.plan.bind_parameters(params)
        }
    }
}

/// The result relation of a snapshot statement: one `(Relation, Tuples)`
/// row per catalog relation, so scripts can see what a SAVE wrote or a
/// LOAD brought in without a follow-up query. Public so the server
/// front-end renders the same summaries as an in-process session.
pub fn snapshot_summary(catalog: &Catalog) -> Result<TpRelation, TpdbError> {
    let schema = Schema::tp(&[("Relation", DataType::Str), ("Tuples", DataType::Int)]);
    let mut summary = TpRelation::new("snapshot", schema);
    for name in catalog.relation_names() {
        let tuples = i64::try_from(catalog.relation(&name)?.len()).unwrap_or(i64::MAX);
        summary.push(TpTuple::new(
            vec![Value::str(&name), Value::Int(tuples)],
            tpdb_lineage::Lineage::tru(),
            tpdb_temporal::Interval::always(),
            1.0,
        ))?;
    }
    Ok(summary)
}

/// A statement prepared by [`Session::prepare`]: parsed and validated
/// once, executable many times with different parameter bindings.
///
/// The handle borrows its session (the catalog outlives every statement).
/// Executing binds one [`Value`] per `$n` slot, in order: `params[0]`
/// binds `$1`.
///
/// ```
/// use tpdb_query::Session;
/// use tpdb_storage::{Catalog, Value};
///
/// let mut catalog = Catalog::new();
/// let (a, b) = tpdb_datagen::booking_example();
/// catalog.register(a).unwrap();
/// catalog.register(b).unwrap();
/// let session = Session::new(catalog);
///
/// let stmt = session.prepare("SELECT * FROM a WHERE Loc = $1").unwrap();
/// assert_eq!(stmt.parameter_count(), 1);
///
/// // Materializing execution ...
/// let zak = stmt.execute(&[Value::str("ZAK")]).unwrap();
/// assert_eq!(zak.len(), 1);
///
/// // ... or a streaming cursor over the same statement.
/// let rows: Vec<_> = stmt
///     .query(&[Value::str("WEN")])
///     .unwrap()
///     .map(Result::unwrap)
///     .collect();
/// assert_eq!(rows.len(), 1);
/// ```
#[derive(Debug)]
pub struct PreparedQuery<'s> {
    session: &'s Session,
    plan: Arc<PreparedPlan>,
}

impl PreparedQuery<'_> {
    /// The number of `$n` parameter slots the statement expects.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.plan.parameters
    }

    /// The parsed logical plan (placeholders unbound).
    #[must_use]
    pub fn logical_plan(&self) -> &LogicalPlan {
        &self.plan.plan
    }

    /// Executes the statement with the given parameter values and returns
    /// the materialized result. No parsing or validation happens here —
    /// both were done once, at prepare time.
    pub fn execute(&self, params: &[Value]) -> Result<TpRelation, TpdbError> {
        self.session.run_prepared(&self.plan, params)
    }

    /// Opens a streaming [`ResultCursor`] over the statement with the
    /// given parameter values.
    pub fn query(&self, params: &[Value]) -> Result<ResultCursor, TpdbError> {
        self.session.open_cursor(&self.plan, params)
    }

    /// The `EXPLAIN` output of the statement with its placeholders
    /// unbound: the logical plan prints the `$n` slots and a `Parameters:`
    /// line reports how many values an execution must bind.
    pub fn explain(&self) -> Result<String, TpdbError> {
        let mut out = explain_with(
            &self.session.catalog,
            &self.plan.plan,
            &self.session.options,
        )?;
        out.push_str(&self.session.cache_line());
        Ok(out)
    }

    /// The `EXPLAIN` output of the statement with `params` bound: the plan
    /// is printed with the bound values in place of the placeholders, and
    /// a `Parameters:` line lists each binding.
    pub fn explain_bound(&self, params: &[Value]) -> Result<String, TpdbError> {
        let bound = self.session.bound_plan(&self.plan, params)?;
        let mut out = explain_with(&self.session.catalog, &bound, &self.session.options)?;
        if !params.is_empty() {
            let bindings: Vec<String> = params
                .iter()
                .enumerate()
                .map(|(i, v)| format!("${} = {}", i + 1, crate::expr::Operand::Literal(v.clone())))
                .collect();
            out.push_str(&format!("Parameters: {}\n", bindings.join(", ")));
        }
        out.push_str(&self.session.cache_line());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use tpdb_storage::{DataType, Schema};

    fn session() -> Session {
        let mut catalog = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        catalog.register(a).unwrap();
        catalog.register(b).unwrap();
        Session::new(catalog)
    }

    #[test]
    fn execute_matches_the_paper_result() {
        let s = session();
        let result = s
            .execute("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn repeated_execution_hits_the_plan_cache() {
        let s = session();
        let q = "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc";
        let first = s.execute(q).unwrap();
        assert_eq!(
            s.stats(),
            SessionStats {
                cache_hits: 0,
                cache_misses: 1,
                cached_plans: 1,
                statements_prepared: 0,
                executions: 1
            }
        );
        // reformatted text normalizes to the same cache key
        let second = s
            .execute("  SELECT *   FROM a TP ANTI JOIN b\n ON a.Loc = b.Loc ")
            .unwrap();
        assert_eq!(first, second);
        let stats = s.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.executions, 2);
    }

    #[test]
    fn prepared_statements_bind_parameters() {
        let s = session();
        let stmt = s
            .prepare("SELECT Name FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE Name = $1")
            .unwrap();
        assert_eq!(stmt.parameter_count(), 1);
        let ann = stmt.execute(&[Value::str("Ann")]).unwrap();
        let jim = stmt.execute(&[Value::str("Jim")]).unwrap();
        assert_eq!(ann.len() + jim.len(), 7);
        // wrong arity is rejected before execution
        assert!(matches!(
            stmt.execute(&[]),
            Err(TpdbError::ParameterCount {
                expected: 1,
                got: 0
            })
        ));
        assert!(matches!(
            stmt.execute(&[Value::str("Ann"), Value::str("Jim")]),
            Err(TpdbError::ParameterCount {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn prepare_validates_against_the_catalog_up_front() {
        let s = session();
        // unknown relation
        assert!(s.prepare("SELECT * FROM missing").is_err());
        // unknown column inside a parameterized predicate
        assert!(s.prepare("SELECT * FROM a WHERE Nope = $1").is_err());
        // forced keyed plan on a valid equi-join still prepares
        assert!(s
            .prepare("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY TA")
            .is_ok());
    }

    #[test]
    fn catalog_mutation_invalidates_cached_plans() {
        let mut s = session();
        let q = "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc";
        s.execute(q).unwrap();
        s.execute(q).unwrap();
        assert_eq!(s.stats().cache_hits, 1);

        // any relation-set mutation bumps the schema epoch ...
        let extra = TpRelation::new("extra", Schema::tp(&[("X", DataType::Int)]));
        s.catalog_mut().register(extra).unwrap();

        // ... so the next lookup is a miss (revalidation), then hits again
        s.execute(q).unwrap();
        let stats = s.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        s.execute(q).unwrap();
        assert_eq!(s.stats().cache_hits, 2);
    }

    #[test]
    fn dropping_a_relation_invalidates_and_surfaces_the_error() {
        let mut s = session();
        let q = "SELECT * FROM a";
        s.execute(q).unwrap();
        s.catalog_mut().drop_relation("a").unwrap();
        // the stale cached plan is not reused: re-validation fails loudly
        match s.execute(q) {
            Err(TpdbError::Storage(e)) => assert!(e.to_string().contains("unknown relation")),
            other => panic!("expected unknown relation, got {other:?}"),
        }
    }

    #[test]
    fn cursor_streams_and_collects_identically() {
        let s = session();
        let q = "SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc";
        let materialized = s.execute(q).unwrap();
        let collected = s.query(q).unwrap().collect().unwrap();
        assert_eq!(collected, materialized);
        // manual drain agrees too, tuple by tuple
        let mut cursor = s.query(q).unwrap();
        let mut manual = Vec::new();
        for t in &mut cursor {
            manual.push(t.unwrap());
        }
        assert_eq!(manual.len(), materialized.len());
        assert_eq!(cursor.fetched(), materialized.len());
        assert_eq!(manual, materialized.tuples().to_vec());
    }

    #[test]
    fn explain_reports_parameters_and_cache_state() {
        let s = session();
        let q = "SELECT * FROM a WHERE Loc = $1";
        let text = s.explain(q).unwrap();
        assert!(text.contains("Filter (Loc = $1)"), "{text}");
        assert!(text.contains("Parameters: 1 unbound slot(s)"), "{text}");
        assert!(text.contains("Plan cache: 0 hit(s), 1 miss(es)"), "{text}");

        let stmt = s.prepare(q).unwrap();
        let bound = stmt.explain_bound(&[Value::str("ZAK")]).unwrap();
        assert!(bound.contains("Filter (Loc = 'ZAK')"), "{bound}");
        assert!(bound.contains("$1 = 'ZAK'"), "{bound}");
        // the prepare above was answered from the cache
        assert!(bound.contains("1 hit(s)"), "{bound}");
    }

    #[test]
    fn unbound_parameters_cannot_sneak_into_execution() {
        let s = session();
        let q = "SELECT * FROM a WHERE Loc = $1";
        assert!(matches!(
            s.execute(q),
            Err(TpdbError::ParameterCount {
                expected: 1,
                got: 0
            })
        ));
        // run() on a hand-built parameterized plan fails at binding
        let plan = parse_query(q).unwrap();
        assert!(matches!(
            s.run(&plan),
            Err(TpdbError::UnboundParameter { index: 1 })
        ));
    }

    #[test]
    fn set_operations_flow_through_the_session_with_zero_special_cases() {
        // Prepared statements, plan caching, stats, EXPLAIN and cursors all
        // work on set-operation text exactly as they do on joins.
        let mut catalog = Catalog::new();
        let (r, s) = tpdb_datagen::meteo_like(300, 5);
        catalog.register(r.clone()).unwrap();
        catalog.register(s.clone()).unwrap();
        let session = Session::new(catalog);

        let q = "SELECT * FROM meteo_r UNION SELECT * FROM meteo_s";
        let reference = tpdb_core::tp_union(&r, &s).unwrap();

        // one-shot (miss), re-execution (hit)
        let first = session.execute(q).unwrap();
        assert_eq!(first.tuples(), reference.tuples());
        let second = session.execute(q).unwrap();
        assert_eq!(first, second);
        assert_eq!(session.stats().cache_hits, 1);

        // prepared handle shares the cached plan
        let stmt = session.prepare(q).unwrap();
        assert_eq!(stmt.parameter_count(), 0);
        assert_eq!(stmt.execute(&[]).unwrap().tuples(), reference.tuples());

        // cursor streaming agrees tuple by tuple
        let collected = session.query(q).unwrap().collect().unwrap();
        assert_eq!(collected.tuples(), reference.tuples());

        // EXPLAIN prints both plans and the cache line
        let text = session.explain(q).unwrap();
        assert!(text.contains("SetOp UNION (∪)"), "{text}");
        assert!(text.contains("plan=auto(sweep)"), "{text}");
        assert!(text.contains("Plan cache:"), "{text}");

        // parameterized set operations prepare and bind like any statement
        let stmt = session
            .prepare(
                "SELECT * FROM meteo_r WHERE Metric = $1 \
                 EXCEPT SELECT * FROM meteo_s WHERE Metric = $1",
            )
            .unwrap();
        assert_eq!(stmt.parameter_count(), 1);
        let bound = stmt.execute(&[Value::Int(0)]).unwrap();
        assert!(bound.iter().all(|t| t.fact(1) == &Value::Int(0)));
    }

    #[test]
    fn union_incompatible_set_operations_fail_at_prepare_time() {
        let s = session(); // booking: a(Name, Loc) vs b(Hotel, Loc)
        match s.prepare("SELECT * FROM a UNION SELECT * FROM b") {
            Err(TpdbError::Storage(e)) => {
                let text = e.to_string();
                assert!(text.contains("union-compatible"), "{text}");
                assert!(text.contains("column Name"), "{text}");
            }
            other => panic!("expected UnionIncompatible, got {other:?}"),
        }
        // projecting both sides onto the shared column makes them compatible
        assert!(s
            .prepare("SELECT Loc FROM a UNION SELECT Loc FROM b")
            .is_ok());
    }

    #[test]
    fn normalization_preserves_whitespace_inside_string_literals() {
        // reformatting outside literals is key-equivalent ...
        assert_eq!(
            normalize_text("  SELECT *\n FROM   a "),
            normalize_text("SELECT * FROM a")
        );
        // ... but whitespace inside a literal is part of the value
        assert_ne!(
            normalize_text("SELECT * FROM a WHERE Loc = 'A  B'"),
            normalize_text("SELECT * FROM a WHERE Loc = 'A B'")
        );
        assert_eq!(
            normalize_text("SELECT * FROM a WHERE Loc = 'A \t B'"),
            "SELECT * FROM a WHERE Loc = 'A \t B'"
        );
    }

    #[test]
    fn literals_differing_only_in_whitespace_do_not_collide_in_the_cache() {
        // Regression: the cache key once collapsed whitespace inside
        // string literals, so these two queries shared one cached plan and
        // the second silently returned the first one's rows.
        let mut s = Session::new(Catalog::new());
        let mut rel = TpRelation::new("a", Schema::tp(&[("Loc", DataType::Str)]));
        for (loc, p) in [("A  B", 0.5), ("A B", 0.25)] {
            rel.push_unchecked(tpdb_storage::TpTuple::new(
                vec![Value::str(loc)],
                tpdb_lineage::Lineage::tru(),
                tpdb_temporal::Interval::new(0, 1),
                p,
            ));
        }
        s.catalog_mut().register(rel).unwrap();

        let wide = s.execute("SELECT * FROM a WHERE Loc = 'A  B'").unwrap();
        let narrow = s.execute("SELECT * FROM a WHERE Loc = 'A B'").unwrap();
        assert_eq!(wide.len(), 1);
        assert_eq!(narrow.len(), 1);
        assert_eq!(wide.tuple(0).fact(0), &Value::str("A  B"));
        assert_eq!(narrow.tuple(0).fact(0), &Value::str("A B"));
        // two distinct cache entries, no false hit
        let stats = s.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cached_plans, 2);
    }

    #[test]
    fn cache_eviction_is_bounded() {
        let s = session();
        for i in 0..(MAX_CACHED_PLANS + 10) {
            let q = format!("SELECT * FROM a WHERE Loc = 'L{i}'");
            s.execute(&q).unwrap();
        }
        assert_eq!(s.stats().cached_plans, MAX_CACHED_PLANS);
    }

    /// A scratch snapshot path unique to this test process.
    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tpdb-session-{tag}-{}.snap", std::process::id()))
    }

    #[test]
    fn save_and_load_snapshot_round_trip_through_statements() {
        let path = scratch("roundtrip");
        let s = session();
        let before = s
            .execute("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        // SAVE runs through the ordinary read-only path and reports one
        // (Relation, Tuples) row per relation, in name order.
        let summary = s
            .execute(&format!("SAVE SNAPSHOT '{}'", path.display()))
            .unwrap();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary.tuples()[0].facts()[0], Value::str("a"));
        assert_eq!(summary.tuples()[1].facts()[0], Value::str("b"));

        // LOAD replaces a fresh catalog and answers the same query
        // identically.
        let mut empty = Session::new(Catalog::new());
        let loaded = empty
            .execute_statement(&format!("LOAD SNAPSHOT '{}'", path.display()))
            .unwrap();
        assert_eq!(loaded.len(), 2);
        let after = empty
            .execute("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        assert_eq!(before, after);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_snapshot_needs_the_mutating_entry_point() {
        let s = session();
        let err = s.execute("LOAD SNAPSHOT '/tmp/nope.snap'").unwrap_err();
        assert!(
            matches!(
                &err,
                TpdbError::Storage(tpdb_storage::StorageError::PlanNotApplicable { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn snapshot_statements_do_not_stream() {
        let s = session();
        let err = s.query("SAVE SNAPSHOT '/tmp/nope.snap'").unwrap_err();
        assert!(err.to_string().contains("no result stream"), "{err}");
    }

    #[test]
    fn explain_describes_snapshot_statements() {
        let s = session();
        let save = s.explain("SAVE SNAPSHOT '/tmp/x.snap'").unwrap();
        assert!(
            save.contains("SnapshotWrite '/tmp/x.snap' (2 relation(s))"),
            "{save}"
        );
        let load = s.explain("LOAD SNAPSHOT '/tmp/x.snap'").unwrap();
        assert!(load.contains("SnapshotRead"), "{load}");
    }

    #[test]
    fn snapshot_statements_reject_missing_or_empty_paths() {
        let s = session();
        assert!(s.execute("SAVE SNAPSHOT").is_err());
        assert!(s.execute("SAVE SNAPSHOT ''").is_err());
        assert!(s.execute("LOAD SNAPSHOT 42").is_err());
        // a failed write surfaces as the typed io error, not a panic
        let err = s
            .execute("SAVE SNAPSHOT '/nonexistent-dir/x.snap'")
            .unwrap_err();
        assert!(
            matches!(
                &err,
                TpdbError::Storage(tpdb_storage::StorageError::SnapshotIo { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn parallelism_knob_is_clamped_and_honored() {
        let mut s = session();
        s.set_parallelism(0);
        assert_eq!(s.parallelism(), 1);
        s.set_parallelism(4);
        assert_eq!(s.parallelism(), 4);
        let text = s
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        assert!(text.contains("parallel=4"), "{text}");
        // per-query pins beat the session default
        let text = s
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc PARALLEL 2")
            .unwrap();
        assert!(text.contains("parallel=2"), "{text}");
    }
}
