//! The unified error type of the query API.
//!
//! Every entry point of the query layer — [`crate::Session`],
//! [`crate::PreparedQuery`], [`crate::ResultCursor`], the plan builders and
//! the executor — returns a single error enum, [`TpdbError`]. The ad-hoc
//! per-layer errors of earlier versions (a bare-string parse error, the
//! storage error leaking through the planner) are folded into it with
//! `From` conversions, so `?` works across the whole stack, and parse
//! errors now carry the **byte span** and the **offending token** of the
//! failure.

use std::fmt;
use tpdb_storage::StorageError;

/// A half-open byte range `[start, end)` into the original query text.
///
/// Spans point at the offending token of a parse error; an empty span at
/// the end of the input marks an unexpected end of query.
///
/// ```
/// use tpdb_query::parse_query;
///
/// let err = parse_query("SELECT * FROM a WHERE Loc = ").unwrap_err();
/// // The span points at the end of the truncated input.
/// assert_eq!(err.span.start, 28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte of the span.
    pub start: usize,
    /// Byte offset one past the last byte of the span.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// An empty span at `at` (used for end-of-input errors).
    #[must_use]
    pub fn empty(at: usize) -> Self {
        Self { start: at, end: at }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "byte {}", self.start)
        } else {
            write!(f, "bytes {}..{}", self.start, self.end)
        }
    }
}

/// A parse error with a human-readable message, the byte span of the
/// failure in the query text and, when the failure is attributable to a
/// token, the offending token's lexeme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong (e.g. `expected FROM, found 'WHERE'`).
    pub message: String,
    /// Where in the query text the error occurred.
    pub span: Span,
    /// The lexeme of the offending token, when one exists (`None` for
    /// unexpected end of input).
    pub token: Option<String>,
}

impl ParseError {
    /// Creates a parse error with an empty span at offset 0; use
    /// [`ParseError::at`] / [`ParseError::with_token`] to attach position
    /// information.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            span: Span::default(),
            token: None,
        }
    }

    /// Attaches the byte span of the failure.
    #[must_use]
    pub fn at(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// Attaches the offending token's lexeme.
    #[must_use]
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at {})", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

/// The unified error type of the query API.
///
/// ```
/// use tpdb_query::{Session, TpdbError};
/// use tpdb_storage::Catalog;
///
/// let session = Session::new(Catalog::new());
///
/// // Parse errors carry a byte span and the offending token.
/// match session.execute("SELECT * FORM a") {
///     Err(TpdbError::Parse(e)) => {
///         assert!(e.message.contains("expected FROM"));
///         assert_eq!(e.token.as_deref(), Some("FORM"));
///         assert_eq!((e.span.start, e.span.end), (9, 13));
///     }
///     other => panic!("expected a parse error, got {other:?}"),
/// }
///
/// // Catalog errors arrive through the same enum.
/// match session.execute("SELECT * FROM missing") {
///     Err(TpdbError::Storage(e)) => assert!(e.to_string().contains("unknown relation")),
///     other => panic!("expected a storage error, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TpdbError {
    /// The query text could not be parsed; carries the byte span and the
    /// offending token.
    Parse(ParseError),
    /// A catalog or schema error occurred while planning or executing.
    Storage(StorageError),
    /// A statement with `n` parameter placeholders was executed with a
    /// different number of bound values.
    ParameterCount {
        /// Placeholder slots in the statement (`$1..$expected`).
        expected: usize,
        /// Values actually supplied.
        got: usize,
    },
    /// A `$n` placeholder reached execution without a bound value (e.g. a
    /// parameterized query run through the one-shot legacy path, which has
    /// no way to bind values).
    UnboundParameter {
        /// The 1-based placeholder index.
        index: usize,
    },
}

impl fmt::Display for TpdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpdbError::Parse(e) => write!(f, "parse error: {e}"),
            TpdbError::Storage(e) => write!(f, "storage error: {e}"),
            TpdbError::ParameterCount { expected, got } => write!(
                f,
                "statement has {expected} parameter slot(s) but {got} value(s) were bound"
            ),
            TpdbError::UnboundParameter { index } => write!(
                f,
                "parameter ${index} is unbound; prepare the statement and bind values to execute it"
            ),
        }
    }
}

impl std::error::Error for TpdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TpdbError::Parse(e) => Some(e),
            TpdbError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for TpdbError {
    fn from(e: ParseError) -> Self {
        TpdbError::Parse(e)
    }
}

impl From<StorageError> for TpdbError {
    fn from(e: StorageError) -> Self {
        TpdbError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_span_and_token_information() {
        let e = ParseError::new("expected FROM, found 'WHERE'")
            .at(Span::new(9, 14))
            .with_token("WHERE");
        assert_eq!(
            e.to_string(),
            "expected FROM, found 'WHERE' (at bytes 9..14)"
        );
        assert_eq!(e.token.as_deref(), Some("WHERE"));
        let eof = ParseError::new("unexpected end of input").at(Span::empty(20));
        assert!(eof.to_string().contains("at byte 20"));
    }

    #[test]
    fn conversions_and_sources() {
        let parse: TpdbError = ParseError::new("boom").into();
        assert!(matches!(parse, TpdbError::Parse(_)));
        assert!(std::error::Error::source(&parse).is_some());
        let storage: TpdbError = StorageError::UnknownRelation("a".into()).into();
        assert!(storage.to_string().contains("unknown relation"));
    }

    #[test]
    fn parameter_errors_are_descriptive() {
        let count = TpdbError::ParameterCount {
            expected: 2,
            got: 0,
        };
        assert!(count.to_string().contains("2 parameter slot(s)"));
        let unbound = TpdbError::UnboundParameter { index: 1 };
        assert!(unbound.to_string().contains("$1"));
        assert!(std::error::Error::source(&unbound).is_none());
    }
}
