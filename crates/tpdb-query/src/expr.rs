//! Filter predicates over fact attributes.

use crate::error::TpdbError;
use std::fmt;
use tpdb_storage::{Schema, TpTuple, Value};

/// Comparison operator of a literal predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl PredicateOp {
    /// The operator as it appears in query text.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            PredicateOp::Eq => "=",
            PredicateOp::Ne => "<>",
            PredicateOp::Lt => "<",
            PredicateOp::Le => "<=",
            PredicateOp::Gt => ">",
            PredicateOp::Ge => ">=",
        }
    }

    fn eval(self, l: &Value, r: &Value) -> bool {
        use std::cmp::Ordering::*;
        if l.is_null() || r.is_null() {
            return false;
        }
        let ord = l.cmp(r);
        match self {
            PredicateOp::Eq => ord == Equal,
            PredicateOp::Ne => ord != Equal,
            PredicateOp::Lt => ord == Less,
            PredicateOp::Le => ord != Greater,
            PredicateOp::Gt => ord == Greater,
            PredicateOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for PredicateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// The right-hand side of a filter predicate: an inline literal or a `$n`
/// placeholder bound at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// An inline literal value.
    Literal(Value),
    /// A parameter placeholder `$n` (1-based), bound when the prepared
    /// statement executes.
    Param(usize),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Operand::Literal(v) => write!(f, "{v}"),
            Operand::Param(i) => write!(f, "${i}"),
        }
    }
}

/// A predicate comparing a fact column with a literal or a parameter
/// (`WHERE column op operand`). Conjunctions are represented as a list of
/// these predicates in the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LiteralPredicate {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: PredicateOp,
    /// Literal to compare against, or the `$n` slot supplying it.
    pub operand: Operand,
}

impl LiteralPredicate {
    /// Creates a predicate comparing against an inline literal.
    #[must_use]
    pub fn new(column: &str, op: PredicateOp, literal: Value) -> Self {
        Self {
            column: column.to_owned(),
            op,
            operand: Operand::Literal(literal),
        }
    }

    /// Creates a predicate comparing against the `$index` placeholder
    /// (1-based).
    #[must_use]
    pub fn param(column: &str, op: PredicateOp, index: usize) -> Self {
        Self {
            column: column.to_owned(),
            op,
            operand: Operand::Param(index),
        }
    }

    /// The 1-based placeholder index, when the operand is a parameter.
    #[must_use]
    pub fn parameter_index(&self) -> Option<usize> {
        match self.operand {
            Operand::Param(i) => Some(i),
            Operand::Literal(_) => None,
        }
    }

    /// Returns a copy with any `$n` placeholder replaced by `params[n-1]`.
    ///
    /// # Errors
    ///
    /// [`TpdbError::UnboundParameter`] when the placeholder index exceeds
    /// the supplied values.
    pub fn with_params(&self, params: &[Value]) -> Result<LiteralPredicate, TpdbError> {
        match &self.operand {
            Operand::Literal(_) => Ok(self.clone()),
            Operand::Param(i) => match params.get(i - 1) {
                Some(v) => Ok(LiteralPredicate::new(&self.column, self.op, v.clone())),
                None => Err(TpdbError::UnboundParameter { index: *i }),
            },
        }
    }

    /// Resolves the column index against a schema. The operand must be a
    /// literal — a `$n` placeholder here means the statement was executed
    /// without binding values ([`TpdbError::UnboundParameter`]).
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate, TpdbError> {
        let literal = match &self.operand {
            Operand::Literal(v) => v.clone(),
            Operand::Param(i) => return Err(TpdbError::UnboundParameter { index: *i }),
        };
        Ok(BoundPredicate {
            column: schema.require(&self.column)?,
            op: self.op,
            literal,
        })
    }
}

impl fmt::Display for LiteralPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.operand)
    }
}

/// A [`LiteralPredicate`] resolved to a column position and a concrete
/// literal.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPredicate {
    column: usize,
    op: PredicateOp,
    literal: Value,
}

impl BoundPredicate {
    /// Does the tuple satisfy the predicate?
    #[must_use]
    pub fn matches(&self, tuple: &TpTuple) -> bool {
        self.op.eval(tuple.fact(self.column), &self.literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_lineage::Lineage;
    use tpdb_storage::{DataType, Schema};
    use tpdb_temporal::Interval;

    fn schema() -> Schema {
        Schema::tp(&[("Name", DataType::Str), ("Age", DataType::Int)])
    }

    fn tup(name: &str, age: i64) -> TpTuple {
        TpTuple::new(
            vec![Value::str(name), Value::Int(age)],
            Lineage::tru(),
            Interval::new(0, 1),
            1.0,
        )
    }

    #[test]
    fn bind_and_match() {
        let p = LiteralPredicate::new("Age", PredicateOp::Ge, Value::Int(30))
            .bind(&schema())
            .unwrap();
        assert!(p.matches(&tup("Ann", 31)));
        assert!(p.matches(&tup("Ann", 30)));
        assert!(!p.matches(&tup("Ann", 29)));
    }

    #[test]
    fn string_equality() {
        let p = LiteralPredicate::new("Name", PredicateOp::Eq, Value::str("Ann"))
            .bind(&schema())
            .unwrap();
        assert!(p.matches(&tup("Ann", 1)));
        assert!(!p.matches(&tup("Jim", 1)));
    }

    #[test]
    fn unknown_column_fails_binding() {
        assert!(
            LiteralPredicate::new("Nope", PredicateOp::Eq, Value::Int(0))
                .bind(&schema())
                .is_err()
        );
    }

    #[test]
    fn unbound_parameter_fails_binding_with_its_index() {
        let p = LiteralPredicate::param("Age", PredicateOp::Ge, 2);
        assert_eq!(p.parameter_index(), Some(2));
        match p.bind(&schema()) {
            Err(TpdbError::UnboundParameter { index }) => assert_eq!(index, 2),
            other => panic!("expected UnboundParameter, got {other:?}"),
        }
    }

    #[test]
    fn with_params_substitutes_placeholders() {
        let p = LiteralPredicate::param("Age", PredicateOp::Ge, 1);
        let bound = p.with_params(&[Value::Int(30)]).unwrap();
        assert_eq!(bound.operand, Operand::Literal(Value::Int(30)));
        assert!(bound.bind(&schema()).unwrap().matches(&tup("Ann", 31)));
        // literals pass through untouched
        let lit = LiteralPredicate::new("Age", PredicateOp::Lt, Value::Int(5));
        assert_eq!(lit.with_params(&[]).unwrap(), lit);
        // missing value
        assert!(matches!(
            p.with_params(&[]),
            Err(TpdbError::UnboundParameter { index: 1 })
        ));
    }

    #[test]
    fn predicates_render_as_query_text() {
        assert_eq!(
            LiteralPredicate::new("Name", PredicateOp::Eq, Value::str("Ann")).to_string(),
            "Name = 'Ann'"
        );
        assert_eq!(
            LiteralPredicate::param("Age", PredicateOp::Ge, 3).to_string(),
            "Age >= $3"
        );
        assert_eq!(
            LiteralPredicate::new("Age", PredicateOp::Lt, Value::Int(5)).to_string(),
            "Age < 5"
        );
    }

    #[test]
    fn null_never_matches() {
        let p = LiteralPredicate::new("Name", PredicateOp::Ne, Value::str("Ann"))
            .bind(&schema())
            .unwrap();
        let t = TpTuple::new(
            vec![Value::Null, Value::Int(1)],
            Lineage::tru(),
            Interval::new(0, 1),
            1.0,
        );
        assert!(!p.matches(&t));
    }

    #[test]
    fn all_operators() {
        let mk = |op| {
            LiteralPredicate::new("Age", op, Value::Int(30))
                .bind(&schema())
                .unwrap()
        };
        assert!(mk(PredicateOp::Eq).matches(&tup("x", 30)));
        assert!(mk(PredicateOp::Ne).matches(&tup("x", 31)));
        assert!(mk(PredicateOp::Lt).matches(&tup("x", 29)));
        assert!(mk(PredicateOp::Le).matches(&tup("x", 30)));
        assert!(mk(PredicateOp::Gt).matches(&tup("x", 31)));
        assert!(mk(PredicateOp::Ge).matches(&tup("x", 30)));
    }
}
