//! Filter predicates over fact attributes.

use tpdb_storage::{Schema, StorageError, TpTuple, Value};

/// Comparison operator of a literal predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl PredicateOp {
    fn eval(self, l: &Value, r: &Value) -> bool {
        use std::cmp::Ordering::*;
        if l.is_null() || r.is_null() {
            return false;
        }
        let ord = l.cmp(r);
        match self {
            PredicateOp::Eq => ord == Equal,
            PredicateOp::Ne => ord != Equal,
            PredicateOp::Lt => ord == Less,
            PredicateOp::Le => ord != Greater,
            PredicateOp::Gt => ord == Greater,
            PredicateOp::Ge => ord != Less,
        }
    }
}

/// A predicate comparing a fact column with a literal value
/// (`WHERE column op literal`). Conjunctions are represented as a list of
/// literal predicates in the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LiteralPredicate {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: PredicateOp,
    /// Literal to compare against.
    pub literal: Value,
}

impl LiteralPredicate {
    /// Creates a predicate.
    #[must_use]
    pub fn new(column: &str, op: PredicateOp, literal: Value) -> Self {
        Self {
            column: column.to_owned(),
            op,
            literal,
        }
    }

    /// Resolves the column index against a schema.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate, StorageError> {
        Ok(BoundPredicate {
            column: schema.require(&self.column)?,
            op: self.op,
            literal: self.literal.clone(),
        })
    }
}

/// A [`LiteralPredicate`] resolved to a column position.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPredicate {
    column: usize,
    op: PredicateOp,
    literal: Value,
}

impl BoundPredicate {
    /// Does the tuple satisfy the predicate?
    #[must_use]
    pub fn matches(&self, tuple: &TpTuple) -> bool {
        self.op.eval(tuple.fact(self.column), &self.literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_lineage::Lineage;
    use tpdb_storage::{DataType, Schema};
    use tpdb_temporal::Interval;

    fn schema() -> Schema {
        Schema::tp(&[("Name", DataType::Str), ("Age", DataType::Int)])
    }

    fn tup(name: &str, age: i64) -> TpTuple {
        TpTuple::new(
            vec![Value::str(name), Value::Int(age)],
            Lineage::tru(),
            Interval::new(0, 1),
            1.0,
        )
    }

    #[test]
    fn bind_and_match() {
        let p = LiteralPredicate::new("Age", PredicateOp::Ge, Value::Int(30))
            .bind(&schema())
            .unwrap();
        assert!(p.matches(&tup("Ann", 31)));
        assert!(p.matches(&tup("Ann", 30)));
        assert!(!p.matches(&tup("Ann", 29)));
    }

    #[test]
    fn string_equality() {
        let p = LiteralPredicate::new("Name", PredicateOp::Eq, Value::str("Ann"))
            .bind(&schema())
            .unwrap();
        assert!(p.matches(&tup("Ann", 1)));
        assert!(!p.matches(&tup("Jim", 1)));
    }

    #[test]
    fn unknown_column_fails_binding() {
        assert!(
            LiteralPredicate::new("Nope", PredicateOp::Eq, Value::Int(0))
                .bind(&schema())
                .is_err()
        );
    }

    #[test]
    fn null_never_matches() {
        let p = LiteralPredicate::new("Name", PredicateOp::Ne, Value::str("Ann"))
            .bind(&schema())
            .unwrap();
        let t = TpTuple::new(
            vec![Value::Null, Value::Int(1)],
            Lineage::tru(),
            Interval::new(0, 1),
            1.0,
        );
        assert!(!p.matches(&t));
    }

    #[test]
    fn all_operators() {
        let mk = |op| {
            LiteralPredicate::new("Age", op, Value::Int(30))
                .bind(&schema())
                .unwrap()
        };
        assert!(mk(PredicateOp::Eq).matches(&tup("x", 30)));
        assert!(mk(PredicateOp::Ne).matches(&tup("x", 31)));
        assert!(mk(PredicateOp::Lt).matches(&tup("x", 29)));
        assert!(mk(PredicateOp::Le).matches(&tup("x", 30)));
        assert!(mk(PredicateOp::Gt).matches(&tup("x", 31)));
        assert!(mk(PredicateOp::Ge).matches(&tup("x", 30)));
    }
}
