//! The query engine façade.

use crate::exec::execute_plan_with;
use crate::parser::parse_query;
use crate::plan::LogicalPlan;
use crate::planner::{explain_with, QueryOptions};
use crate::QueryError;
use tpdb_storage::{Catalog, TpRelation};

/// A TP database instance: a catalog of relations plus the query front-end.
///
/// The engine parses the textual query language of [`crate::parse_query`],
/// plans the query against its catalog and executes it through the Volcano
/// operator tree.
///
/// ## Parallelism
///
/// TP joins execute with partitioned parallelism by default (one worker per
/// available core). The degree can be set per engine
/// ([`set_parallelism`](Self::set_parallelism)), per plan
/// ([`LogicalPlan::with_parallelism`]) or per query (the `PARALLEL n`
/// suffix of the query language); `1` selects the serial pipeline.
///
/// ```
/// use tpdb_query::QueryEngine;
/// use tpdb_storage::Catalog;
///
/// let mut catalog = Catalog::new();
/// let (a, b) = tpdb_datagen::booking_example();
/// catalog.register(a).unwrap();
/// catalog.register(b).unwrap();
/// let mut engine = QueryEngine::new(catalog);
/// engine.set_parallelism(2);
///
/// let result = engine
///     .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
///     .unwrap();
/// assert_eq!(result.len(), 7); // identical to serial execution
/// ```
#[derive(Debug, Default)]
pub struct QueryEngine {
    catalog: Catalog,
    options: QueryOptions,
}

impl QueryEngine {
    /// Creates an engine over an existing catalog with default options
    /// (parallelism = all available cores).
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            options: QueryOptions::default(),
        }
    }

    /// The underlying catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (to register or drop relations).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The default degree of parallelism for TP joins run by this engine.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.options.parallelism
    }

    /// Sets the default degree of parallelism for TP joins (`1` = serial;
    /// clamped to at least 1). Plans that pin a degree via
    /// [`LogicalPlan::with_parallelism`] or the `PARALLEL n` query suffix
    /// override this default.
    pub fn set_parallelism(&mut self, degree: usize) {
        self.options.parallelism = degree.max(1);
    }

    /// Parses, plans and executes a textual query.
    pub fn query(&self, text: &str) -> Result<TpRelation, QueryError> {
        let plan = parse_query(text)?;
        self.run(&plan)
    }

    /// Executes an already-built logical plan.
    pub fn run(&self, plan: &LogicalPlan) -> Result<TpRelation, QueryError> {
        execute_plan_with(&self.catalog, plan, &self.options)
    }

    /// Returns the `EXPLAIN` output (logical + physical plan) of a textual
    /// query without executing it.
    pub fn explain(&self, text: &str) -> Result<String, QueryError> {
        let plan = parse_query(text)?;
        explain_with(&self.catalog, &plan, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_storage::Value;

    fn engine() -> QueryEngine {
        let mut catalog = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        catalog.register(a).unwrap();
        catalog.register(b).unwrap();
        QueryEngine::new(catalog)
    }

    #[test]
    fn end_to_end_left_outer_join() {
        let e = engine();
        let result = e
            .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn end_to_end_anti_join_with_projection() {
        let e = engine();
        let result = e
            .query("SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = 'Jim'")
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuple(0).fact(0), &Value::str("Jim"));
        assert_eq!(result.schema().arity(), 1);
    }

    #[test]
    fn nj_and_ta_strategies_agree_through_sql() {
        let e = engine();
        let nj = e
            .query("SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc STRATEGY NJ")
            .unwrap();
        let ta = e
            .query("SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc STRATEGY TA")
            .unwrap();
        assert_eq!(nj.len(), ta.len());
    }

    #[test]
    fn explain_shows_strategy() {
        let e = engine();
        let text = e
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY TA")
            .unwrap();
        assert!(text.contains("strategy=TA"));
        assert!(text.contains("Scan a"));
    }

    #[test]
    fn parallelism_knob_is_clamped_and_reported() {
        let mut e = engine();
        e.set_parallelism(3);
        assert_eq!(e.parallelism(), 3);
        e.set_parallelism(0);
        assert_eq!(e.parallelism(), 1, "degree 0 clamps to serial");
        let text = e
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        assert!(text.contains("parallel=1"), "{text}");
    }

    #[test]
    fn per_query_parallel_overrides_engine_default() {
        let mut e = engine();
        e.set_parallelism(1);
        let text = e
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc PARALLEL 4")
            .unwrap();
        assert!(text.contains("parallel=4"), "{text}");
        let result = e
            .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc PARALLEL 4")
            .unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn query_errors_are_propagated() {
        let e = engine();
        assert!(e.query("SELECT * FROM missing").is_err());
        assert!(e.query("not a query").is_err());
        let err = e.query("SELECT * FROM missing").unwrap_err();
        assert!(err.to_string().contains("unknown relation"));
    }
}
