//! The query engine façade.

use crate::exec::execute_plan;
use crate::parser::parse_query;
use crate::plan::LogicalPlan;
use crate::planner::explain;
use crate::QueryError;
use tpdb_storage::{Catalog, TpRelation};

/// A TP database instance: a catalog of relations plus the query front-end.
///
/// The engine parses the textual query language of [`crate::parser`], plans
/// the query against its catalog and executes it through the Volcano
/// operator tree.
#[derive(Debug, Default)]
pub struct QueryEngine {
    catalog: Catalog,
}

impl QueryEngine {
    /// Creates an engine over an existing catalog.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        Self { catalog }
    }

    /// The underlying catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (to register or drop relations).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Parses, plans and executes a textual query.
    pub fn query(&self, text: &str) -> Result<TpRelation, QueryError> {
        let plan = parse_query(text)?;
        self.run(&plan)
    }

    /// Executes an already-built logical plan.
    pub fn run(&self, plan: &LogicalPlan) -> Result<TpRelation, QueryError> {
        execute_plan(&self.catalog, plan)
    }

    /// Returns the `EXPLAIN` output (logical + physical plan) of a textual
    /// query without executing it.
    pub fn explain(&self, text: &str) -> Result<String, QueryError> {
        let plan = parse_query(text)?;
        explain(&self.catalog, &plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_storage::Value;

    fn engine() -> QueryEngine {
        let mut catalog = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        catalog.register(a).unwrap();
        catalog.register(b).unwrap();
        QueryEngine::new(catalog)
    }

    #[test]
    fn end_to_end_left_outer_join() {
        let e = engine();
        let result = e
            .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn end_to_end_anti_join_with_projection() {
        let e = engine();
        let result = e
            .query("SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = 'Jim'")
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuple(0).fact(0), &Value::str("Jim"));
        assert_eq!(result.schema().arity(), 1);
    }

    #[test]
    fn nj_and_ta_strategies_agree_through_sql() {
        let e = engine();
        let nj = e
            .query("SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc STRATEGY NJ")
            .unwrap();
        let ta = e
            .query("SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc STRATEGY TA")
            .unwrap();
        assert_eq!(nj.len(), ta.len());
    }

    #[test]
    fn explain_shows_strategy() {
        let e = engine();
        let text = e
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY TA")
            .unwrap();
        assert!(text.contains("strategy=TA"));
        assert!(text.contains("Scan a"));
    }

    #[test]
    fn query_errors_are_propagated() {
        let e = engine();
        assert!(e.query("SELECT * FROM missing").is_err());
        assert!(e.query("not a query").is_err());
        let err = e.query("SELECT * FROM missing").unwrap_err();
        assert!(err.to_string().contains("unknown relation"));
    }
}
