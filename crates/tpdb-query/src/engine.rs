//! The legacy query-engine façade — thin deprecated shims over
//! [`Session`].

use crate::plan::LogicalPlan;
use crate::session::Session;
use crate::TpdbError;
use tpdb_storage::{Catalog, TpRelation};

/// The pre-[`Session`] entry point: a one-shot string-in/relation-out
/// query interface.
///
/// `QueryEngine` survives as a thin wrapper over [`Session`] so existing
/// code keeps compiling, but its entry points are **deprecated**: they
/// re-parse nothing thanks to the session's plan cache, yet they can
/// neither bind `$n` parameters nor stream results. New code should hold a
/// [`Session`] and use [`Session::prepare`] / [`Session::execute`] /
/// [`Session::query`].
///
/// ```
/// #![allow(deprecated)]
/// use tpdb_query::QueryEngine;
/// use tpdb_storage::Catalog;
///
/// let mut catalog = Catalog::new();
/// let (a, b) = tpdb_datagen::booking_example();
/// catalog.register(a).unwrap();
/// catalog.register(b).unwrap();
/// let engine = QueryEngine::new(catalog);
///
/// let result = engine
///     .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
///     .unwrap();
/// assert_eq!(result.len(), 7);
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    session: Session,
}

impl QueryEngine {
    /// Creates an engine over an existing catalog with default options
    /// (parallelism = all available cores).
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        Self {
            session: Session::new(catalog),
        }
    }

    /// The [`Session`] this engine wraps — the migration path: grab the
    /// session and use the prepared/streaming API directly.
    #[must_use]
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the wrapped [`Session`].
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// The underlying catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        self.session.catalog()
    }

    /// Mutable access to the catalog (to register or drop relations).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.session.catalog_mut()
    }

    /// The default degree of parallelism for TP joins run by this engine.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.session.parallelism()
    }

    /// Sets the default degree of parallelism for TP joins (`1` = serial;
    /// clamped to at least 1).
    pub fn set_parallelism(&mut self, degree: usize) {
        self.session.set_parallelism(degree);
    }

    /// Parses, plans and executes a textual query.
    #[deprecated(
        since = "0.2.0",
        note = "use `Session::execute` (or `Session::prepare` + parameter binding, \
                or `Session::query` for a streaming cursor)"
    )]
    pub fn query(&self, text: &str) -> Result<TpRelation, TpdbError> {
        self.session.execute(text)
    }

    /// Executes an already-built logical plan.
    #[deprecated(since = "0.2.0", note = "use `Session::run`")]
    pub fn run(&self, plan: &LogicalPlan) -> Result<TpRelation, TpdbError> {
        self.session.run(plan)
    }

    /// Returns the `EXPLAIN` output (logical + physical plan) of a textual
    /// query without executing it.
    #[deprecated(since = "0.2.0", note = "use `Session::explain`")]
    pub fn explain(&self, text: &str) -> Result<String, TpdbError> {
        self.session.explain(text)
    }
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new(Catalog::default())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use tpdb_storage::Value;

    fn engine() -> QueryEngine {
        let mut catalog = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        catalog.register(a).unwrap();
        catalog.register(b).unwrap();
        QueryEngine::new(catalog)
    }

    #[test]
    fn end_to_end_left_outer_join() {
        let e = engine();
        let result = e
            .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn shim_agrees_with_the_session_it_wraps() {
        let e = engine();
        let q = "SELECT Name FROM a TP ANTI JOIN b ON a.Loc = b.Loc WHERE Name = 'Jim'";
        let via_shim = e.query(q).unwrap();
        let via_session = e.session().execute(q).unwrap();
        assert_eq!(via_shim, via_session);
        assert_eq!(via_shim.len(), 1);
        assert_eq!(via_shim.tuple(0).fact(0), &Value::str("Jim"));
        // the shim's queries count in the shared plan cache
        assert!(e.session().stats().cache_hits >= 1);
    }

    #[test]
    fn nj_and_ta_strategies_agree_through_sql() {
        let e = engine();
        let nj = e
            .query("SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc STRATEGY NJ")
            .unwrap();
        let ta = e
            .query("SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc STRATEGY TA")
            .unwrap();
        assert_eq!(nj.len(), ta.len());
    }

    #[test]
    fn explain_shows_strategy() {
        let e = engine();
        let text = e
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY TA")
            .unwrap();
        assert!(text.contains("strategy=TA"));
        assert!(text.contains("Scan a"));
    }

    #[test]
    fn parallelism_knob_is_clamped_and_reported() {
        let mut e = engine();
        e.set_parallelism(3);
        assert_eq!(e.parallelism(), 3);
        e.set_parallelism(0);
        assert_eq!(e.parallelism(), 1, "degree 0 clamps to serial");
        let text = e
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
            .unwrap();
        assert!(text.contains("parallel=1"), "{text}");
    }

    #[test]
    fn per_query_parallel_overrides_engine_default() {
        let mut e = engine();
        e.set_parallelism(1);
        let text = e
            .explain("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc PARALLEL 4")
            .unwrap();
        assert!(text.contains("parallel=4"), "{text}");
        let result = e
            .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc PARALLEL 4")
            .unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn query_errors_are_propagated() {
        let e = engine();
        assert!(e.query("SELECT * FROM missing").is_err());
        assert!(e.query("not a query").is_err());
        let err = e.query("SELECT * FROM missing").unwrap_err();
        assert!(err.to_string().contains("unknown relation"));
    }
}
