//! Physical operators (Volcano iterator model) and plan execution.
//!
//! Every operator implements [`PhysicalOperator`] and produces its output
//! one tuple at a time through `next()`. Scans, filters and projections are
//! fully streaming. The TP join operator materializes its two inputs
//! (joins need the complete negative relation to build windows — exactly as
//! the hash/merge join of a conventional DBMS materializes its build side)
//! and then produces output tuples lazily: with an effective degree of
//! parallelism of 1 the NJ strategy drives the streaming
//! [`TpJoinStream`](tpdb_core::TpJoinStream) pipeline tuple by tuple (the
//! path result cursors use); with a higher degree it runs the partitioned
//! parallel driver and streams the merged result. The TA strategy runs the
//! alignment baseline.
//!
//! Operators yield `Result` items: any error cuts the stream short and is
//! reported as the single unified [`TpdbError`].

use crate::expr::BoundPredicate;
use crate::plan::{JoinStrategy, LogicalPlan};
use crate::TpdbError;
use std::sync::Arc;
use tpdb_core::{
    OverlapJoinPlan, ThetaCondition, TpJoinKind, TpJoinStream, TpSetOpKind, TpSetOpStream,
};
use tpdb_lineage::ProbabilityEngine;
use tpdb_storage::{Catalog, Schema, TpRelation, TpTuple};

/// A Volcano-style physical operator.
///
/// `Send` is a supertrait: a boxed pipeline (and therefore a
/// [`crate::ResultCursor`]) can move to a server worker thread and execute
/// there. Operators hold `Arc`'d relations and owned iterator state — no
/// `Rc`/`RefCell` — so the bound costs implementors nothing.
pub trait PhysicalOperator: Send {
    /// The fact schema of the tuples this operator produces.
    fn schema(&self) -> &Schema;

    /// Produces the next output tuple, `Some(Err(_))` when execution fails,
    /// or `None` when exhausted.
    fn next(&mut self) -> Option<Result<TpTuple, TpdbError>>;

    /// A short human-readable description (used by `EXPLAIN`).
    fn describe(&self) -> String;

    /// The operator's entire output as an already-stored relation, when it
    /// is a pure scan with no per-tuple work pending (`None` otherwise).
    /// Consumers that materialize their inputs (joins, set operations) use
    /// this to skip the tuple-by-tuple copy of a base relation.
    fn as_relation(&self) -> Option<Arc<TpRelation>> {
        None
    }

    /// Drains the operator into a materialized relation.
    fn collect(&mut self, name: &str) -> Result<TpRelation, TpdbError> {
        let mut rel = TpRelation::new(name, self.schema().clone());
        while let Some(t) = self.next() {
            rel.push_unchecked(t?);
        }
        Ok(rel)
    }

    /// Materializes the operator's output, reusing the stored relation when
    /// the operator is a pure scan ([`PhysicalOperator::as_relation`]) and
    /// draining into a fresh relation named `name` otherwise.
    fn materialize(&mut self, name: &str) -> Result<Arc<TpRelation>, TpdbError> {
        match self.as_relation() {
            Some(rel) => Ok(rel),
            None => Ok(Arc::new(self.collect(name)?)),
        }
    }
}

/// Sequential scan over a stored relation.
pub struct ScanExec {
    relation: Arc<TpRelation>,
    cursor: usize,
}

impl ScanExec {
    /// Creates a scan over `relation`.
    #[must_use]
    pub fn new(relation: Arc<TpRelation>) -> Self {
        Self {
            relation,
            cursor: 0,
        }
    }
}

impl PhysicalOperator for ScanExec {
    fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    fn next(&mut self) -> Option<Result<TpTuple, TpdbError>> {
        let t = self.relation.tuples().get(self.cursor)?.clone();
        self.cursor += 1;
        Some(Ok(t))
    }

    fn as_relation(&self) -> Option<Arc<TpRelation>> {
        // Only while untouched: a partially drained scan no longer
        // represents its full output.
        (self.cursor == 0).then(|| Arc::clone(&self.relation))
    }

    fn describe(&self) -> String {
        format!(
            "Scan {} ({} tuples)",
            self.relation.name(),
            self.relation.len()
        )
    }
}

/// Streaming filter.
pub struct FilterExec {
    input: Box<dyn PhysicalOperator>,
    predicates: Vec<BoundPredicate>,
}

impl FilterExec {
    /// Creates a filter over `input`.
    #[must_use]
    pub fn new(input: Box<dyn PhysicalOperator>, predicates: Vec<BoundPredicate>) -> Self {
        Self { input, predicates }
    }
}

impl PhysicalOperator for FilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<Result<TpTuple, TpdbError>> {
        loop {
            match self.input.next()? {
                Ok(t) => {
                    if self.predicates.iter().all(|p| p.matches(&t)) {
                        return Some(Ok(t));
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "Filter ({} predicates) -> {}",
            self.predicates.len(),
            self.input.describe()
        )
    }
}

/// Streaming projection onto a subset of the fact columns.
pub struct ProjectExec {
    input: Box<dyn PhysicalOperator>,
    indices: Vec<usize>,
    schema: Schema,
}

impl ProjectExec {
    /// Creates a projection keeping `indices` of the input schema.
    #[must_use]
    pub fn new(input: Box<dyn PhysicalOperator>, indices: Vec<usize>) -> Self {
        let fields: Vec<tpdb_storage::Field> = indices
            .iter()
            .map(|&i| input.schema().fields()[i].clone())
            .collect();
        let schema = Schema::new(fields);
        Self {
            input,
            indices,
            schema,
        }
    }
}

impl PhysicalOperator for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<TpTuple, TpdbError>> {
        let t = match self.input.next()? {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        let facts = self.indices.iter().map(|&i| t.fact(i).clone()).collect();
        Some(Ok(TpTuple::new(
            facts,
            t.lineage().clone(),
            t.interval(),
            t.probability(),
        )))
    }

    fn describe(&self) -> String {
        format!(
            "Project ({} cols) -> {}",
            self.indices.len(),
            self.input.describe()
        )
    }
}

/// Execution state of the TP join operator.
// One JoinState exists per join operator; the size difference between the
// streaming and materialized variants is irrelevant at that cardinality.
#[allow(clippy::large_enum_variant)]
enum JoinState {
    /// Inputs not yet materialized.
    Pending,
    /// Serial lazy execution: output tuples leave the streaming pipeline
    /// one at a time (the path result cursors ride on).
    Streaming(TpJoinStream<Arc<TpRelation>, Arc<TpRelation>, ProbabilityEngine>),
    /// Parallel (or TA) execution: the result is materialized and streamed
    /// from memory.
    Materialized(std::vec::IntoIter<TpTuple>),
    /// Exhausted, or an error was already reported.
    Done,
}

/// TP join operator. The two inputs are materialized when the first output
/// tuple is requested; output tuples are then produced lazily (serial NJ)
/// or streamed from the computed result (parallel NJ, TA).
pub struct TpJoinExec {
    left: Box<dyn PhysicalOperator>,
    right: Box<dyn PhysicalOperator>,
    theta: ThetaCondition,
    kind: TpJoinKind,
    strategy: JoinStrategy,
    overlap_plan: Option<OverlapJoinPlan>,
    /// Requested degree of parallelism for the NJ strategy (already resolved
    /// against the session default by the planner). The effective degree may
    /// be 1: nested-loop plans cannot shard.
    parallelism: usize,
    /// Base-tuple probabilities known to the catalog, preloaded by the
    /// planner. The inputs' own base tuples are registered on top at start:
    /// the catalog engine is what lets the join price lineages of *derived*
    /// inputs (e.g. a set-operation result) whose compound lineages
    /// reference base tuples not present in the input itself.
    base_engine: ProbabilityEngine,
    schema: Schema,
    state: JoinState,
}

impl TpJoinExec {
    /// Creates a TP join operator. `overlap_plan` forces the NJ strategy's
    /// overlap-join plan (`None` = automatic: sweep for equi-joins, nested
    /// loop otherwise); `parallelism` is the requested worker count for the
    /// NJ strategy (`1` = serial). The TA strategy ignores both.
    /// `base_engine` carries the base-tuple probabilities known to the
    /// catalog (usually [`tpdb_storage::Catalog::probability_engine`]), so
    /// derived inputs with compound lineages can be priced.
    // The operator genuinely has eight independent knobs; bundling them
    // into a one-off struct would only move the argument list.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        left: Box<dyn PhysicalOperator>,
        right: Box<dyn PhysicalOperator>,
        theta: ThetaCondition,
        kind: TpJoinKind,
        strategy: JoinStrategy,
        overlap_plan: Option<OverlapJoinPlan>,
        parallelism: usize,
        base_engine: ProbabilityEngine,
    ) -> Self {
        let schema = match kind {
            TpJoinKind::Anti => left.schema().clone(),
            _ => left.schema().concat(right.schema(), "s_"),
        };
        Self {
            left,
            right,
            theta,
            kind,
            strategy,
            overlap_plan,
            parallelism: parallelism.max(1),
            base_engine,
            schema,
            state: JoinState::Pending,
        }
    }

    /// The overlap-join plan that will run: the forced one, or the automatic
    /// choice resolved against the child schemas (`None` when θ does not
    /// bind — the error will surface at execution).
    fn resolved_plan(&self) -> Option<OverlapJoinPlan> {
        match self.overlap_plan {
            Some(p) => Some(p),
            None => self
                .theta
                .bind(self.left.schema(), self.right.schema())
                .ok()
                .map(|bound| tpdb_core::auto_plan(&bound)),
        }
    }

    /// Materializes the inputs and starts the join. Scan children hand over
    /// their stored relation without a tuple-by-tuple copy.
    fn start(&mut self) -> Result<JoinState, TpdbError> {
        let left = self.left.materialize("left")?;
        let right = self.right.materialize("right")?;
        match self.strategy {
            JoinStrategy::Nj => {
                let mut engine = self.base_engine.clone();
                left.register_probabilities(&mut engine);
                right.register_probabilities(&mut engine);
                let effective = self
                    .resolved_plan()
                    .map_or(1, |p| tpdb_core::parallel_degree(p, self.parallelism));
                if effective > 1 {
                    let joined = tpdb_core::tp_join_parallel_with_engine_and_plan(
                        &left,
                        &right,
                        &self.theta,
                        self.kind,
                        self.overlap_plan,
                        self.parallelism,
                        &engine,
                    )?;
                    // Adopt the join's schema (column prefixes depend on
                    // input names).
                    self.schema = joined.schema().clone();
                    Ok(JoinState::Materialized(
                        joined.tuples().to_vec().into_iter(),
                    ))
                } else {
                    let stream = TpJoinStream::with_engine_and_plan(
                        left,
                        right,
                        &self.theta,
                        self.kind,
                        self.overlap_plan,
                        engine,
                    )?;
                    self.schema = stream.schema().clone();
                    Ok(JoinState::Streaming(stream))
                }
            }
            JoinStrategy::Ta => {
                let joined = tpdb_ta::ta_join(&left, &right, &self.theta, self.kind)?;
                self.schema = joined.schema().clone();
                Ok(JoinState::Materialized(
                    joined.tuples().to_vec().into_iter(),
                ))
            }
        }
    }
}

impl PhysicalOperator for TpJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<TpTuple, TpdbError>> {
        if matches!(self.state, JoinState::Pending) {
            match self.start() {
                Ok(state) => self.state = state,
                Err(e) => {
                    self.state = JoinState::Done;
                    return Some(Err(e));
                }
            }
        }
        match &mut self.state {
            JoinState::Streaming(stream) => stream.next().map(Ok),
            JoinState::Materialized(tuples) => tuples.next().map(Ok),
            JoinState::Pending | JoinState::Done => None,
        }
    }

    fn describe(&self) -> String {
        // Name the overlap-join plan that will actually run: the forced one,
        // or the automatic choice resolved against the child schemas.
        let resolved = self.resolved_plan();
        let plan_note = match (self.strategy, self.overlap_plan) {
            (_, Some(p)) => format!(" plan={p}"),
            (JoinStrategy::Nj, None) => match resolved {
                Some(p) => format!(" plan=auto({p})"),
                None => String::new(),
            },
            (JoinStrategy::Ta, None) => String::new(),
        };
        // Report the degree of parallelism that will actually be used, not
        // merely the requested one: a nested-loop plan cannot shard, so a
        // requested degree above 1 silently becoming serial would misreport.
        let par_note = match self.strategy {
            JoinStrategy::Nj => match resolved {
                Some(plan) => {
                    let effective = tpdb_core::parallel_degree(plan, self.parallelism);
                    if effective == 1 && self.parallelism > 1 {
                        format!(
                            " parallel=1 (serial fallback: the {} plan cannot shard)",
                            plan.label()
                        )
                    } else {
                        format!(" parallel={effective}")
                    }
                }
                None => String::new(),
            },
            // TA always runs the serial alignment baseline.
            JoinStrategy::Ta => String::new(),
        };
        format!(
            "TpJoin {} [{}{}{}] ({}) over [{}; {}]",
            self.kind.symbol(),
            self.strategy,
            plan_note,
            par_note,
            self.theta,
            self.left.describe(),
            self.right.describe()
        )
    }
}

/// Execution state of the set-operation operator.
// One SetOpState exists per operator; the size difference between the
// streaming and materialized variants is irrelevant at that cardinality.
#[allow(clippy::large_enum_variant)]
enum SetOpState {
    /// Inputs not yet materialized.
    Pending,
    /// Serial lazy execution through the streaming set-operation pipeline
    /// (the path result cursors ride on).
    Streaming(TpSetOpStream<Arc<TpRelation>, Arc<TpRelation>, ProbabilityEngine>),
    /// Parallel execution: the result is materialized and streamed from
    /// memory.
    Materialized(std::vec::IntoIter<TpTuple>),
    /// Exhausted, or an error was already reported.
    Done,
}

/// TP set operation operator (`UNION` / `INTERSECT` / `EXCEPT`). The two
/// inputs are materialized when the first output tuple is requested — the
/// set operations, like the joins they are built on, need the complete
/// negative side to build windows. Output tuples are then produced lazily
/// through [`TpSetOpStream`] (serial), or streamed from the materialized
/// morsel-parallel result (any kind with an effective degree above 1 —
/// including `UNION`, whose two window passes shard like the joins).
pub struct SetOpExec {
    left: Box<dyn PhysicalOperator>,
    right: Box<dyn PhysicalOperator>,
    kind: TpSetOpKind,
    overlap_plan: Option<OverlapJoinPlan>,
    /// Requested degree of parallelism (already resolved against the
    /// session default by the planner).
    parallelism: usize,
    /// Base-tuple probabilities known to the catalog, preloaded by the
    /// planner — what lets a *chained* set operation price the compound
    /// lineages of a derived input (e.g. `(r UNION s) EXCEPT r`).
    base_engine: ProbabilityEngine,
    schema: Schema,
    state: SetOpState,
}

impl SetOpExec {
    /// Creates a set-operation operator. `overlap_plan` forces the plan of
    /// the internal all-attribute-equality overlap join (`None` =
    /// automatic: sweep); `parallelism` is the requested worker count
    /// (`1` = serial). `base_engine` carries the base-tuple probabilities
    /// known to the catalog (usually
    /// [`tpdb_storage::Catalog::probability_engine`]).
    #[must_use]
    pub fn new(
        left: Box<dyn PhysicalOperator>,
        right: Box<dyn PhysicalOperator>,
        kind: TpSetOpKind,
        overlap_plan: Option<OverlapJoinPlan>,
        parallelism: usize,
        base_engine: ProbabilityEngine,
    ) -> Self {
        // The output schema of every TP set operation is the left input's.
        let schema = left.schema().clone();
        Self {
            left,
            right,
            kind,
            overlap_plan,
            parallelism: parallelism.max(1),
            base_engine,
            schema,
            state: SetOpState::Pending,
        }
    }

    /// The overlap-join plan of the internal machinery: the forced one, or
    /// sweep (the all-attribute equality θ is always an equi-join).
    fn resolved_plan(&self) -> OverlapJoinPlan {
        self.overlap_plan.unwrap_or(OverlapJoinPlan::Sweep)
    }

    /// The degree of parallelism that will actually be used. All three set
    /// operations shard like the keyed TP joins they are built on (the
    /// all-attribute equality θ is always an equi-join), so only a forced
    /// nested-loop plan pins this to 1.
    fn effective_parallelism(&self) -> usize {
        tpdb_core::parallel_degree(self.resolved_plan(), self.parallelism)
    }

    /// Materializes the inputs and starts the set operation. Scan children
    /// hand over their stored relation without a tuple-by-tuple copy.
    fn start(&mut self) -> Result<SetOpState, TpdbError> {
        let left = self.left.materialize("left")?;
        let right = self.right.materialize("right")?;
        let mut engine = self.base_engine.clone();
        left.register_probabilities(&mut engine);
        right.register_probabilities(&mut engine);
        if self.effective_parallelism() > 1 {
            let computed = tpdb_core::tp_set_op_parallel_with_engine_and_plan(
                &left,
                &right,
                self.kind,
                self.overlap_plan,
                self.parallelism,
                &engine,
            )?;
            Ok(SetOpState::Materialized(
                computed.tuples().to_vec().into_iter(),
            ))
        } else {
            Ok(SetOpState::Streaming(TpSetOpStream::with_engine_and_plan(
                left,
                right,
                self.kind,
                self.overlap_plan,
                engine,
            )?))
        }
    }
}

impl PhysicalOperator for SetOpExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<TpTuple, TpdbError>> {
        if matches!(self.state, SetOpState::Pending) {
            match self.start() {
                Ok(state) => self.state = state,
                Err(e) => {
                    self.state = SetOpState::Done;
                    return Some(Err(e));
                }
            }
        }
        match &mut self.state {
            SetOpState::Streaming(stream) => stream.next().map(Ok),
            SetOpState::Materialized(tuples) => tuples.next().map(Ok),
            SetOpState::Pending | SetOpState::Done => None,
        }
    }

    fn describe(&self) -> String {
        let plan_note = match self.overlap_plan {
            Some(p) => format!(" plan={p}"),
            None => format!(" plan=auto({})", self.resolved_plan()),
        };
        // Like the join operator, report the degree that will actually run:
        // a parallel request on a forced nested-loop plan must not
        // misreport.
        let effective = self.effective_parallelism();
        let par_note = if effective == 1 && self.parallelism > 1 {
            format!(
                " parallel=1 (serial fallback: the {} plan cannot shard)",
                self.resolved_plan()
            )
        } else {
            format!(" parallel={effective}")
        };
        format!(
            "SetOp {} [{}{}{}] over [{}; {}]",
            self.kind,
            self.kind.symbol(),
            plan_note,
            par_note,
            self.left.describe(),
            self.right.describe()
        )
    }
}

/// Plans and executes a logical plan against a catalog with the default
/// [`QueryOptions`](crate::QueryOptions), returning the materialized result
/// relation.
pub fn execute_plan(catalog: &Catalog, plan: &LogicalPlan) -> Result<TpRelation, TpdbError> {
    execute_plan_with(catalog, plan, &crate::QueryOptions::default())
}

/// [`execute_plan`] with explicit execution options.
pub fn execute_plan_with(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: &crate::QueryOptions,
) -> Result<TpRelation, TpdbError> {
    let mut root = crate::planner::plan_query_with(catalog, plan, options)?;
    root.collect("result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{LiteralPredicate, PredicateOp};
    use crate::planner::plan_query;
    use tpdb_storage::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        c.register(a).unwrap();
        c.register(b).unwrap();
        c
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .filter(vec![LiteralPredicate::new(
                "Loc",
                PredicateOp::Eq,
                Value::str("ZAK"),
            )])
            .project(vec!["Name".to_owned()]);
        let result = execute_plan(&c, &plan).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuple(0).fact(0), &Value::str("Ann"));
        assert_eq!(result.schema().arity(), 1);
        // probability and interval survive the projection
        assert!((result.tuple(0).probability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn nj_join_plan_produces_paper_result() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::LeftOuter,
            JoinStrategy::Nj,
        );
        let result = execute_plan(&c, &plan).unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn ta_strategy_gives_same_cardinality() {
        let c = catalog();
        let mk = |strategy| {
            LogicalPlan::scan("a").tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                strategy,
            )
        };
        let nj = execute_plan(&c, &mk(JoinStrategy::Nj)).unwrap();
        let ta = execute_plan(&c, &mk(JoinStrategy::Ta)).unwrap();
        assert_eq!(nj.len(), ta.len());
    }

    #[test]
    fn join_then_filter_then_project() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .filter(vec![LiteralPredicate::new(
                "Hotel",
                PredicateOp::Eq,
                Value::str("hotel1"),
            )])
            .project(vec!["Name".to_owned(), "Hotel".to_owned()]);
        let result = execute_plan(&c, &plan).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuple(0).fact(1), &Value::str("hotel1"));
    }

    #[test]
    fn anti_join_schema_has_only_left_columns() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::Anti,
            JoinStrategy::Nj,
        );
        let result = execute_plan(&c, &plan).unwrap();
        assert_eq!(result.schema().arity(), 2);
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn parallel_plans_return_identical_results() {
        let c = catalog();
        let base = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::FullOuter,
            JoinStrategy::Nj,
        );
        let serial = execute_plan(&c, &base.clone().with_parallelism(1)).unwrap();
        for degree in [2, 4, 7] {
            let parallel = execute_plan(&c, &base.clone().with_parallelism(degree)).unwrap();
            assert_eq!(parallel.tuples(), serial.tuples(), "degree = {degree}");
        }
    }

    #[test]
    fn describe_reports_effective_parallelism() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .with_parallelism(4);
        let op = plan_query(&c, &plan).unwrap();
        assert!(op.describe().contains("parallel=4"), "{}", op.describe());
    }

    #[test]
    fn parallel_on_nested_loop_falls_back_to_serial_with_a_note() {
        // θ = true resolves to the nested-loop plan, which cannot shard:
        // the join must run serially (not panic) and EXPLAIN must say so.
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::always(),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .with_parallelism(4);
        let op = plan_query(&c, &plan).unwrap();
        let description = op.describe();
        assert!(
            description.contains("parallel=1 (serial fallback: the nested-loop plan cannot shard)"),
            "{description}"
        );
        let result = execute_plan(&c, &plan).unwrap();
        let serial = execute_plan(&c, &plan.clone().with_parallelism(1)).unwrap();
        assert_eq!(result.tuples(), serial.tuples());
    }

    #[test]
    fn set_operations_match_the_core_functions() {
        // The booking relations are not union-compatible (different
        // schemas), so run the set ops on a self-union-compatible pair.
        let mut c = Catalog::new();
        let (r, s) = tpdb_datagen::meteo_like(400, 3);
        c.register(r.clone()).unwrap();
        c.register(s.clone()).unwrap();
        for (kind, reference) in [
            (TpSetOpKind::Union, tpdb_core::tp_union(&r, &s).unwrap()),
            (
                TpSetOpKind::Intersection,
                tpdb_core::tp_intersection(&r, &s).unwrap(),
            ),
            (
                TpSetOpKind::Difference,
                tpdb_core::tp_difference(&r, &s).unwrap(),
            ),
        ] {
            let plan = LogicalPlan::scan("meteo_r").set_op(kind, LogicalPlan::scan("meteo_s"));
            let serial = execute_plan_with(&c, &plan, &crate::QueryOptions::serial()).unwrap();
            assert_eq!(serial.tuples(), reference.tuples(), "{kind} serial");
            assert_eq!(serial.schema(), reference.schema(), "{kind} schema");
            for degree in [2, 4] {
                let parallel = execute_plan(&c, &plan.clone().with_parallelism(degree)).unwrap();
                assert_eq!(parallel.tuples(), reference.tuples(), "{kind} P={degree}");
            }
        }
    }

    #[test]
    fn set_op_describe_reports_plan_and_parallelism_honestly() {
        let mut c = Catalog::new();
        let (r, s) = tpdb_datagen::meteo_like(50, 3);
        c.register(r).unwrap();
        c.register(s).unwrap();
        let base = LogicalPlan::scan("meteo_r");
        // All three set operations shard through the morsel driver —
        // including the union, which used to report a serial fallback.
        for kind in [
            TpSetOpKind::Difference,
            TpSetOpKind::Intersection,
            TpSetOpKind::Union,
        ] {
            let plan = base
                .clone()
                .set_op(kind, LogicalPlan::scan("meteo_s"))
                .with_parallelism(4);
            let op = plan_query(&c, &plan).unwrap();
            let d = op.describe();
            assert!(d.contains(&format!("SetOp {kind}")), "{d}");
            assert!(d.contains("plan=auto(sweep)"), "{d}");
            assert!(d.contains("parallel=4"), "{d}");
            assert!(!d.contains("serial fallback"), "{d}");
        }
        // A forced nested-loop plan is the one remaining serial fallback,
        // and EXPLAIN says so instead of misreporting the degree.
        let forced = base
            .set_op(TpSetOpKind::Union, LogicalPlan::scan("meteo_s"))
            .with_overlap_plan(OverlapJoinPlan::NestedLoop)
            .with_parallelism(4);
        let op = plan_query(&c, &forced).unwrap();
        let d = op.describe();
        assert!(
            d.contains("parallel=1 (serial fallback: the nested-loop plan cannot shard)"),
            "{d}"
        );
    }

    #[test]
    fn set_op_streams_tuple_by_tuple_when_serial() {
        let mut c = Catalog::new();
        let (r, s) = tpdb_datagen::meteo_like(400, 3);
        let expected = tpdb_core::tp_union(&r, &s).unwrap();
        c.register(r).unwrap();
        c.register(s).unwrap();
        let plan =
            LogicalPlan::scan("meteo_r").set_op(TpSetOpKind::Union, LogicalPlan::scan("meteo_s"));
        let mut op =
            crate::planner::plan_query_with(&c, &plan, &crate::QueryOptions::serial()).unwrap();
        let mut n = 0;
        while let Some(t) = op.next() {
            assert!(t.is_ok());
            n += 1;
        }
        assert_eq!(n, expected.len());
        assert!(op.next().is_none(), "exhausted operators stay exhausted");
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let c = catalog();
        let plan = LogicalPlan::scan("nope");
        assert!(execute_plan(&c, &plan).is_err());
    }

    #[test]
    fn join_operator_streams_tuple_by_tuple() {
        // Pulling from the operator directly: the serial NJ path yields
        // tuples one at a time through the streaming pipeline.
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .with_parallelism(1);
        let mut op = plan_query(&c, &plan).unwrap();
        let mut n = 0;
        while let Some(t) = op.next() {
            assert!(t.is_ok());
            n += 1;
        }
        assert_eq!(n, 7);
        assert!(op.next().is_none(), "exhausted operators stay exhausted");
    }

    #[test]
    fn describe_mentions_operators() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::LeftOuter,
            JoinStrategy::Ta,
        );
        let op = plan_query(&c, &plan).unwrap();
        let d = op.describe();
        assert!(d.contains("TpJoin"));
        assert!(d.contains("TA"));
        assert!(d.contains("Scan a"));
    }
}
