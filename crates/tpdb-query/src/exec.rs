//! Physical operators (Volcano iterator model) and plan execution.
//!
//! Every operator implements [`PhysicalOperator`] and produces its output
//! one tuple at a time through `next()`. Scans, filters and projections are
//! fully streaming. The TP join operators materialize their two inputs
//! (joins need the complete negative relation to build windows — exactly as
//! the hash/merge join of a conventional DBMS materializes its build side)
//! and then produce output tuples lazily: the NJ strategy forms output
//! tuples from the streaming window pipeline of `tpdb-core`, the TA strategy
//! runs the alignment baseline.

use crate::expr::BoundPredicate;
use crate::plan::{JoinStrategy, LogicalPlan};
use crate::planner::plan_query;
use crate::QueryError;
use std::sync::Arc;
use tpdb_core::{OverlapJoinPlan, ThetaCondition, TpJoinKind};
use tpdb_storage::{Catalog, Schema, TpRelation, TpTuple};

/// A Volcano-style physical operator.
pub trait PhysicalOperator {
    /// The fact schema of the tuples this operator produces.
    fn schema(&self) -> &Schema;

    /// Produces the next output tuple, or `None` when exhausted.
    fn next(&mut self) -> Option<TpTuple>;

    /// A short human-readable description (used by `EXPLAIN`).
    fn describe(&self) -> String;

    /// Drains the operator into a materialized relation.
    fn collect(&mut self, name: &str) -> TpRelation {
        let mut rel = TpRelation::new(name, self.schema().clone());
        while let Some(t) = self.next() {
            rel.push_unchecked(t);
        }
        rel
    }
}

/// Sequential scan over a stored relation.
pub struct ScanExec {
    relation: Arc<TpRelation>,
    cursor: usize,
}

impl ScanExec {
    /// Creates a scan over `relation`.
    #[must_use]
    pub fn new(relation: Arc<TpRelation>) -> Self {
        Self {
            relation,
            cursor: 0,
        }
    }
}

impl PhysicalOperator for ScanExec {
    fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    fn next(&mut self) -> Option<TpTuple> {
        let t = self.relation.tuples().get(self.cursor)?.clone();
        self.cursor += 1;
        Some(t)
    }

    fn describe(&self) -> String {
        format!(
            "Scan {} ({} tuples)",
            self.relation.name(),
            self.relation.len()
        )
    }
}

/// Streaming filter.
pub struct FilterExec {
    input: Box<dyn PhysicalOperator>,
    predicates: Vec<BoundPredicate>,
}

impl FilterExec {
    /// Creates a filter over `input`.
    #[must_use]
    pub fn new(input: Box<dyn PhysicalOperator>, predicates: Vec<BoundPredicate>) -> Self {
        Self { input, predicates }
    }
}

impl PhysicalOperator for FilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Option<TpTuple> {
        loop {
            let t = self.input.next()?;
            if self.predicates.iter().all(|p| p.matches(&t)) {
                return Some(t);
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "Filter ({} predicates) -> {}",
            self.predicates.len(),
            self.input.describe()
        )
    }
}

/// Streaming projection onto a subset of the fact columns.
pub struct ProjectExec {
    input: Box<dyn PhysicalOperator>,
    indices: Vec<usize>,
    schema: Schema,
}

impl ProjectExec {
    /// Creates a projection keeping `indices` of the input schema.
    #[must_use]
    pub fn new(input: Box<dyn PhysicalOperator>, indices: Vec<usize>) -> Self {
        let fields: Vec<tpdb_storage::Field> = indices
            .iter()
            .map(|&i| input.schema().fields()[i].clone())
            .collect();
        let schema = Schema::new(fields);
        Self {
            input,
            indices,
            schema,
        }
    }
}

impl PhysicalOperator for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<TpTuple> {
        let t = self.input.next()?;
        let facts = self.indices.iter().map(|&i| t.fact(i).clone()).collect();
        Some(TpTuple::new(
            facts,
            t.lineage().clone(),
            t.interval(),
            t.probability(),
        ))
    }

    fn describe(&self) -> String {
        format!(
            "Project ({} cols) -> {}",
            self.indices.len(),
            self.input.describe()
        )
    }
}

/// TP join operator. The two inputs are materialized when the first output
/// tuple is requested; output tuples are then streamed from the computed
/// result.
pub struct TpJoinExec {
    left: Box<dyn PhysicalOperator>,
    right: Box<dyn PhysicalOperator>,
    theta: ThetaCondition,
    kind: TpJoinKind,
    strategy: JoinStrategy,
    overlap_plan: Option<OverlapJoinPlan>,
    schema: Schema,
    result: Option<std::vec::IntoIter<TpTuple>>,
}

impl TpJoinExec {
    /// Creates a TP join operator. `overlap_plan` forces the NJ strategy's
    /// overlap-join plan (`None` = automatic: sweep for equi-joins, nested
    /// loop otherwise); the TA strategy ignores it.
    #[must_use]
    pub fn new(
        left: Box<dyn PhysicalOperator>,
        right: Box<dyn PhysicalOperator>,
        theta: ThetaCondition,
        kind: TpJoinKind,
        strategy: JoinStrategy,
        overlap_plan: Option<OverlapJoinPlan>,
    ) -> Self {
        let schema = match kind {
            TpJoinKind::Anti => left.schema().clone(),
            _ => left.schema().concat(right.schema(), "s_"),
        };
        Self {
            left,
            right,
            theta,
            kind,
            strategy,
            overlap_plan,
            schema,
            result: None,
        }
    }

    fn compute(&mut self) -> Result<Vec<TpTuple>, QueryError> {
        let left = self.left.collect("left");
        let right = self.right.collect("right");
        let joined = match self.strategy {
            JoinStrategy::Nj => tpdb_core::tp_join_with_plan(
                &left,
                &right,
                &self.theta,
                self.kind,
                self.overlap_plan,
            )?,
            JoinStrategy::Ta => tpdb_ta::ta_join(&left, &right, &self.theta, self.kind)?,
        };
        // Adopt the join's schema (column prefixes depend on input names).
        self.schema = joined.schema().clone();
        Ok(joined.tuples().to_vec())
    }
}

impl PhysicalOperator for TpJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<TpTuple> {
        if self.result.is_none() {
            let tuples = self.compute().ok()?;
            self.result = Some(tuples.into_iter());
        }
        self.result.as_mut().and_then(Iterator::next)
    }

    fn describe(&self) -> String {
        // Name the overlap-join plan that will actually run: the forced one,
        // or the automatic choice resolved against the child schemas.
        let plan_note = match (self.strategy, self.overlap_plan) {
            (_, Some(p)) => format!(" plan={p}"),
            (JoinStrategy::Nj, None) => {
                match self.theta.bind(self.left.schema(), self.right.schema()) {
                    Ok(bound) => format!(" plan=auto({})", tpdb_core::auto_plan(&bound)),
                    Err(_) => String::new(),
                }
            }
            (JoinStrategy::Ta, None) => String::new(),
        };
        format!(
            "TpJoin {} [{}{}] ({}) over [{}; {}]",
            self.kind.symbol(),
            self.strategy,
            plan_note,
            self.theta,
            self.left.describe(),
            self.right.describe()
        )
    }
}

/// Plans and executes a logical plan against a catalog, returning the
/// materialized result relation.
pub fn execute_plan(catalog: &Catalog, plan: &LogicalPlan) -> Result<TpRelation, QueryError> {
    let mut root = plan_query(catalog, plan)?;
    Ok(root.collect("result"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{LiteralPredicate, PredicateOp};
    use tpdb_storage::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        c.register(a).unwrap();
        c.register(b).unwrap();
        c
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .filter(vec![LiteralPredicate::new(
                "Loc",
                PredicateOp::Eq,
                Value::str("ZAK"),
            )])
            .project(vec!["Name".to_owned()]);
        let result = execute_plan(&c, &plan).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuple(0).fact(0), &Value::str("Ann"));
        assert_eq!(result.schema().arity(), 1);
        // probability and interval survive the projection
        assert!((result.tuple(0).probability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn nj_join_plan_produces_paper_result() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::LeftOuter,
            JoinStrategy::Nj,
        );
        let result = execute_plan(&c, &plan).unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn ta_strategy_gives_same_cardinality() {
        let c = catalog();
        let mk = |strategy| {
            LogicalPlan::scan("a").tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                strategy,
            )
        };
        let nj = execute_plan(&c, &mk(JoinStrategy::Nj)).unwrap();
        let ta = execute_plan(&c, &mk(JoinStrategy::Ta)).unwrap();
        assert_eq!(nj.len(), ta.len());
    }

    #[test]
    fn join_then_filter_then_project() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .filter(vec![LiteralPredicate::new(
                "Hotel",
                PredicateOp::Eq,
                Value::str("hotel1"),
            )])
            .project(vec!["Name".to_owned(), "Hotel".to_owned()]);
        let result = execute_plan(&c, &plan).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuple(0).fact(1), &Value::str("hotel1"));
    }

    #[test]
    fn anti_join_schema_has_only_left_columns() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::Anti,
            JoinStrategy::Nj,
        );
        let result = execute_plan(&c, &plan).unwrap();
        assert_eq!(result.schema().arity(), 2);
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let c = catalog();
        let plan = LogicalPlan::scan("nope");
        assert!(execute_plan(&c, &plan).is_err());
    }

    #[test]
    fn describe_mentions_operators() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::LeftOuter,
            JoinStrategy::Ta,
        );
        let op = plan_query(&c, &plan).unwrap();
        let d = op.describe();
        assert!(d.contains("TpJoin"));
        assert!(d.contains("TA"));
        assert!(d.contains("Scan a"));
    }
}
