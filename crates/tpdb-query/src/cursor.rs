//! Streaming result cursors.

use crate::exec::PhysicalOperator;
use crate::TpdbError;
use tpdb_storage::{Schema, TpRelation, TpTuple};

/// A streaming cursor over a query result: an
/// `Iterator<Item = Result<TpTuple, TpdbError>>` that pulls tuples out of
/// the Volcano operator tree — and, inside a TP join, out of the streaming
/// `OverlapWindowStream → LawauStream → LawanStream` pipeline — one at a
/// time. The full result is never materialized unless the cursor is
/// drained.
///
/// ## Lifecycle
///
/// * The cursor snapshots its input relations at open time (scans hold
///   `Arc` handles): dropping or replacing a relation in the catalog while
///   a cursor is open does not affect the tuples it yields.
/// * TP joins under a cursor run the serial streaming pipeline, so the
///   first tuple is available after a single window group is processed;
///   an explicit `PARALLEL n` pin still executes partitioned and streams
///   the merged result.
/// * An error fuses the cursor: after yielding `Err(_)` once it yields
///   `None` forever. Dropping a cursor early simply abandons the rest of
///   the computation.
///
/// ```
/// use tpdb_query::Session;
/// use tpdb_storage::Catalog;
///
/// let mut catalog = Catalog::new();
/// let (a, b) = tpdb_datagen::booking_example();
/// catalog.register(a).unwrap();
/// catalog.register(b).unwrap();
/// let session = Session::new(catalog);
///
/// let mut cursor = session
///     .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
///     .unwrap();
/// let first = cursor.next().unwrap().unwrap();
/// assert!((0.0..=1.0).contains(&first.probability()));
/// assert_eq!(cursor.fetched(), 1);
///
/// // collect() drains the remaining tuples into a relation — for a fresh
/// // cursor this is exactly what `Session::execute` returns.
/// let rest = cursor.collect().unwrap();
/// assert_eq!(rest.len(), 6); // 7 answer tuples minus the one fetched
/// ```
pub struct ResultCursor {
    /// Output schema, snapshotted at open time (before the join adopts its
    /// runtime column prefixes) so that cursor results are byte-identical
    /// to materializing execution.
    schema: Schema,
    op: Box<dyn PhysicalOperator>,
    fetched: usize,
    done: bool,
}

impl ResultCursor {
    /// Wraps a lowered operator tree.
    pub(crate) fn new(op: Box<dyn PhysicalOperator>) -> Self {
        Self {
            schema: op.schema().clone(),
            op,
            fetched: 0,
            done: false,
        }
    }

    /// The fact schema of the tuples this cursor yields.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// How many tuples have been fetched so far.
    #[must_use]
    pub fn fetched(&self) -> usize {
        self.fetched
    }

    /// Drains the *remaining* tuples into a materialized relation named
    /// `result` (already-fetched tuples are not replayed). Calling this on
    /// a fresh cursor yields exactly the relation the materializing
    /// execution paths return.
    pub fn collect(mut self) -> Result<TpRelation, TpdbError> {
        let mut rel = TpRelation::new("result", self.schema.clone());
        for t in &mut self {
            rel.push_unchecked(t?);
        }
        Ok(rel)
    }
}

impl Iterator for ResultCursor {
    type Item = Result<TpTuple, TpdbError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.op.next() {
            Some(Ok(t)) => {
                self.fetched += 1;
                Some(Ok(t))
            }
            Some(Err(e)) => {
                self.done = true;
                Some(Err(e))
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

impl std::fmt::Debug for ResultCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCursor")
            .field("schema", &self.schema)
            .field("fetched", &self.fetched)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}
