//! Lowering of logical plans to physical operator trees.

use crate::exec::{FilterExec, PhysicalOperator, ProjectExec, ScanExec, TpJoinExec};
use crate::plan::LogicalPlan;
use crate::QueryError;
use tpdb_storage::Catalog;

/// Lowers a logical plan to a tree of physical operators, resolving relation
/// names and column references against the catalog.
pub fn plan_query(
    catalog: &Catalog,
    plan: &LogicalPlan,
) -> Result<Box<dyn PhysicalOperator>, QueryError> {
    match plan {
        LogicalPlan::Scan { relation } => {
            let rel = catalog.relation(relation)?;
            Ok(Box::new(ScanExec::new(rel)))
        }
        LogicalPlan::Filter { input, predicates } => {
            let child = plan_query(catalog, input)?;
            let bound = predicates
                .iter()
                .map(|p| p.bind(child.schema()))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Box::new(FilterExec::new(child, bound)))
        }
        LogicalPlan::Project { input, columns } => {
            let child = plan_query(catalog, input)?;
            let indices = columns
                .iter()
                .map(|c| child.schema().require(c))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Box::new(ProjectExec::new(child, indices)))
        }
        LogicalPlan::TpJoin {
            left,
            right,
            theta,
            kind,
            strategy,
        } => {
            let left = plan_query(catalog, left)?;
            let right = plan_query(catalog, right)?;
            // Validate θ against the child schemas at plan time so that
            // errors surface before execution.
            theta.bind(left.schema(), right.schema())?;
            Ok(Box::new(TpJoinExec::new(
                left,
                right,
                theta.clone(),
                *kind,
                *strategy,
            )))
        }
    }
}

/// Returns the physical plan description for a logical plan — the moral
/// equivalent of `EXPLAIN`.
pub fn explain(catalog: &Catalog, plan: &LogicalPlan) -> Result<String, QueryError> {
    Ok(format!(
        "Logical plan:\n{}\nPhysical plan:\n  {}\n",
        plan.pretty(),
        plan_query(catalog, plan)?.describe()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinStrategy;
    use tpdb_core::{ThetaCondition, TpJoinKind};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        c.register(a).unwrap();
        c.register(b).unwrap();
        c
    }

    #[test]
    fn planning_validates_theta_columns() {
        let c = catalog();
        let bad = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Missing", "Loc"),
            TpJoinKind::LeftOuter,
            JoinStrategy::Nj,
        );
        assert!(plan_query(&c, &bad).is_err());
    }

    #[test]
    fn planning_validates_projection_columns() {
        let c = catalog();
        let bad = LogicalPlan::scan("a").project(vec!["Missing".to_owned()]);
        assert!(plan_query(&c, &bad).is_err());
    }

    #[test]
    fn explain_contains_both_plans() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::Anti,
            JoinStrategy::Nj,
        );
        let text = explain(&c, &plan).unwrap();
        assert!(text.contains("Logical plan:"));
        assert!(text.contains("Physical plan:"));
        assert!(text.contains("▷"));
    }
}
