//! Lowering of logical plans to physical operator trees.

use crate::exec::{FilterExec, PhysicalOperator, ProjectExec, ScanExec, SetOpExec, TpJoinExec};
use crate::plan::LogicalPlan;
use crate::TpdbError;
use tpdb_storage::{Catalog, Value};

/// Session-level execution options the planner resolves logical plans
/// against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOptions {
    /// Default degree of parallelism for TP joins that do not pin one via
    /// [`LogicalPlan::with_parallelism`]. Defaults to all available cores;
    /// `1` selects the serial pipeline everywhere.
    pub parallelism: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            parallelism: tpdb_core::default_parallelism(),
        }
    }
}

impl QueryOptions {
    /// Options forcing fully serial execution (used by tests and the
    /// baseline series of the scaling experiments).
    #[must_use]
    pub fn serial() -> Self {
        Self { parallelism: 1 }
    }
}

/// Lowers a logical plan to a tree of physical operators with the default
/// [`QueryOptions`], resolving relation names and column references against
/// the catalog.
pub fn plan_query(
    catalog: &Catalog,
    plan: &LogicalPlan,
) -> Result<Box<dyn PhysicalOperator>, TpdbError> {
    plan_query_with(catalog, plan, &QueryOptions::default())
}

/// [`plan_query`] with explicit execution options.
///
/// The plan must be fully bound: a `$n` placeholder in a filter predicate
/// fails with [`TpdbError::UnboundParameter`] — substitute values first
/// with [`LogicalPlan::bind_parameters`] (or prepare the statement through
/// a [`crate::Session`], which does this for you).
pub fn plan_query_with(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: &QueryOptions,
) -> Result<Box<dyn PhysicalOperator>, TpdbError> {
    // The catalog-wide base-probability engine is built at most once per
    // lowering — lazily, so scan-only plans never pay for it — and cloned
    // into each join/set-op operator.
    let mut base_engine = None;
    lower(catalog, plan, options, &mut base_engine)
}

/// Recursive lowering behind [`plan_query_with`]. `base_engine` caches the
/// catalog's [`probability engine`](Catalog::probability_engine) across the
/// operator nodes of one lowering.
fn lower(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: &QueryOptions,
    base_engine: &mut Option<tpdb_lineage::ProbabilityEngine>,
) -> Result<Box<dyn PhysicalOperator>, TpdbError> {
    match plan {
        LogicalPlan::Scan { relation } => {
            let rel = catalog.relation(relation)?;
            Ok(Box::new(ScanExec::new(rel)))
        }
        LogicalPlan::Filter { input, predicates } => {
            let child = lower(catalog, input, options, base_engine)?;
            let bound = predicates
                .iter()
                .map(|p| p.bind(child.schema()))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Box::new(FilterExec::new(child, bound)))
        }
        LogicalPlan::Project { input, columns } => {
            let child = lower(catalog, input, options, base_engine)?;
            let indices = columns
                .iter()
                .map(|c| child.schema().require(c))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Box::new(ProjectExec::new(child, indices)))
        }
        LogicalPlan::TpJoin {
            left,
            right,
            theta,
            kind,
            strategy,
            overlap_plan,
            parallelism,
        } => {
            let left = lower(catalog, left, options, base_engine)?;
            let right = lower(catalog, right, options, base_engine)?;
            // Validate θ against the child schemas at plan time so that
            // errors surface before execution.
            let bound = theta.bind(left.schema(), right.schema())?;
            // A forced overlap-join plan must be executable for θ; failing
            // here keeps EXPLAIN honest about the plan that will run.
            if let Some(plan) = overlap_plan {
                if plan.requires_equi_join() && !bound.is_equi_join() {
                    return Err(TpdbError::Storage(
                        tpdb_storage::StorageError::PlanNotApplicable {
                            plan: plan.label().to_owned(),
                            reason: format!("θ ({theta}) is not a pure equi-join"),
                        },
                    ));
                }
            }
            let requested = parallelism.unwrap_or(options.parallelism).max(1);
            Ok(Box::new(TpJoinExec::new(
                left,
                right,
                theta.clone(),
                *kind,
                *strategy,
                *overlap_plan,
                requested,
                base_engine
                    .get_or_insert_with(|| catalog.probability_engine())
                    .clone(),
            )))
        }
        LogicalPlan::SetOp {
            kind,
            left,
            right,
            overlap_plan,
            parallelism,
        } => {
            let left = lower(catalog, left, options, base_engine)?;
            let right = lower(catalog, right, options, base_engine)?;
            // Union compatibility fails at plan time, not at the first
            // execution: arity and per-position value types through the
            // core check, plus matching column names — the output schema is
            // the left input's, so a name mismatch would silently relabel
            // the right side's values.
            tpdb_core::check_union_compatible(left.schema(), right.schema())?;
            for (lf, rf) in left.schema().fields().iter().zip(right.schema().fields()) {
                if lf.name != rf.name {
                    return Err(TpdbError::Storage(
                        tpdb_storage::StorageError::UnionIncompatible {
                            column: lf.name.clone(),
                            detail: format!("left names it '{}', right '{}'", lf.name, rf.name),
                        },
                    ));
                }
            }
            let requested = parallelism.unwrap_or(options.parallelism).max(1);
            Ok(Box::new(SetOpExec::new(
                left,
                right,
                *kind,
                *overlap_plan,
                requested,
                base_engine
                    .get_or_insert_with(|| catalog.probability_engine())
                    .clone(),
            )))
        }
        // Utility statements have no streamable physical operator; they
        // execute through `Session` against the catalog itself.
        LogicalPlan::SaveSnapshot { .. } | LogicalPlan::LoadSnapshot { .. } => Err(
            TpdbError::Storage(tpdb_storage::StorageError::PlanNotApplicable {
                plan: "snapshot".to_owned(),
                reason: "SAVE/LOAD SNAPSHOT are utility statements; run them through a session"
                    .to_owned(),
            }),
        ),
    }
}

/// Returns the physical plan description for a logical plan — the moral
/// equivalent of `EXPLAIN` — with the default [`QueryOptions`].
pub fn explain(catalog: &Catalog, plan: &LogicalPlan) -> Result<String, TpdbError> {
    explain_with(catalog, plan, &QueryOptions::default())
}

/// [`explain`] with explicit execution options.
///
/// A parameterized plan explains without binding: the logical plan prints
/// the `$n` placeholder slots, the physical plan is validated with `NULL`
/// stand-ins, and a trailing `Parameters:` line reports the open slots.
pub fn explain_with(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: &QueryOptions,
) -> Result<String, TpdbError> {
    let slots = plan.parameter_count();
    // Validate and describe the physical plan; placeholders are stood in
    // by NULLs so that a parameterized query can be explained (but not
    // executed) without binding.
    let lowered = if slots > 0 {
        plan.bind_parameters(&vec![Value::Null; slots])?
    } else {
        plan.clone()
    };
    // Utility statements are described directly — they never lower to a
    // stream operator.
    let physical = match &lowered {
        LogicalPlan::SaveSnapshot { path } => format!(
            "SnapshotWrite '{path}' ({} relation(s))",
            catalog.relation_names().len()
        ),
        LogicalPlan::LoadSnapshot { path } => {
            format!("SnapshotRead '{path}' (replaces the catalog, all-or-nothing)")
        }
        other => plan_query_with(catalog, other, options)?.describe(),
    };
    let mut out = format!(
        "Logical plan:\n{}\nPhysical plan:\n  {physical}\n",
        plan.pretty(),
    );
    if slots > 0 {
        out.push_str(&format!(
            "Parameters: {slots} unbound slot(s) $1..${slots}\n"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinStrategy;
    use tpdb_core::{ThetaCondition, TpJoinKind};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        c.register(a).unwrap();
        c.register(b).unwrap();
        c
    }

    #[test]
    fn planning_validates_theta_columns() {
        let c = catalog();
        let bad = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Missing", "Loc"),
            TpJoinKind::LeftOuter,
            JoinStrategy::Nj,
        );
        assert!(plan_query(&c, &bad).is_err());
    }

    #[test]
    fn planning_validates_projection_columns() {
        let c = catalog();
        let bad = LogicalPlan::scan("a").project(vec!["Missing".to_owned()]);
        assert!(plan_query(&c, &bad).is_err());
    }

    #[test]
    fn forced_plan_on_non_equi_theta_fails_at_plan_time() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::always(),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .with_overlap_plan(tpdb_core::OverlapJoinPlan::Sweep);
        let err = match plan_query(&c, &plan) {
            Err(e) => e,
            Ok(_) => panic!("forced sweep on non-equi θ must fail at plan time"),
        };
        assert!(err.to_string().contains("sweep"), "{err}");
    }

    #[test]
    fn forced_plan_reaches_through_filters_and_executes() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .filter(Vec::new())
            .with_overlap_plan(tpdb_core::OverlapJoinPlan::Sweep);
        let op = plan_query(&c, &plan).unwrap();
        assert!(op.describe().contains("plan=sweep"), "{}", op.describe());
        let result = crate::exec::execute_plan(&c, &plan).unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn options_supply_the_default_parallelism() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::LeftOuter,
            JoinStrategy::Nj,
        );
        let serial = plan_query_with(&c, &plan, &QueryOptions::serial()).unwrap();
        assert!(
            serial.describe().contains("parallel=1"),
            "{}",
            serial.describe()
        );
        let four = plan_query_with(&c, &plan, &QueryOptions { parallelism: 4 }).unwrap();
        assert!(
            four.describe().contains("parallel=4"),
            "{}",
            four.describe()
        );
        // a plan-pinned degree beats the session default
        let pinned = plan.with_parallelism(2);
        let op = plan_query_with(&c, &pinned, &QueryOptions { parallelism: 8 }).unwrap();
        assert!(op.describe().contains("parallel=2"), "{}", op.describe());
        assert!(QueryOptions::default().parallelism >= 1);
    }

    #[test]
    fn explain_contains_both_plans() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::Anti,
            JoinStrategy::Nj,
        );
        let text = explain(&c, &plan).unwrap();
        assert!(text.contains("Logical plan:"));
        assert!(text.contains("Physical plan:"));
        assert!(text.contains("▷"));
    }
}
