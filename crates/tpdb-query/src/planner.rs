//! Lowering of logical plans to physical operator trees.

use crate::exec::{FilterExec, PhysicalOperator, ProjectExec, ScanExec, TpJoinExec};
use crate::plan::LogicalPlan;
use crate::QueryError;
use tpdb_storage::Catalog;

/// Lowers a logical plan to a tree of physical operators, resolving relation
/// names and column references against the catalog.
pub fn plan_query(
    catalog: &Catalog,
    plan: &LogicalPlan,
) -> Result<Box<dyn PhysicalOperator>, QueryError> {
    match plan {
        LogicalPlan::Scan { relation } => {
            let rel = catalog.relation(relation)?;
            Ok(Box::new(ScanExec::new(rel)))
        }
        LogicalPlan::Filter { input, predicates } => {
            let child = plan_query(catalog, input)?;
            let bound = predicates
                .iter()
                .map(|p| p.bind(child.schema()))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Box::new(FilterExec::new(child, bound)))
        }
        LogicalPlan::Project { input, columns } => {
            let child = plan_query(catalog, input)?;
            let indices = columns
                .iter()
                .map(|c| child.schema().require(c))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Box::new(ProjectExec::new(child, indices)))
        }
        LogicalPlan::TpJoin {
            left,
            right,
            theta,
            kind,
            strategy,
            overlap_plan,
        } => {
            let left = plan_query(catalog, left)?;
            let right = plan_query(catalog, right)?;
            // Validate θ against the child schemas at plan time so that
            // errors surface before execution.
            let bound = theta.bind(left.schema(), right.schema())?;
            // A forced overlap-join plan must be executable for θ; failing
            // here keeps EXPLAIN honest about the plan that will run.
            if let Some(plan) = overlap_plan {
                if plan.requires_equi_join() && !bound.is_equi_join() {
                    return Err(QueryError::Storage(
                        tpdb_storage::StorageError::PlanNotApplicable {
                            plan: plan.label().to_owned(),
                            reason: format!("θ ({theta}) is not a pure equi-join"),
                        },
                    ));
                }
            }
            Ok(Box::new(TpJoinExec::new(
                left,
                right,
                theta.clone(),
                *kind,
                *strategy,
                *overlap_plan,
            )))
        }
    }
}

/// Returns the physical plan description for a logical plan — the moral
/// equivalent of `EXPLAIN`.
pub fn explain(catalog: &Catalog, plan: &LogicalPlan) -> Result<String, QueryError> {
    Ok(format!(
        "Logical plan:\n{}\nPhysical plan:\n  {}\n",
        plan.pretty(),
        plan_query(catalog, plan)?.describe()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinStrategy;
    use tpdb_core::{ThetaCondition, TpJoinKind};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        c.register(a).unwrap();
        c.register(b).unwrap();
        c
    }

    #[test]
    fn planning_validates_theta_columns() {
        let c = catalog();
        let bad = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Missing", "Loc"),
            TpJoinKind::LeftOuter,
            JoinStrategy::Nj,
        );
        assert!(plan_query(&c, &bad).is_err());
    }

    #[test]
    fn planning_validates_projection_columns() {
        let c = catalog();
        let bad = LogicalPlan::scan("a").project(vec!["Missing".to_owned()]);
        assert!(plan_query(&c, &bad).is_err());
    }

    #[test]
    fn forced_plan_on_non_equi_theta_fails_at_plan_time() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::always(),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .with_overlap_plan(tpdb_core::OverlapJoinPlan::Sweep);
        let err = match plan_query(&c, &plan) {
            Err(e) => e,
            Ok(_) => panic!("forced sweep on non-equi θ must fail at plan time"),
        };
        assert!(err.to_string().contains("sweep"), "{err}");
    }

    #[test]
    fn forced_plan_reaches_through_filters_and_executes() {
        let c = catalog();
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .filter(Vec::new())
            .with_overlap_plan(tpdb_core::OverlapJoinPlan::Sweep);
        let op = plan_query(&c, &plan).unwrap();
        assert!(op.describe().contains("plan=sweep"), "{}", op.describe());
        let result = crate::exec::execute_plan(&c, &plan).unwrap();
        assert_eq!(result.len(), 7);
    }

    #[test]
    fn explain_contains_both_plans() {
        let c = catalog();
        let plan = LogicalPlan::scan("a").tp_join(
            LogicalPlan::scan("b"),
            ThetaCondition::column_equals("Loc", "Loc"),
            TpJoinKind::Anti,
            JoinStrategy::Nj,
        );
        let text = explain(&c, &plan).unwrap();
        assert!(text.contains("Logical plan:"));
        assert!(text.contains("Physical plan:"));
        assert!(text.contains("▷"));
    }
}
