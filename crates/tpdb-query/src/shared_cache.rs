//! Plan preparation and the shared, sharded plan cache.
//!
//! [`prepare_plan`] is the one parse-and-validate path of the query layer:
//! it turns statement text into a [`PreparedPlan`] — the parsed
//! [`LogicalPlan`], its `$n` parameter-slot count, and the catalog schema
//! epoch the validation ran against. [`crate::Session`] caches prepared
//! plans per session; [`ShardedPlanCache`] is the *shared* variant the
//! server front-end hangs off one `Arc`: N independently locked shards
//! (keyed by a hash of the normalized statement text) so that concurrent
//! workers preparing different statements never contend on one mutex.
//!
//! Cache keying is identical to the session cache: the whitespace-
//! normalized text is the key, and an entry only answers a lookup when its
//! recorded schema epoch matches the reading catalog's current epoch — any
//! DDL or snapshot load invalidates every older entry implicitly.
//!
//! ```
//! use tpdb_query::{QueryOptions, ShardedPlanCache};
//! use tpdb_storage::Catalog;
//!
//! let mut catalog = Catalog::new();
//! let (a, b) = tpdb_datagen::booking_example();
//! catalog.register(a).unwrap();
//! catalog.register(b).unwrap();
//!
//! let cache = ShardedPlanCache::default();
//! let options = QueryOptions::serial();
//! let q = "SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc";
//! let first = cache.get_or_prepare(&catalog, &options, q).unwrap();
//! let again = cache.get_or_prepare(&catalog, &options, q).unwrap();
//! assert_eq!(first.epoch, again.epoch);
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses), (1, 1));
//! ```

use crate::parser::parse_query;
use crate::plan::LogicalPlan;
use crate::planner::{plan_query_with, QueryOptions};
use crate::TpdbError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tpdb_storage::{Catalog, Value};

/// A statement parsed and validated once: the immutable unit both the
/// per-session cache and the [`ShardedPlanCache`] hand out behind `Arc`s.
#[derive(Debug)]
pub struct PreparedPlan {
    /// The parsed logical plan, `$n` placeholders unbound.
    pub plan: LogicalPlan,
    /// Number of `$n` parameter slots the statement references.
    pub parameters: usize,
    /// Schema epoch of the catalog the plan was validated against; a
    /// catalog reporting any other epoch makes this plan stale.
    pub epoch: u64,
}

/// Parses and validates `text` against `catalog`, the single
/// parse-and-validate path shared by [`crate::Session::prepare`] and the
/// shared cache. Validation lowers the plan once (with `NULL` stand-ins
/// for parameters), so unknown relations, unknown columns, θ binding
/// failures and inapplicable forced plans all fail here — at prepare time,
/// not at the first execution.
pub fn prepare_plan(
    catalog: &Catalog,
    options: &QueryOptions,
    text: &str,
) -> Result<PreparedPlan, TpdbError> {
    let plan = parse_query(text)?;
    let parameters = plan.parameter_count();
    // Utility statements (snapshot save/load) have no physical plan to
    // probe; everything else validates by lowering once.
    if !plan.is_utility() {
        let probe = if parameters > 0 {
            plan.bind_parameters(&vec![Value::Null; parameters])?
        } else {
            plan.clone()
        };
        plan_query_with(catalog, &probe, options)?;
    }
    Ok(PreparedPlan {
        plan,
        parameters,
        epoch: catalog.schema_epoch(),
    })
}

/// Normalizes statement text for cache keying: surrounding whitespace is
/// trimmed and internal whitespace runs collapse to a single space, so
/// reformatting a query does not defeat the cache. Whitespace inside
/// `'...'` string literals is copied verbatim — `'A  B'` and `'A B'` are
/// different literals and must not share a cached plan. (Keywords are
/// matched case-insensitively by the parser, but identifiers and literals
/// are case-sensitive — case is therefore preserved here.)
#[must_use]
pub fn normalize_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if c.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        out.push(c);
        if c == '\'' {
            // copy the literal (including its whitespace) up to the
            // closing quote; an unterminated literal fails at parse time,
            // before anything is cached
            for q in chars.by_ref() {
                out.push(q);
                if q == '\'' {
                    break;
                }
            }
        }
    }
    out
}

/// One independently locked shard of the cache.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Arc<PreparedPlan>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
}

/// Counters of a [`ShardedPlanCache`] ([`ShardedPlanCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache (text found, epoch current).
    pub hits: u64,
    /// Lookups that had to parse + validate (including epoch-stale hits).
    pub misses: u64,
    /// Plans currently cached across all shards.
    pub entries: usize,
}

/// A plan cache shared by many concurrent sessions: N shards, each its own
/// mutex-guarded map, selected by a hash of the normalized statement text.
/// Entries are validated against the reading catalog's schema epoch on
/// every lookup, so one cache serves sessions pinned at different epochs
/// correctly — a stale entry is re-prepared and replaced in place.
///
/// Eviction is FIFO per shard with a fixed per-shard capacity, bounding
/// the cache at `shards × capacity` plans.
#[derive(Debug)]
pub struct ShardedPlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ShardedPlanCache {
    /// Eight shards of 64 plans each — 512 plans, matching a few hundred
    /// distinct prepared statements across a worker pool.
    fn default() -> Self {
        Self::new(8, 64)
    }
}

impl ShardedPlanCache {
    /// Creates a cache with `shards` independently locked shards of
    /// `capacity_per_shard` plans each (both clamped to at least 1).
    #[must_use]
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks the statement up (keyed by normalized text, validated against
    /// `catalog`'s schema epoch) or parses, validates and caches it.
    /// Parsing happens outside the shard lock; a racing prepare of the
    /// same text at worst parses twice and the later insert wins.
    pub fn get_or_prepare(
        &self,
        catalog: &Catalog,
        options: &QueryOptions,
        text: &str,
    ) -> Result<Arc<PreparedPlan>, TpdbError> {
        let key = normalize_text(text);
        let epoch = catalog.schema_epoch();
        {
            let shard = self.shard(&key);
            let cached = shard
                .entries
                .get(&key)
                .filter(|entry| entry.epoch == epoch)
                .map(Arc::clone);
            if let Some(entry) = cached {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let prepared = Arc::new(prepare_plan(catalog, options, text)?);
        let mut shard = self.shard(&key);
        if !shard.entries.contains_key(&key) {
            shard.order.push_back(key.clone());
            if shard.order.len() > self.capacity_per_shard {
                if let Some(evicted) = shard.order.pop_front() {
                    shard.entries.remove(&evicted);
                }
            }
        }
        shard.entries.insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// A snapshot of the cache's hit/miss counters and current size.
    #[must_use]
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .entries
                        .len()
                })
                .sum(),
        }
    }

    /// Locks the shard owning `key`. Poisoning is recovered: every shard
    /// mutation is a single map/deque call on `Arc`'d immutable plans, so
    /// a panicking thread cannot leave a shard torn — and a best-effort
    /// cache must never take the server down with it.
    fn shard(&self, key: &str) -> MutexGuard<'_, Shard> {
        let idx = (fx_hash(key.as_bytes()) as usize) % self.shards.len();
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// An FxHash-style byte hasher (multiply-xor over 8-byte words) — the same
/// no-dependency construction `tpdb-lineage`'s interner uses. Only shard
/// *selection* depends on it, so quality beyond "spreads typical statement
/// texts" is not required.
fn fx_hash(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk); // chunks_exact(8) guarantees the length
        hash = (hash.rotate_left(5) ^ u64::from_le_bytes(word)).wrapping_mul(SEED);
    }
    for &b in chunks.remainder() {
        hash = (hash.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_storage::{DataType, Schema, TpRelation};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let (a, b) = tpdb_datagen::booking_example();
        c.register(a).unwrap();
        c.register(b).unwrap();
        c
    }

    #[test]
    fn lookups_hit_after_one_miss_and_survive_reformatting() {
        let c = catalog();
        let cache = ShardedPlanCache::default();
        let opts = QueryOptions::serial();
        let q = "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc";
        cache.get_or_prepare(&c, &opts, q).unwrap();
        cache
            .get_or_prepare(
                &c,
                &opts,
                "  SELECT *   FROM a\n TP ANTI JOIN b ON a.Loc = b.Loc ",
            )
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn epoch_changes_invalidate_entries_in_place() {
        let mut c = catalog();
        let cache = ShardedPlanCache::default();
        let opts = QueryOptions::serial();
        let q = "SELECT * FROM a";
        let first = cache.get_or_prepare(&c, &opts, q).unwrap();
        c.register(TpRelation::new("x", Schema::tp(&[("X", DataType::Int)])))
            .unwrap();
        let second = cache.get_or_prepare(&c, &opts, q).unwrap();
        assert_ne!(first.epoch, second.epoch);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 1));
        // the refreshed entry answers the next lookup
        cache.get_or_prepare(&c, &opts, q).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn dropped_relations_fail_loudly_instead_of_reusing_stale_plans() {
        let mut c = catalog();
        let cache = ShardedPlanCache::default();
        let opts = QueryOptions::serial();
        let q = "SELECT * FROM a";
        cache.get_or_prepare(&c, &opts, q).unwrap();
        c.drop_relation("a").unwrap();
        match cache.get_or_prepare(&c, &opts, q) {
            Err(TpdbError::Storage(e)) => assert!(e.to_string().contains("unknown relation")),
            other => panic!("expected unknown relation, got {other:?}"),
        }
    }

    #[test]
    fn per_shard_capacity_bounds_the_cache() {
        let c = catalog();
        let cache = ShardedPlanCache::new(2, 4);
        let opts = QueryOptions::serial();
        for i in 0..64 {
            let q = format!("SELECT * FROM a WHERE Loc = 'L{i}'");
            cache.get_or_prepare(&c, &opts, &q).unwrap();
        }
        assert!(cache.stats().entries <= 8, "{:?}", cache.stats());
    }

    #[test]
    fn concurrent_lookups_agree_with_serial_preparation() {
        let c = catalog();
        let cache = ShardedPlanCache::default();
        let opts = QueryOptions::serial();
        let queries: Vec<String> = (0..16)
            .map(|i| format!("SELECT Name FROM a WHERE Loc = 'L{}'", i % 4))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for q in &queries {
                        let plan = cache.get_or_prepare(&c, &opts, q).unwrap();
                        assert_eq!(plan.parameters, 0);
                        assert_eq!(plan.epoch, c.schema_epoch());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.hits + stats.misses, 64);
        // every distinct text was parsed at least once, racing prepares at
        // worst parse twice — never more than the 4 threads could race
        assert!((4..=16).contains(&(stats.misses as usize)), "{stats:?}");
    }
}
