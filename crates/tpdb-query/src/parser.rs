//! A small textual query language for TP joins with negation and TP set
//! operations.
//!
//! Grammar (one query per string, case-insensitive keywords):
//!
//! ```text
//! query   := setexpr | snapshot
//! snapshot:= (SAVE | LOAD) SNAPSHOT 'path'
//! setexpr := term ((UNION | INTERSECT | EXCEPT) term)* [strategy | parallel]*
//! term    := '(' setexpr ')' | select
//! select  := SELECT cols FROM ident [join] [where] [strategy | parallel]*
//! cols    := '*' | ident (',' ident)*
//! join    := TP jkind JOIN ident ON cond (AND cond)*
//! jkind   := INNER | LEFT [OUTER] | RIGHT [OUTER] | FULL [OUTER] | ANTI
//! cond    := ident '.' ident cmp ident '.' ident
//! where   := WHERE pred (AND pred)*
//! pred    := ident cmp (literal | param)
//! cmp     := '=' | '<>' | '<' | '<=' | '>' | '>='
//! literal := number | 'string'
//! param   := '$' integer          -- 1-based placeholder, bound at execution
//! strategy:= STRATEGY (NJ | TA)
//! parallel:= PARALLEL integer
//! ```
//!
//! `UNION`, `INTERSECT` and `EXCEPT` chain left-associatively at a single
//! precedence level (`a UNION b EXCEPT c` is `(a UNION b) EXCEPT c`);
//! parentheses override the grouping. A `STRATEGY`/`PARALLEL` suffix binds
//! to the nearest enclosing construct that can accept it: a select with a
//! TP join consumes its own suffixes, otherwise they apply to the set
//! operation (where `PARALLEL n` pins the degree of the set-op node and
//! `STRATEGY` is rejected — the set operations always run on the NJ window
//! machinery).
//!
//! Examples: `SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY TA`,
//! `SELECT Name FROM a WHERE Loc = $1` (a parameterized statement — prepare
//! it with [`crate::Session::prepare`] and bind a value per placeholder),
//! `SELECT * FROM a UNION SELECT * FROM b PARALLEL 2`.
//!
//! Parse errors ([`ParseError`]) carry the byte span of the failure and the
//! offending token's lexeme.

use crate::error::{ParseError, Span};
use crate::expr::{LiteralPredicate, Operand, PredicateOp};
use crate::plan::{JoinStrategy, LogicalPlan};
use tpdb_core::{CompareOp, ThetaCondition, TpJoinKind, TpSetOpKind};
use tpdb_storage::Value;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    /// A `$n` parameter placeholder (1-based).
    Param(usize),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Cmp(String),
}

impl Token {
    /// The lexeme as it (roughly) appeared in the input, for error
    /// messages and [`ParseError::token`].
    fn lexeme(&self) -> String {
        match self {
            Token::Ident(s) => s.clone(),
            Token::Number(n) => n.to_string(),
            Token::Str(s) => format!("'{s}'"),
            Token::Param(i) => format!("${i}"),
            Token::Star => "*".to_owned(),
            Token::Comma => ",".to_owned(),
            Token::Dot => ".".to_owned(),
            Token::LParen => "(".to_owned(),
            Token::RParen => ")".to_owned(),
            Token::Cmp(op) => op.clone(),
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<(Token, Span)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes: Vec<(usize, char)> = input.char_indices().collect();
    let end = input.len();
    /// Byte offset of the character at position `i`, or the input length.
    fn offset(bytes: &[(usize, char)], i: usize, end: usize) -> usize {
        bytes.get(i).map_or(end, |&(o, _)| o)
    }
    let mut i = 0;
    while i < bytes.len() {
        let (start, c) = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '*' | ',' | '.' | '(' | ')' | '=' => {
                let token = match c {
                    '*' => Token::Star,
                    ',' => Token::Comma,
                    '.' => Token::Dot,
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    _ => Token::Cmp("=".into()),
                };
                i += 1;
                tokens.push((token, Span::new(start, offset(&bytes, i, end))));
            }
            '<' | '>' => {
                let mut op = c.to_string();
                if i + 1 < bytes.len()
                    && (bytes[i + 1].1 == '=' || (c == '<' && bytes[i + 1].1 == '>'))
                {
                    op.push(bytes[i + 1].1);
                    i += 1;
                }
                i += 1;
                tokens.push((Token::Cmp(op), Span::new(start, offset(&bytes, i, end))));
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i].1 != '\'' {
                    s.push(bytes[i].1);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(
                        ParseError::new("unterminated string literal").at(Span::new(start, end))
                    );
                }
                i += 1; // closing quote
                tokens.push((Token::Str(s), Span::new(start, offset(&bytes, i, end))));
            }
            '$' => {
                i += 1;
                let digits_start = i;
                while i < bytes.len() && bytes[i].1.is_ascii_digit() {
                    i += 1;
                }
                let span = Span::new(start, offset(&bytes, i, end));
                let digits: String = bytes[digits_start..i].iter().map(|&(_, c)| c).collect();
                let index: usize = digits.parse().map_err(|_| {
                    ParseError::new("expected a parameter placeholder like $1 after '$'")
                        .at(span)
                        .with_token("$")
                })?;
                if index == 0 {
                    return Err(ParseError::new(
                        "parameter placeholders are 1-based ($1, $2, ...)",
                    )
                    .at(span)
                    .with_token("$0"));
                }
                tokens.push((Token::Param(index), span));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let from = i;
                i += 1;
                while i < bytes.len() && (bytes[i].1.is_ascii_digit() || bytes[i].1 == '.') {
                    i += 1;
                }
                let span = Span::new(start, offset(&bytes, i, end));
                let text: String = bytes[from..i].iter().map(|&(_, c)| c).collect();
                let n: f64 = text.parse().map_err(|_| {
                    ParseError::new(format!("invalid number: {text}"))
                        .at(span)
                        .with_token(text.clone())
                })?;
                tokens.push((Token::Number(n), span));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let from = i;
                while i < bytes.len() && (bytes[i].1.is_alphanumeric() || bytes[i].1 == '_') {
                    i += 1;
                }
                let span = Span::new(start, offset(&bytes, i, end));
                tokens.push((
                    Token::Ident(bytes[from..i].iter().map(|&(_, c)| c).collect()),
                    span,
                ));
            }
            other => {
                return Err(ParseError::new(format!("unexpected character: {other}"))
                    .at(Span::new(start, start + other.len_utf8()))
                    .with_token(other.to_string()))
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Token, Span)>,
    pos: usize,
    /// Byte length of the input (end-of-input error position).
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<(Token, Span)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// The span of the *current* (not yet consumed) token, or an empty span
    /// at the end of the input.
    fn here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map_or(Span::empty(self.end), |&(_, s)| s)
    }

    /// The span of the most recently consumed token.
    fn previous(&self) -> Span {
        self.pos
            .checked_sub(1)
            .and_then(|p| self.tokens.get(p))
            .map_or(Span::empty(self.end), |&(_, s)| s)
    }

    /// A "expected X, found Y" error pointing at the current token (or end
    /// of input).
    fn expected(&self, what: &str) -> ParseError {
        match self.tokens.get(self.pos) {
            Some((token, span)) => {
                ParseError::new(format!("expected {what}, found '{}'", token.lexeme()))
                    .at(*span)
                    .with_token(token.lexeme())
            }
            None => ParseError::new(format!("expected {what}, found end of input"))
                .at(Span::empty(self.end)),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.expected(kw)),
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        if matches!(self.peek(), Some(Token::Ident(_))) {
            if let Some((Token::Ident(s), _)) = self.next() {
                return Ok(s);
            }
        }
        Err(self.expected("identifier"))
    }

    fn expect_cmp(&mut self) -> Result<String, ParseError> {
        if matches!(self.peek(), Some(Token::Cmp(_))) {
            if let Some((Token::Cmp(op), _)) = self.next() {
                return Ok(op);
            }
        }
        Err(self.expected("comparison operator"))
    }
}

fn compare_op(op: &str, at: Span) -> Result<CompareOp, ParseError> {
    Ok(match op {
        "=" => CompareOp::Eq,
        "<>" => CompareOp::Ne,
        "<" => CompareOp::Lt,
        "<=" => CompareOp::Le,
        ">" => CompareOp::Gt,
        ">=" => CompareOp::Ge,
        other => {
            return Err(
                ParseError::new(format!("unknown comparison operator {other}"))
                    .at(at)
                    .with_token(other.to_owned()),
            )
        }
    })
}

fn predicate_op(op: &str, at: Span) -> Result<PredicateOp, ParseError> {
    Ok(match op {
        "=" => PredicateOp::Eq,
        "<>" => PredicateOp::Ne,
        "<" => PredicateOp::Lt,
        "<=" => PredicateOp::Le,
        ">" => PredicateOp::Gt,
        ">=" => PredicateOp::Ge,
        other => {
            return Err(
                ParseError::new(format!("unknown comparison operator {other}"))
                    .at(at)
                    .with_token(other.to_owned()),
            )
        }
    })
}

/// Parses a query string into a logical plan.
///
/// `$1..$n` placeholders parse into [`Operand::Param`] slots of the plan's
/// filter predicates; bind them with [`LogicalPlan::bind_parameters`] (or
/// prepare the statement through a [`crate::Session`]) before execution.
pub fn parse_query(input: &str) -> Result<LogicalPlan, ParseError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
        end: input.len(),
    };

    let plan = if p.accept_keyword("SAVE") {
        p.expect_keyword("SNAPSHOT")?;
        LogicalPlan::SaveSnapshot {
            path: expect_path_literal(&mut p)?,
        }
    } else if p.accept_keyword("LOAD") {
        p.expect_keyword("SNAPSHOT")?;
        LogicalPlan::LoadSnapshot {
            path: expect_path_literal(&mut p)?,
        }
    } else {
        parse_set_expr(&mut p)?
    };

    if let Some((token, span)) = p.tokens.get(p.pos) {
        return Err(
            ParseError::new(format!("unexpected trailing token '{}'", token.lexeme()))
                .at(*span)
                .with_token(token.lexeme()),
        );
    }
    Ok(plan)
}

/// `'<path>'` operand of the snapshot statements. A non-empty string
/// literal; anything else is a parse error.
fn expect_path_literal(p: &mut Parser) -> Result<String, ParseError> {
    if matches!(p.peek(), Some(Token::Str(_))) {
        if let Some((Token::Str(s), span)) = p.next() {
            if s.is_empty() {
                return Err(ParseError::new("snapshot path must not be empty").at(span));
            }
            return Ok(s);
        }
    }
    Err(p.expected("a quoted file path"))
}

/// `setexpr := term ((UNION | INTERSECT | EXCEPT) term)* suffixes` — the
/// set operations chain left-associatively at one precedence level.
/// Suffixes left unconsumed by the terms (a select without a TP join defers
/// them) apply to the whole expression here.
fn parse_set_expr(p: &mut Parser) -> Result<LogicalPlan, ParseError> {
    let mut plan = parse_term(p)?;
    loop {
        let kind = if p.accept_keyword("UNION") {
            TpSetOpKind::Union
        } else if p.accept_keyword("INTERSECT") {
            TpSetOpKind::Intersection
        } else if p.accept_keyword("EXCEPT") {
            TpSetOpKind::Difference
        } else {
            break;
        };
        let right = parse_term(p)?;
        plan = plan.set_op(kind, right);
    }
    // Deferred STRATEGY / PARALLEL suffixes, in any order.
    loop {
        if p.accept_keyword("STRATEGY") {
            let keyword_span = p.previous();
            let name_span = p.here();
            let name = p.expect_ident()?;
            let strategy = parse_strategy_name(&name, name_span)?;
            plan = set_strategy(plan, strategy, keyword_span)?;
        } else if p.accept_keyword("PARALLEL") {
            let keyword_span = p.previous();
            let degree = expect_parallel_degree(p)?;
            plan = set_parallelism(plan, degree, keyword_span)?;
        } else {
            break;
        }
    }
    Ok(plan)
}

/// `term := '(' setexpr ')' | select`.
fn parse_term(p: &mut Parser) -> Result<LogicalPlan, ParseError> {
    if matches!(p.peek(), Some(Token::LParen)) {
        p.next();
        let plan = parse_set_expr(p)?;
        if !matches!(p.peek(), Some(Token::RParen)) {
            return Err(p.expected("')'"));
        }
        p.next();
        return Ok(plan);
    }
    parse_select(p)
}

/// Resolves a STRATEGY name.
fn parse_strategy_name(name: &str, at: Span) -> Result<JoinStrategy, ParseError> {
    if name.eq_ignore_ascii_case("NJ") {
        Ok(JoinStrategy::Nj)
    } else if name.eq_ignore_ascii_case("TA") {
        Ok(JoinStrategy::Ta)
    } else {
        Err(ParseError::new(format!("unknown strategy {name}"))
            .at(at)
            .with_token(name.to_owned()))
    }
}

/// Consumes the positive integer operand of a PARALLEL suffix.
fn expect_parallel_degree(p: &mut Parser) -> Result<usize, ParseError> {
    match p.peek() {
        Some(&Token::Number(n)) if n >= 1.0 && n.fract() == 0.0 => {
            p.next();
            Ok(n as usize)
        }
        _ => Err(p.expected("a positive integer after PARALLEL")),
    }
}

/// Whether the plan contains a TP join (determines which level a
/// `STRATEGY`/`PARALLEL` suffix binds to).
fn contains_join(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. }
        | LogicalPlan::SaveSnapshot { .. }
        | LogicalPlan::LoadSnapshot { .. } => false,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            contains_join(input)
        }
        LogicalPlan::TpJoin { .. } => true,
        LogicalPlan::SetOp { left, right, .. } => contains_join(left) || contains_join(right),
    }
}

/// `select := SELECT cols FROM ident [join] [where] suffixes` — one branch
/// of a (possibly trivial) set expression. Suffixes are only consumed when
/// the select contains a TP join they can bind to; otherwise they are left
/// for the enclosing set expression.
fn parse_select(p: &mut Parser) -> Result<LogicalPlan, ParseError> {
    p.expect_keyword("SELECT")?;
    // projection list
    let mut projection: Option<Vec<String>> = None;
    if matches!(p.peek(), Some(Token::Star)) {
        p.next();
    } else {
        let mut cols = vec![p.expect_ident()?];
        while matches!(p.peek(), Some(Token::Comma)) {
            p.next();
            cols.push(p.expect_ident()?);
        }
        projection = Some(cols);
    }

    p.expect_keyword("FROM")?;
    let left_name = p.expect_ident()?;
    let mut plan = LogicalPlan::scan(&left_name);

    // optional TP join
    if p.accept_keyword("TP") {
        let kind = if p.accept_keyword("INNER") {
            TpJoinKind::Inner
        } else if p.accept_keyword("LEFT") {
            let _ = p.accept_keyword("OUTER");
            TpJoinKind::LeftOuter
        } else if p.accept_keyword("RIGHT") {
            let _ = p.accept_keyword("OUTER");
            TpJoinKind::RightOuter
        } else if p.accept_keyword("FULL") {
            let _ = p.accept_keyword("OUTER");
            TpJoinKind::FullOuter
        } else if p.accept_keyword("ANTI") {
            TpJoinKind::Anti
        } else {
            return Err(p.expected("INNER, LEFT, RIGHT, FULL or ANTI after TP"));
        };
        p.expect_keyword("JOIN")?;
        let right_name = p.expect_ident()?;
        p.expect_keyword("ON")?;

        let mut theta = ThetaCondition::always();
        loop {
            // qualified column: rel.col
            let qualifier_span = p.here();
            let q1 = p.expect_ident()?;
            if !matches!(p.peek(), Some(Token::Dot)) {
                return Err(p.expected("'.' (join condition columns must be qualified as rel.col)"));
            }
            p.next();
            let c1 = p.expect_ident()?;
            let op_span = p.here();
            let op = compare_op(&p.expect_cmp()?, op_span)?;
            let q2 = p.expect_ident()?;
            if !matches!(p.peek(), Some(Token::Dot)) {
                return Err(p.expected("'.' (join condition columns must be qualified as rel.col)"));
            }
            p.next();
            let c2 = p.expect_ident()?;

            // orient the comparison as left-relation column vs right-relation column
            let (lc, op, rc) = if q1 == left_name && q2 == right_name {
                (c1, op, c2)
            } else if q1 == right_name && q2 == left_name {
                (
                    c2,
                    match op {
                        CompareOp::Lt => CompareOp::Gt,
                        CompareOp::Le => CompareOp::Ge,
                        CompareOp::Gt => CompareOp::Lt,
                        CompareOp::Ge => CompareOp::Le,
                        other => other,
                    },
                    c1,
                )
            } else {
                return Err(ParseError::new(format!(
                    "join condition must reference {left_name} and {right_name}"
                ))
                .at(Span::new(qualifier_span.start, p.previous().end)));
            };
            theta = theta.and_compare(&lc, op, &rc);

            if !p.accept_keyword("AND") {
                break;
            }
        }

        // optional strategy suffix can appear after WHERE too; look ahead later
        plan = plan.tp_join(
            LogicalPlan::scan(&right_name),
            theta,
            kind,
            JoinStrategy::Nj,
        );
    }

    // optional WHERE
    if p.accept_keyword("WHERE") {
        let mut predicates = Vec::new();
        loop {
            let column = p.expect_ident()?;
            let op_span = p.here();
            let op = predicate_op(&p.expect_cmp()?, op_span)?;
            let not_literal = |p: &Parser| p.expected("literal or $n placeholder in WHERE clause");
            let operand = match p.peek() {
                Some(Token::Number(_) | Token::Str(_) | Token::Param(_)) => match p.next() {
                    Some((Token::Number(n), _)) => {
                        if n.fract() == 0.0 {
                            Operand::Literal(Value::Int(n as i64))
                        } else {
                            Operand::Literal(Value::Float(n))
                        }
                    }
                    Some((Token::Str(s), _)) => Operand::Literal(Value::str(&s)),
                    Some((Token::Param(index), _)) => Operand::Param(index),
                    _ => return Err(not_literal(p)),
                },
                _ => return Err(not_literal(p)),
            };
            predicates.push(LiteralPredicate {
                column,
                op,
                operand,
            });
            if !p.accept_keyword("AND") {
                break;
            }
        }
        plan = plan.filter(predicates);
    }

    // Optional STRATEGY / PARALLEL suffixes, in any order. A select
    // without a TP join leaves them unconsumed: they then bind to the
    // enclosing set expression (or fail there, for a plain scan query).
    while contains_join(&plan) {
        if p.accept_keyword("STRATEGY") {
            let keyword_span = p.previous();
            let name_span = p.here();
            let name = p.expect_ident()?;
            let strategy = parse_strategy_name(&name, name_span)?;
            plan = set_strategy(plan, strategy, keyword_span)?;
        } else if p.accept_keyword("PARALLEL") {
            let keyword_span = p.previous();
            let degree = expect_parallel_degree(p)?;
            plan = set_parallelism(plan, degree, keyword_span)?;
        } else {
            break;
        }
    }

    if let Some(cols) = projection {
        plan = plan.project(cols);
    }
    Ok(plan)
}

/// Rewrites the join strategy of the (single) TP join in the plan.
fn set_strategy(
    plan: LogicalPlan,
    strategy: JoinStrategy,
    at: Span,
) -> Result<LogicalPlan, ParseError> {
    Ok(match plan {
        LogicalPlan::TpJoin {
            left,
            right,
            theta,
            kind,
            overlap_plan,
            parallelism,
            ..
        } => LogicalPlan::TpJoin {
            left,
            right,
            theta,
            kind,
            strategy,
            overlap_plan,
            parallelism,
        },
        LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
            input: Box::new(set_strategy(*input, strategy, at)?),
            predicates,
        },
        LogicalPlan::Project { input, columns } => LogicalPlan::Project {
            input: Box::new(set_strategy(*input, strategy, at)?),
            columns,
        },
        // The set operations are defined on the NJ window machinery; the
        // TA baseline has no set-operation counterpart to select.
        LogicalPlan::SetOp { .. } => {
            return Err(ParseError::new(
                "STRATEGY cannot apply to a set operation (UNION/INTERSECT/EXCEPT always \
                 run on the NJ window machinery); put the suffix inside a joining SELECT",
            )
            .at(at)
            .with_token("STRATEGY"))
        }
        LogicalPlan::Scan { .. }
        | LogicalPlan::SaveSnapshot { .. }
        | LogicalPlan::LoadSnapshot { .. } => {
            return Err(ParseError::new("STRATEGY requires a TP join in the query")
                .at(at)
                .with_token("STRATEGY"))
        }
    })
}

/// Pins the degree of parallelism of the TP join — or set-operation — node
/// the suffix binds to.
fn set_parallelism(plan: LogicalPlan, degree: usize, at: Span) -> Result<LogicalPlan, ParseError> {
    Ok(match plan {
        join @ LogicalPlan::TpJoin { .. } => join.with_parallelism(degree),
        // Pin the set-op node only: parallelism of the branches stays
        // whatever their own suffixes (or the session default) chose.
        LogicalPlan::SetOp {
            kind,
            left,
            right,
            overlap_plan,
            ..
        } => LogicalPlan::SetOp {
            kind,
            left,
            right,
            overlap_plan,
            parallelism: Some(degree.max(1)),
        },
        LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
            input: Box::new(set_parallelism(*input, degree, at)?),
            predicates,
        },
        LogicalPlan::Project { input, columns } => LogicalPlan::Project {
            input: Box::new(set_parallelism(*input, degree, at)?),
            columns,
        },
        LogicalPlan::Scan { .. }
        | LogicalPlan::SaveSnapshot { .. }
        | LogicalPlan::LoadSnapshot { .. } => {
            return Err(ParseError::new(
                "PARALLEL requires a TP join or set operation in the query",
            )
            .at(at)
            .with_token("PARALLEL"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let plan = parse_query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc").unwrap();
        match plan {
            LogicalPlan::TpJoin {
                kind,
                strategy,
                theta,
                ..
            } => {
                assert_eq!(kind, TpJoinKind::LeftOuter);
                assert_eq!(strategy, JoinStrategy::Nj);
                assert_eq!(theta.to_string(), "r.Loc = s.Loc");
            }
            other => panic!("expected TpJoin, got {other:?}"),
        }
    }

    #[test]
    fn parses_all_join_kinds() {
        for (kw, kind) in [
            ("INNER", TpJoinKind::Inner),
            ("LEFT", TpJoinKind::LeftOuter),
            ("LEFT OUTER", TpJoinKind::LeftOuter),
            ("RIGHT OUTER", TpJoinKind::RightOuter),
            ("FULL OUTER", TpJoinKind::FullOuter),
            ("ANTI", TpJoinKind::Anti),
        ] {
            let q = format!("SELECT * FROM a TP {kw} JOIN b ON a.Loc = b.Loc");
            match parse_query(&q).unwrap() {
                LogicalPlan::TpJoin { kind: k, .. } => assert_eq!(k, kind, "{kw}"),
                other => panic!("expected TpJoin, got {other:?}"),
            }
        }
    }

    #[test]
    fn parses_strategy_suffix() {
        let plan =
            parse_query("SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc STRATEGY TA").unwrap();
        match plan {
            LogicalPlan::TpJoin { strategy, .. } => assert_eq!(strategy, JoinStrategy::Ta),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn parses_parallel_suffix_in_either_order() {
        for q in [
            "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc PARALLEL 4",
            "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc STRATEGY NJ PARALLEL 4",
            "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc PARALLEL 4 STRATEGY NJ",
        ] {
            match parse_query(q).unwrap() {
                LogicalPlan::TpJoin { parallelism, .. } => {
                    assert_eq!(parallelism, Some(4), "{q}");
                }
                other => panic!("expected TpJoin, got {other:?}"),
            }
        }
    }

    #[test]
    fn parallel_requires_a_join_and_a_positive_integer() {
        assert!(parse_query("SELECT * FROM a PARALLEL 4").is_err());
        assert!(parse_query("SELECT * FROM a WHERE Loc = 'ZAK' PARALLEL 4").is_err());
        for bad in ["PARALLEL 0", "PARALLEL 2.5", "PARALLEL x", "PARALLEL"] {
            let q = format!("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc {bad}");
            assert!(parse_query(&q).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_projection_and_where() {
        let plan = parse_query(
            "SELECT Name, Hotel FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE Name = 'Ann' AND Hotel <> 'hotel2' STRATEGY NJ",
        )
        .unwrap();
        // plan shape: Project(Filter(TpJoin))
        match plan {
            LogicalPlan::Project { columns, input } => {
                assert_eq!(columns, vec!["Name".to_owned(), "Hotel".to_owned()]);
                match *input {
                    LogicalPlan::Filter { predicates, .. } => assert_eq!(predicates.len(), 2),
                    other => panic!("expected Filter, got {other:?}"),
                }
            }
            other => panic!("expected Project, got {other:?}"),
        }
    }

    #[test]
    fn parses_reversed_qualifiers() {
        let plan = parse_query("SELECT * FROM a TP LEFT JOIN b ON b.Loc = a.Loc").unwrap();
        match plan {
            LogicalPlan::TpJoin { theta, .. } => assert_eq!(theta.to_string(), "r.Loc = s.Loc"),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn parses_simple_scan_with_where() {
        let plan = parse_query("SELECT * FROM a WHERE Loc = 'ZAK'").unwrap();
        match plan {
            LogicalPlan::Filter { predicates, input } => {
                assert_eq!(predicates.len(), 1);
                assert_eq!(*input, LogicalPlan::scan("a"));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn numeric_literals_are_typed() {
        let plan = parse_query("SELECT * FROM a WHERE Key = 5 AND P < 0.5").unwrap();
        match plan {
            LogicalPlan::Filter { predicates, .. } => {
                assert_eq!(predicates[0].operand, Operand::Literal(Value::Int(5)));
                assert_eq!(predicates[1].operand, Operand::Literal(Value::Float(0.5)));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn parses_parameter_placeholders() {
        let plan = parse_query("SELECT * FROM a WHERE Loc = $1 AND Key >= $2").unwrap();
        match plan {
            LogicalPlan::Filter { predicates, .. } => {
                assert_eq!(predicates[0].operand, Operand::Param(1));
                assert_eq!(predicates[1].operand, Operand::Param(2));
            }
            other => panic!("unexpected plan {other:?}"),
        }
        assert_eq!(
            parse_query("SELECT * FROM a WHERE Loc = $1 AND Key >= $2")
                .unwrap()
                .parameter_count(),
            2
        );
    }

    #[test]
    fn bad_placeholders_are_rejected_with_spans() {
        let err = parse_query("SELECT * FROM a WHERE Loc = $0").unwrap_err();
        assert!(err.message.contains("1-based"), "{err}");
        assert_eq!(err.token.as_deref(), Some("$0"));
        let err = parse_query("SELECT * FROM a WHERE Loc = $").unwrap_err();
        assert!(err.message.contains("$1"), "{err}");
        // placeholders are not allowed outside the WHERE clause
        assert!(parse_query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = $1").is_err());
    }

    #[test]
    fn errors_carry_byte_spans_and_offending_tokens() {
        // 'FORM' starts at byte 9 of the input.
        let err = parse_query("SELECT * FORM a").unwrap_err();
        assert_eq!((err.span.start, err.span.end), (9, 13));
        assert_eq!(err.token.as_deref(), Some("FORM"));
        assert!(err.message.contains("expected FROM"), "{err}");

        // end-of-input errors point one past the last byte and carry no token
        let input = "SELECT * FROM a WHERE Loc = ";
        let err = parse_query(input).unwrap_err();
        assert_eq!(err.span, Span::empty(input.len()));
        assert!(err.token.is_none());
        assert!(err.message.contains("end of input"), "{err}");

        // trailing garbage names the first trailing token
        let err = parse_query("SELECT * FROM a extra tokens").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("extra"));
        assert_eq!(err.span.start, 16);
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("FROM a").is_err());
        assert!(parse_query("SELECT * FROM").is_err());
        assert!(parse_query("SELECT * FROM a TP SIDEWAYS JOIN b ON a.x = b.x").is_err());
        assert!(parse_query("SELECT * FROM a TP LEFT JOIN b ON Loc = Loc").is_err());
        assert!(parse_query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = c.Loc").is_err());
        assert!(parse_query("SELECT * FROM a WHERE Loc = 'unterminated").is_err());
        assert!(parse_query("SELECT * FROM a STRATEGY TA").is_err());
        assert!(
            parse_query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY PG").is_err()
        );
        assert!(parse_query("SELECT * FROM a extra tokens here").is_err());
    }

    #[test]
    fn parses_set_operations_left_associatively() {
        let plan =
            parse_query("SELECT * FROM a UNION SELECT * FROM b EXCEPT SELECT * FROM c").unwrap();
        match plan {
            LogicalPlan::SetOp {
                kind, left, right, ..
            } => {
                assert_eq!(kind, TpSetOpKind::Difference);
                assert_eq!(*right, LogicalPlan::scan("c"));
                match *left {
                    LogicalPlan::SetOp { kind, .. } => assert_eq!(kind, TpSetOpKind::Union),
                    other => panic!("expected nested SetOp, got {other:?}"),
                }
            }
            other => panic!("expected SetOp, got {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_set_operation_grouping() {
        let plan =
            parse_query("SELECT * FROM a UNION (SELECT * FROM b EXCEPT SELECT * FROM c)").unwrap();
        match plan {
            LogicalPlan::SetOp {
                kind, left, right, ..
            } => {
                assert_eq!(kind, TpSetOpKind::Union);
                assert_eq!(*left, LogicalPlan::scan("a"));
                match *right {
                    LogicalPlan::SetOp { kind, .. } => {
                        assert_eq!(kind, TpSetOpKind::Difference);
                    }
                    other => panic!("expected nested SetOp, got {other:?}"),
                }
            }
            other => panic!("expected SetOp, got {other:?}"),
        }
        // a fully parenthesized plain select is still a plain select
        assert_eq!(
            parse_query("(SELECT * FROM a)").unwrap(),
            LogicalPlan::scan("a")
        );
    }

    #[test]
    fn set_operations_compose_with_where_parameters_and_projection() {
        let plan =
            parse_query("SELECT k FROM a WHERE k >= $1 INTERSECT SELECT k FROM b WHERE k >= $1")
                .unwrap();
        assert_eq!(plan.parameter_count(), 1);
        match plan {
            LogicalPlan::SetOp {
                kind, left, right, ..
            } => {
                assert_eq!(kind, TpSetOpKind::Intersection);
                assert!(matches!(*left, LogicalPlan::Project { .. }));
                assert!(matches!(*right, LogicalPlan::Project { .. }));
            }
            other => panic!("expected SetOp, got {other:?}"),
        }
    }

    #[test]
    fn trailing_parallel_binds_to_the_set_operation() {
        let plan = parse_query("SELECT * FROM a UNION SELECT * FROM b PARALLEL 2").unwrap();
        match plan {
            LogicalPlan::SetOp {
                parallelism,
                left,
                right,
                ..
            } => {
                assert_eq!(parallelism, Some(2));
                assert_eq!(*left, LogicalPlan::scan("a"));
                assert_eq!(*right, LogicalPlan::scan("b"));
            }
            other => panic!("expected SetOp, got {other:?}"),
        }
        // ... but a branch with a TP join consumes its own suffix first
        let plan = parse_query(
            "SELECT * FROM a UNION SELECT * FROM b TP ANTI JOIN c ON b.k = c.k PARALLEL 3",
        )
        .unwrap();
        match plan {
            LogicalPlan::SetOp {
                parallelism, right, ..
            } => {
                assert_eq!(parallelism, None);
                match *right {
                    LogicalPlan::TpJoin { parallelism, .. } => assert_eq!(parallelism, Some(3)),
                    other => panic!("expected TpJoin, got {other:?}"),
                }
            }
            other => panic!("expected SetOp, got {other:?}"),
        }
    }

    #[test]
    fn strategy_on_a_set_operation_is_rejected() {
        let err = parse_query("SELECT * FROM a UNION SELECT * FROM b STRATEGY TA").unwrap_err();
        assert!(err.message.contains("set operation"), "{err}");
        assert_eq!(err.token.as_deref(), Some("STRATEGY"));
    }

    #[test]
    fn set_operation_error_cases() {
        // unterminated parenthesis
        assert!(parse_query("(SELECT * FROM a UNION SELECT * FROM b").is_err());
        // missing right-hand term
        assert!(parse_query("SELECT * FROM a UNION").is_err());
        // a set op keyword alone is not a term
        assert!(parse_query("UNION SELECT * FROM a").is_err());
        // trailing garbage after a parenthesized expression
        assert!(parse_query("(SELECT * FROM a) extra").is_err());
    }

    #[test]
    fn unexpected_characters_are_reported() {
        let err = parse_query("SELECT * FROM a WHERE Loc = #").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
        assert_eq!(err.span.start, 28);
    }
}
