//! A small textual query language for TP joins with negation.
//!
//! Grammar (one query per string, case-insensitive keywords):
//!
//! ```text
//! query   := SELECT cols FROM ident [join] [where] [strategy | parallel]*
//! cols    := '*' | ident (',' ident)*
//! join    := TP jkind JOIN ident ON cond (AND cond)*
//! jkind   := INNER | LEFT [OUTER] | RIGHT [OUTER] | FULL [OUTER] | ANTI
//! cond    := ident '.' ident cmp ident '.' ident
//! where   := WHERE pred (AND pred)*
//! pred    := ident cmp literal
//! cmp     := '=' | '<>' | '<' | '<=' | '>' | '>='
//! literal := number | 'string'
//! strategy:= STRATEGY (NJ | TA)
//! parallel:= PARALLEL integer
//! ```
//!
//! Examples: `SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY TA`,
//! `SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc PARALLEL 4`.

use crate::expr::{LiteralPredicate, PredicateOp};
use crate::plan::{JoinStrategy, LogicalPlan};
use std::fmt;
use tpdb_core::{CompareOp, ThetaCondition, TpJoinKind};
use tpdb_storage::Value;

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Star,
    Comma,
    Dot,
    Cmp(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Cmp("=".into()));
                i += 1;
            }
            '<' | '>' => {
                let mut op = c.to_string();
                if i + 1 < chars.len() && (chars[i + 1] == '=' || (c == '<' && chars[i + 1] == '>'))
                {
                    op.push(chars[i + 1]);
                    i += 1;
                }
                tokens.push(Token::Cmp(op));
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(ParseError::new("unterminated string literal"));
                }
                i += 1; // closing quote
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("invalid number: {text}")))?;
                tokens.push(Token::Number(n));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(ParseError::new(format!("unexpected character: {other}"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError::new(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_cmp(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Cmp(op)) => Ok(op),
            other => Err(ParseError::new(format!(
                "expected comparison operator, found {other:?}"
            ))),
        }
    }
}

fn compare_op(op: &str) -> Result<CompareOp, ParseError> {
    Ok(match op {
        "=" => CompareOp::Eq,
        "<>" => CompareOp::Ne,
        "<" => CompareOp::Lt,
        "<=" => CompareOp::Le,
        ">" => CompareOp::Gt,
        ">=" => CompareOp::Ge,
        other => {
            return Err(ParseError::new(format!(
                "unknown comparison operator {other}"
            )))
        }
    })
}

fn predicate_op(op: &str) -> Result<PredicateOp, ParseError> {
    Ok(match op {
        "=" => PredicateOp::Eq,
        "<>" => PredicateOp::Ne,
        "<" => PredicateOp::Lt,
        "<=" => PredicateOp::Le,
        ">" => PredicateOp::Gt,
        ">=" => PredicateOp::Ge,
        other => {
            return Err(ParseError::new(format!(
                "unknown comparison operator {other}"
            )))
        }
    })
}

/// Parses a query string into a logical plan.
pub fn parse_query(input: &str) -> Result<LogicalPlan, ParseError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };

    p.expect_keyword("SELECT")?;
    // projection list
    let mut projection: Option<Vec<String>> = None;
    if matches!(p.peek(), Some(Token::Star)) {
        p.next();
    } else {
        let mut cols = vec![p.expect_ident()?];
        while matches!(p.peek(), Some(Token::Comma)) {
            p.next();
            cols.push(p.expect_ident()?);
        }
        projection = Some(cols);
    }

    p.expect_keyword("FROM")?;
    let left_name = p.expect_ident()?;
    let mut plan = LogicalPlan::scan(&left_name);

    // optional TP join
    if p.accept_keyword("TP") {
        let kind = if p.accept_keyword("INNER") {
            TpJoinKind::Inner
        } else if p.accept_keyword("LEFT") {
            let _ = p.accept_keyword("OUTER");
            TpJoinKind::LeftOuter
        } else if p.accept_keyword("RIGHT") {
            let _ = p.accept_keyword("OUTER");
            TpJoinKind::RightOuter
        } else if p.accept_keyword("FULL") {
            let _ = p.accept_keyword("OUTER");
            TpJoinKind::FullOuter
        } else if p.accept_keyword("ANTI") {
            TpJoinKind::Anti
        } else {
            return Err(ParseError::new(
                "expected INNER, LEFT, RIGHT, FULL or ANTI after TP",
            ));
        };
        p.expect_keyword("JOIN")?;
        let right_name = p.expect_ident()?;
        p.expect_keyword("ON")?;

        let mut theta = ThetaCondition::always();
        loop {
            // qualified column: rel.col
            let q1 = p.expect_ident()?;
            if !matches!(p.next(), Some(Token::Dot)) {
                return Err(ParseError::new(
                    "join condition columns must be qualified (rel.col)",
                ));
            }
            let c1 = p.expect_ident()?;
            let op = compare_op(&p.expect_cmp()?)?;
            let q2 = p.expect_ident()?;
            if !matches!(p.next(), Some(Token::Dot)) {
                return Err(ParseError::new(
                    "join condition columns must be qualified (rel.col)",
                ));
            }
            let c2 = p.expect_ident()?;

            // orient the comparison as left-relation column vs right-relation column
            let (lc, op, rc) = if q1 == left_name && q2 == right_name {
                (c1, op, c2)
            } else if q1 == right_name && q2 == left_name {
                (
                    c2,
                    match op {
                        CompareOp::Lt => CompareOp::Gt,
                        CompareOp::Le => CompareOp::Ge,
                        CompareOp::Gt => CompareOp::Lt,
                        CompareOp::Ge => CompareOp::Le,
                        other => other,
                    },
                    c1,
                )
            } else {
                return Err(ParseError::new(format!(
                    "join condition must reference {left_name} and {right_name}"
                )));
            };
            theta = theta.and_compare(&lc, op, &rc);

            if !p.accept_keyword("AND") {
                break;
            }
        }

        // optional strategy suffix can appear after WHERE too; look ahead later
        plan = plan.tp_join(
            LogicalPlan::scan(&right_name),
            theta,
            kind,
            JoinStrategy::Nj,
        );
    }

    // optional WHERE
    if p.accept_keyword("WHERE") {
        let mut predicates = Vec::new();
        loop {
            let column = p.expect_ident()?;
            let op = predicate_op(&p.expect_cmp()?)?;
            let literal = match p.next() {
                Some(Token::Number(n)) => {
                    if n.fract() == 0.0 {
                        Value::Int(n as i64)
                    } else {
                        Value::Float(n)
                    }
                }
                Some(Token::Str(s)) => Value::str(&s),
                other => {
                    return Err(ParseError::new(format!(
                        "expected literal in WHERE clause, found {other:?}"
                    )))
                }
            };
            predicates.push(LiteralPredicate::new(&column, op, literal));
            if !p.accept_keyword("AND") {
                break;
            }
        }
        plan = plan.filter(predicates);
    }

    // optional STRATEGY / PARALLEL suffixes, in any order
    loop {
        if p.accept_keyword("STRATEGY") {
            let name = p.expect_ident()?;
            let strategy = if name.eq_ignore_ascii_case("NJ") {
                JoinStrategy::Nj
            } else if name.eq_ignore_ascii_case("TA") {
                JoinStrategy::Ta
            } else {
                return Err(ParseError::new(format!("unknown strategy {name}")));
            };
            plan = set_strategy(plan, strategy)?;
        } else if p.accept_keyword("PARALLEL") {
            let degree = match p.next() {
                Some(Token::Number(n)) if n >= 1.0 && n.fract() == 0.0 => n as usize,
                other => {
                    return Err(ParseError::new(format!(
                        "PARALLEL expects a positive integer, found {other:?}"
                    )))
                }
            };
            plan = set_parallelism(plan, degree)?;
        } else {
            break;
        }
    }

    if let Some(cols) = projection {
        plan = plan.project(cols);
    }

    if p.peek().is_some() {
        return Err(ParseError::new(format!(
            "unexpected trailing tokens: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(plan)
}

/// Rewrites the join strategy of the (single) TP join in the plan.
fn set_strategy(plan: LogicalPlan, strategy: JoinStrategy) -> Result<LogicalPlan, ParseError> {
    Ok(match plan {
        LogicalPlan::TpJoin {
            left,
            right,
            theta,
            kind,
            overlap_plan,
            parallelism,
            ..
        } => LogicalPlan::TpJoin {
            left,
            right,
            theta,
            kind,
            strategy,
            overlap_plan,
            parallelism,
        },
        LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
            input: Box::new(set_strategy(*input, strategy)?),
            predicates,
        },
        LogicalPlan::Project { input, columns } => LogicalPlan::Project {
            input: Box::new(set_strategy(*input, strategy)?),
            columns,
        },
        LogicalPlan::Scan { .. } => {
            return Err(ParseError::new("STRATEGY requires a TP join in the query"))
        }
    })
}

/// Pins the degree of parallelism of the (single) TP join in the plan.
fn set_parallelism(plan: LogicalPlan, degree: usize) -> Result<LogicalPlan, ParseError> {
    Ok(match plan {
        join @ LogicalPlan::TpJoin { .. } => join.with_parallelism(degree),
        LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
            input: Box::new(set_parallelism(*input, degree)?),
            predicates,
        },
        LogicalPlan::Project { input, columns } => LogicalPlan::Project {
            input: Box::new(set_parallelism(*input, degree)?),
            columns,
        },
        LogicalPlan::Scan { .. } => {
            return Err(ParseError::new("PARALLEL requires a TP join in the query"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let plan = parse_query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc").unwrap();
        match plan {
            LogicalPlan::TpJoin {
                kind,
                strategy,
                theta,
                ..
            } => {
                assert_eq!(kind, TpJoinKind::LeftOuter);
                assert_eq!(strategy, JoinStrategy::Nj);
                assert_eq!(theta.to_string(), "r.Loc = s.Loc");
            }
            other => panic!("expected TpJoin, got {other:?}"),
        }
    }

    #[test]
    fn parses_all_join_kinds() {
        for (kw, kind) in [
            ("INNER", TpJoinKind::Inner),
            ("LEFT", TpJoinKind::LeftOuter),
            ("LEFT OUTER", TpJoinKind::LeftOuter),
            ("RIGHT OUTER", TpJoinKind::RightOuter),
            ("FULL OUTER", TpJoinKind::FullOuter),
            ("ANTI", TpJoinKind::Anti),
        ] {
            let q = format!("SELECT * FROM a TP {kw} JOIN b ON a.Loc = b.Loc");
            match parse_query(&q).unwrap() {
                LogicalPlan::TpJoin { kind: k, .. } => assert_eq!(k, kind, "{kw}"),
                other => panic!("expected TpJoin, got {other:?}"),
            }
        }
    }

    #[test]
    fn parses_strategy_suffix() {
        let plan =
            parse_query("SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc STRATEGY TA").unwrap();
        match plan {
            LogicalPlan::TpJoin { strategy, .. } => assert_eq!(strategy, JoinStrategy::Ta),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn parses_parallel_suffix_in_either_order() {
        for q in [
            "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc PARALLEL 4",
            "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc STRATEGY NJ PARALLEL 4",
            "SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc PARALLEL 4 STRATEGY NJ",
        ] {
            match parse_query(q).unwrap() {
                LogicalPlan::TpJoin { parallelism, .. } => {
                    assert_eq!(parallelism, Some(4), "{q}");
                }
                other => panic!("expected TpJoin, got {other:?}"),
            }
        }
    }

    #[test]
    fn parallel_requires_a_join_and_a_positive_integer() {
        assert!(parse_query("SELECT * FROM a PARALLEL 4").is_err());
        assert!(parse_query("SELECT * FROM a WHERE Loc = 'ZAK' PARALLEL 4").is_err());
        for bad in ["PARALLEL 0", "PARALLEL 2.5", "PARALLEL x", "PARALLEL"] {
            let q = format!("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc {bad}");
            assert!(parse_query(&q).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_projection_and_where() {
        let plan = parse_query(
            "SELECT Name, Hotel FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE Name = 'Ann' AND Hotel <> 'hotel2' STRATEGY NJ",
        )
        .unwrap();
        // plan shape: Project(Filter(TpJoin))
        match plan {
            LogicalPlan::Project { columns, input } => {
                assert_eq!(columns, vec!["Name".to_owned(), "Hotel".to_owned()]);
                match *input {
                    LogicalPlan::Filter { predicates, .. } => assert_eq!(predicates.len(), 2),
                    other => panic!("expected Filter, got {other:?}"),
                }
            }
            other => panic!("expected Project, got {other:?}"),
        }
    }

    #[test]
    fn parses_reversed_qualifiers() {
        let plan = parse_query("SELECT * FROM a TP LEFT JOIN b ON b.Loc = a.Loc").unwrap();
        match plan {
            LogicalPlan::TpJoin { theta, .. } => assert_eq!(theta.to_string(), "r.Loc = s.Loc"),
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn parses_simple_scan_with_where() {
        let plan = parse_query("SELECT * FROM a WHERE Loc = 'ZAK'").unwrap();
        match plan {
            LogicalPlan::Filter { predicates, input } => {
                assert_eq!(predicates.len(), 1);
                assert_eq!(*input, LogicalPlan::scan("a"));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn numeric_literals_are_typed() {
        let plan = parse_query("SELECT * FROM a WHERE Key = 5 AND P < 0.5").unwrap();
        match plan {
            LogicalPlan::Filter { predicates, .. } => {
                assert_eq!(predicates[0].literal, Value::Int(5));
                assert_eq!(predicates[1].literal, Value::Float(0.5));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("FROM a").is_err());
        assert!(parse_query("SELECT * FROM").is_err());
        assert!(parse_query("SELECT * FROM a TP SIDEWAYS JOIN b ON a.x = b.x").is_err());
        assert!(parse_query("SELECT * FROM a TP LEFT JOIN b ON Loc = Loc").is_err());
        assert!(parse_query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = c.Loc").is_err());
        assert!(parse_query("SELECT * FROM a WHERE Loc = 'unterminated").is_err());
        assert!(parse_query("SELECT * FROM a STRATEGY TA").is_err());
        assert!(
            parse_query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc STRATEGY PG").is_err()
        );
        assert!(parse_query("SELECT * FROM a extra tokens here").is_err());
    }

    #[test]
    fn unexpected_characters_are_reported() {
        let err = parse_query("SELECT * FROM a WHERE Loc = #").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }
}
