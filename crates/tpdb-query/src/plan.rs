//! Logical query plans.

use crate::error::TpdbError;
use crate::expr::LiteralPredicate;
use tpdb_core::{OverlapJoinPlan, ThetaCondition, TpJoinKind, TpSetOpKind};
use tpdb_storage::Value;

/// The join strategy the planner should use for a TP join with negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// The lineage-aware window approach of the paper (overlap join +
    /// LAWAU + LAWAN), executed as a pipelined operator. This is the
    /// default.
    #[default]
    Nj,
    /// The Temporal Alignment baseline (tuple replication + repeated overlap
    /// joins + duplicate-eliminating union).
    Ta,
}

impl std::fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinStrategy::Nj => write!(f, "NJ"),
            JoinStrategy::Ta => write!(f, "TA"),
        }
    }
}

/// A logical query plan over the relations of a catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a stored relation by name.
    Scan {
        /// Relation name in the catalog.
        relation: String,
    },
    /// Keep only the tuples satisfying every predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Conjunction of literal predicates.
        predicates: Vec<LiteralPredicate>,
    },
    /// Project a subset of the fact columns (lineage, interval and
    /// probability are always retained).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Column names to keep, in output order.
        columns: Vec<String>,
    },
    /// A TP join with negation between two sub-plans.
    TpJoin {
        /// Left (positive) input.
        left: Box<LogicalPlan>,
        /// Right (negative) input.
        right: Box<LogicalPlan>,
        /// Join condition on the non-temporal attributes.
        theta: ThetaCondition,
        /// Which TP join to compute.
        kind: TpJoinKind,
        /// Which algorithm to use.
        strategy: JoinStrategy,
        /// Overlap-join plan forced for the NJ strategy (`None` lets the
        /// engine pick: sweep for equi-joins, nested loop otherwise). A
        /// forced plan that cannot execute θ fails at planning time instead
        /// of silently downgrading.
        overlap_plan: Option<OverlapJoinPlan>,
        /// Requested degree of parallelism for the NJ strategy (`None` uses
        /// the engine's configured default — all available cores). The
        /// degree the executor actually uses may be lower: a plan that
        /// cannot shard (nested loop) runs serially, and `EXPLAIN` reports
        /// the effective degree.
        parallelism: Option<usize>,
    },
    /// A TP set operation (`UNION` / `INTERSECT` / `EXCEPT`) between two
    /// union-compatible sub-plans. Lowered onto the all-attribute-equality
    /// TP join machinery: `EXCEPT` is the TP anti join, `INTERSECT` the TP
    /// inner join projected back to the left schema, and `UNION` the
    /// dedicated two-pass window stream.
    SetOp {
        /// Which set operation to compute.
        kind: TpSetOpKind,
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Overlap-join plan forced for the internal all-attribute-equality
        /// machinery (`None` lets the engine pick — sweep, since the
        /// condition is always an equi-join).
        overlap_plan: Option<OverlapJoinPlan>,
        /// Requested degree of parallelism. `INTERSECT`/`EXCEPT` shard like
        /// keyed TP joins; the streaming `UNION` always runs serially and
        /// `EXPLAIN` reports the fallback.
        parallelism: Option<usize>,
    },
    /// `SAVE SNAPSHOT '<path>'` — serialize the whole catalog to a snapshot
    /// file. A utility statement: it reads the catalog instead of scanning
    /// relations, and executes through the session rather than the stream
    /// engine.
    SaveSnapshot {
        /// Target file path.
        path: String,
    },
    /// `LOAD SNAPSHOT '<path>'` — replace the catalog with a snapshot file's
    /// contents (all-or-nothing). A utility statement; it requires exclusive
    /// catalog access and is rejected by the shared-session execution paths.
    LoadSnapshot {
        /// Source file path.
        path: String,
    },
}

impl LogicalPlan {
    /// Convenience constructor for a scan.
    #[must_use]
    pub fn scan(relation: &str) -> Self {
        LogicalPlan::Scan {
            relation: relation.to_owned(),
        }
    }

    /// Wraps the plan in a filter.
    #[must_use]
    pub fn filter(self, predicates: Vec<LiteralPredicate>) -> Self {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicates,
        }
    }

    /// Wraps the plan in a projection.
    #[must_use]
    pub fn project(self, columns: Vec<String>) -> Self {
        LogicalPlan::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Joins this plan (as the positive side) with another plan.
    #[must_use]
    pub fn tp_join(
        self,
        right: LogicalPlan,
        theta: ThetaCondition,
        kind: TpJoinKind,
        strategy: JoinStrategy,
    ) -> Self {
        LogicalPlan::TpJoin {
            left: Box::new(self),
            right: Box::new(right),
            theta,
            kind,
            strategy,
            overlap_plan: None,
            parallelism: None,
        }
    }

    /// Combines this plan (as the left input) with another plan through a
    /// TP set operation.
    #[must_use]
    pub fn set_op(self, kind: TpSetOpKind, right: LogicalPlan) -> Self {
        LogicalPlan::SetOp {
            kind,
            left: Box::new(self),
            right: Box::new(right),
            overlap_plan: None,
            parallelism: None,
        }
    }

    /// Is this a utility statement (`SAVE SNAPSHOT` / `LOAD SNAPSHOT`)?
    /// Utility statements have no streamable physical plan: sessions execute
    /// them against the catalog directly.
    #[must_use]
    pub fn is_utility(&self) -> bool {
        matches!(
            self,
            LogicalPlan::SaveSnapshot { .. } | LogicalPlan::LoadSnapshot { .. }
        )
    }

    /// Forces the overlap-join plan of every TP join in this plan, looking
    /// through filters and projections (ablation and regression studies pin
    /// the physical plan this way).
    #[must_use]
    pub fn with_overlap_plan(self, plan: OverlapJoinPlan) -> Self {
        match self {
            LogicalPlan::TpJoin {
                left,
                right,
                theta,
                kind,
                strategy,
                parallelism,
                ..
            } => LogicalPlan::TpJoin {
                left: Box::new(left.with_overlap_plan(plan)),
                right: Box::new(right.with_overlap_plan(plan)),
                theta,
                kind,
                strategy,
                overlap_plan: Some(plan),
                parallelism,
            },
            LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
                input: Box::new(input.with_overlap_plan(plan)),
                predicates,
            },
            LogicalPlan::Project { input, columns } => LogicalPlan::Project {
                input: Box::new(input.with_overlap_plan(plan)),
                columns,
            },
            LogicalPlan::SetOp {
                kind,
                left,
                right,
                parallelism,
                ..
            } => LogicalPlan::SetOp {
                kind,
                left: Box::new(left.with_overlap_plan(plan)),
                right: Box::new(right.with_overlap_plan(plan)),
                overlap_plan: Some(plan),
                parallelism,
            },
            leaf @ (LogicalPlan::Scan { .. }
            | LogicalPlan::SaveSnapshot { .. }
            | LogicalPlan::LoadSnapshot { .. }) => leaf,
        }
    }

    /// Requests a degree of parallelism for every TP join in this plan,
    /// looking through filters and projections. `1` forces today's serial
    /// pipeline; values above 1 enable partitioned parallel execution for
    /// shardable (keyed) overlap-join plans.
    ///
    /// ```
    /// use tpdb_query::{JoinStrategy, LogicalPlan};
    /// use tpdb_core::{ThetaCondition, TpJoinKind};
    ///
    /// let plan = LogicalPlan::scan("a")
    ///     .tp_join(
    ///         LogicalPlan::scan("b"),
    ///         ThetaCondition::column_equals("Loc", "Loc"),
    ///         TpJoinKind::LeftOuter,
    ///         JoinStrategy::Nj,
    ///     )
    ///     .with_parallelism(4);
    /// assert!(plan.pretty().contains("parallel=4"));
    /// ```
    #[must_use]
    pub fn with_parallelism(self, degree: usize) -> Self {
        match self {
            LogicalPlan::TpJoin {
                left,
                right,
                theta,
                kind,
                strategy,
                overlap_plan,
                ..
            } => LogicalPlan::TpJoin {
                left: Box::new(left.with_parallelism(degree)),
                right: Box::new(right.with_parallelism(degree)),
                theta,
                kind,
                strategy,
                overlap_plan,
                parallelism: Some(degree.max(1)),
            },
            LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
                input: Box::new(input.with_parallelism(degree)),
                predicates,
            },
            LogicalPlan::Project { input, columns } => LogicalPlan::Project {
                input: Box::new(input.with_parallelism(degree)),
                columns,
            },
            LogicalPlan::SetOp {
                kind,
                left,
                right,
                overlap_plan,
                ..
            } => LogicalPlan::SetOp {
                kind,
                left: Box::new(left.with_parallelism(degree)),
                right: Box::new(right.with_parallelism(degree)),
                overlap_plan,
                parallelism: Some(degree.max(1)),
            },
            leaf @ (LogicalPlan::Scan { .. }
            | LogicalPlan::SaveSnapshot { .. }
            | LogicalPlan::LoadSnapshot { .. }) => leaf,
        }
    }

    /// The number of `$n` parameter slots the plan references: the highest
    /// placeholder index, so `WHERE Key = $2` reports 2 slots even when
    /// `$1` is unused (PostgreSQL semantics). Bind exactly this many values
    /// with [`LogicalPlan::bind_parameters`] before execution.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        match self {
            LogicalPlan::Scan { .. }
            | LogicalPlan::SaveSnapshot { .. }
            | LogicalPlan::LoadSnapshot { .. } => 0,
            LogicalPlan::Filter { input, predicates } => predicates
                .iter()
                .filter_map(LiteralPredicate::parameter_index)
                .max()
                .unwrap_or(0)
                .max(input.parameter_count()),
            LogicalPlan::Project { input, .. } => input.parameter_count(),
            LogicalPlan::TpJoin { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                left.parameter_count().max(right.parameter_count())
            }
        }
    }

    /// Returns a copy of the plan with every `$n` placeholder replaced by
    /// `params[n-1]`.
    ///
    /// # Errors
    ///
    /// [`TpdbError::ParameterCount`] when `params.len()` differs from
    /// [`parameter_count`](Self::parameter_count) — executing a prepared
    /// statement requires binding exactly one value per slot.
    pub fn bind_parameters(&self, params: &[Value]) -> Result<LogicalPlan, TpdbError> {
        let expected = self.parameter_count();
        if params.len() != expected {
            return Err(TpdbError::ParameterCount {
                expected,
                got: params.len(),
            });
        }
        self.substitute(params)
    }

    /// Recursively substitutes placeholders (count already validated).
    fn substitute(&self, params: &[Value]) -> Result<LogicalPlan, TpdbError> {
        Ok(match self {
            leaf @ (LogicalPlan::Scan { .. }
            | LogicalPlan::SaveSnapshot { .. }
            | LogicalPlan::LoadSnapshot { .. }) => leaf.clone(),
            LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
                input: Box::new(input.substitute(params)?),
                predicates: predicates
                    .iter()
                    .map(|p| p.with_params(params))
                    .collect::<Result<Vec<_>, _>>()?,
            },
            LogicalPlan::Project { input, columns } => LogicalPlan::Project {
                input: Box::new(input.substitute(params)?),
                columns: columns.clone(),
            },
            LogicalPlan::TpJoin {
                left,
                right,
                theta,
                kind,
                strategy,
                overlap_plan,
                parallelism,
            } => LogicalPlan::TpJoin {
                left: Box::new(left.substitute(params)?),
                right: Box::new(right.substitute(params)?),
                theta: theta.clone(),
                kind: *kind,
                strategy: *strategy,
                overlap_plan: *overlap_plan,
                parallelism: *parallelism,
            },
            LogicalPlan::SetOp {
                kind,
                left,
                right,
                overlap_plan,
                parallelism,
            } => LogicalPlan::SetOp {
                kind: *kind,
                left: Box::new(left.substitute(params)?),
                right: Box::new(right.substitute(params)?),
                overlap_plan: *overlap_plan,
                parallelism: *parallelism,
            },
        })
    }

    /// Renders the plan as an indented tree (similar to `EXPLAIN`). Filter
    /// predicates are printed in query syntax, with unbound parameters as
    /// their `$n` slots and bound parameters as the bound values.
    #[must_use]
    pub fn pretty(&self) -> String {
        fn go(plan: &LogicalPlan, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match plan {
                LogicalPlan::Scan { relation } => {
                    out.push_str(&format!("{pad}Scan {relation}\n"));
                }
                LogicalPlan::Filter { input, predicates } => {
                    let rendered: Vec<String> =
                        predicates.iter().map(ToString::to_string).collect();
                    out.push_str(&format!("{pad}Filter ({})\n", rendered.join(" AND ")));
                    go(input, indent + 1, out);
                }
                LogicalPlan::Project { input, columns } => {
                    out.push_str(&format!("{pad}Project [{}]\n", columns.join(", ")));
                    go(input, indent + 1, out);
                }
                LogicalPlan::TpJoin {
                    left,
                    right,
                    theta,
                    kind,
                    strategy,
                    overlap_plan,
                    parallelism,
                } => {
                    let plan_note = match overlap_plan {
                        Some(p) => format!(" plan={p}"),
                        None => String::new(),
                    };
                    let par_note = match parallelism {
                        Some(p) => format!(" parallel={p}"),
                        None => String::new(),
                    };
                    out.push_str(&format!(
                        "{pad}TpJoin {} ({theta}) strategy={strategy}{plan_note}{par_note}\n",
                        kind.symbol()
                    ));
                    go(left, indent + 1, out);
                    go(right, indent + 1, out);
                }
                LogicalPlan::SetOp {
                    kind,
                    left,
                    right,
                    overlap_plan,
                    parallelism,
                } => {
                    let plan_note = match overlap_plan {
                        Some(p) => format!(" plan={p}"),
                        None => String::new(),
                    };
                    let par_note = match parallelism {
                        Some(p) => format!(" parallel={p}"),
                        None => String::new(),
                    };
                    out.push_str(&format!(
                        "{pad}SetOp {kind} ({}){plan_note}{par_note}\n",
                        kind.symbol()
                    ));
                    go(left, indent + 1, out);
                    go(right, indent + 1, out);
                }
                LogicalPlan::SaveSnapshot { path } => {
                    out.push_str(&format!("{pad}SaveSnapshot '{path}'\n"));
                }
                LogicalPlan::LoadSnapshot { path } => {
                    out.push_str(&format!("{pad}LoadSnapshot '{path}'\n"));
                }
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::PredicateOp;
    use tpdb_storage::Value;

    #[test]
    fn builders_compose() {
        let plan = LogicalPlan::scan("a")
            .filter(vec![LiteralPredicate::new(
                "Loc",
                PredicateOp::Eq,
                Value::str("ZAK"),
            )])
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .project(vec!["Name".to_owned(), "Hotel".to_owned()]);
        let text = plan.pretty();
        assert!(text.contains("Project [Name, Hotel]"));
        assert!(text.contains("TpJoin ⟕"));
        assert!(text.contains("strategy=NJ"));
        assert!(text.contains("Scan a"));
        assert!(text.contains("Scan b"));
    }

    #[test]
    fn default_strategy_is_nj() {
        assert_eq!(JoinStrategy::default(), JoinStrategy::Nj);
        assert_eq!(JoinStrategy::Ta.to_string(), "TA");
    }

    #[test]
    fn with_parallelism_reaches_joins_and_clamps_to_one() {
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .filter(vec![])
            .project(vec!["Name".to_owned()])
            .with_parallelism(4);
        assert!(plan.pretty().contains("parallel=4"), "{}", plan.pretty());
        let clamped = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .with_parallelism(0);
        assert!(clamped.pretty().contains("parallel=1"));
    }

    #[test]
    fn parameter_slots_are_counted_and_bound() {
        let plan = LogicalPlan::scan("a").filter(vec![
            LiteralPredicate::param("Loc", PredicateOp::Eq, 1),
            LiteralPredicate::param("Key", PredicateOp::Ge, 2),
        ]);
        assert_eq!(plan.parameter_count(), 2);
        assert!(plan.pretty().contains("Filter (Loc = $1 AND Key >= $2)"));

        let bound = plan
            .bind_parameters(&[Value::str("ZAK"), Value::Int(3)])
            .unwrap();
        assert_eq!(bound.parameter_count(), 0);
        assert!(bound.pretty().contains("Filter (Loc = 'ZAK' AND Key >= 3)"));

        // exact arity is required, in both directions
        assert!(matches!(
            plan.bind_parameters(&[Value::Int(1)]),
            Err(TpdbError::ParameterCount {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            bound.bind_parameters(&[Value::Int(1)]),
            Err(TpdbError::ParameterCount {
                expected: 0,
                got: 1
            })
        ));
    }

    #[test]
    fn highest_slot_index_counts_even_when_lower_slots_are_unused() {
        let plan =
            LogicalPlan::scan("a").filter(vec![LiteralPredicate::param("Key", PredicateOp::Eq, 2)]);
        assert_eq!(plan.parameter_count(), 2);
        let bound = plan
            .bind_parameters(&[Value::Int(0), Value::Int(7)])
            .unwrap();
        assert!(bound.pretty().contains("Key = 7"), "{}", bound.pretty());
    }

    #[test]
    fn set_op_builders_print_count_and_bind() {
        let plan = LogicalPlan::scan("a")
            .filter(vec![LiteralPredicate::param("k", PredicateOp::Ge, 1)])
            .set_op(
                TpSetOpKind::Union,
                LogicalPlan::scan("b").filter(vec![LiteralPredicate::param(
                    "k",
                    PredicateOp::Ge,
                    1,
                )]),
            );
        assert_eq!(plan.parameter_count(), 1);
        let text = plan.pretty();
        assert!(text.contains("SetOp UNION (∪)"), "{text}");
        assert!(text.contains("Scan a"));
        assert!(text.contains("Scan b"));
        let bound = plan.bind_parameters(&[Value::Int(3)]).unwrap();
        assert_eq!(bound.parameter_count(), 0);
        assert!(bound.pretty().contains("k >= 3"), "{}", bound.pretty());
        // parallelism and forced plans reach the set op node
        let tuned = bound
            .with_parallelism(4)
            .with_overlap_plan(OverlapJoinPlan::Hash);
        let text = tuned.pretty();
        assert!(
            text.contains("SetOp UNION (∪) plan=hash parallel=4"),
            "{text}"
        );
    }

    #[test]
    fn with_overlap_plan_reaches_joins_under_filters_and_projections() {
        let plan = LogicalPlan::scan("a")
            .tp_join(
                LogicalPlan::scan("b"),
                ThetaCondition::column_equals("Loc", "Loc"),
                TpJoinKind::LeftOuter,
                JoinStrategy::Nj,
            )
            .filter(vec![])
            .project(vec!["Name".to_owned()])
            .with_overlap_plan(OverlapJoinPlan::Sweep);
        assert!(plan.pretty().contains("plan=sweep"), "{}", plan.pretty());
    }
}
