//! # tpdb-query
//!
//! A pipelined (Volcano-style) query engine for TP relations: logical
//! plans, physical operators, a rule-based planner and a small textual
//! query language. This crate stands in for the PostgreSQL integration of
//! the paper (parser / optimizer / executor modifications): both the NJ
//! window approach and the Temporal Alignment baseline are exposed as join
//! *strategies* that the planner can pick, and the NJ join is executed as a
//! fully pipelined operator built on the streaming window adaptors of
//! `tpdb-core`.
//!
//! The public entry point is the [`Session`], which implements the
//! standard database front-end contract:
//!
//! * **prepare once** — [`Session::prepare`] parses and validates a
//!   statement a single time, caching the plan (keyed by normalized query
//!   text and the catalog's schema epoch);
//! * **bind many** — the resulting [`PreparedQuery`] executes repeatedly
//!   with different `$1..$n` parameter bindings;
//! * **stream results** — [`Session::query`] / [`PreparedQuery::query`]
//!   open a [`ResultCursor`] that yields tuples as they leave the
//!   streaming window pipeline instead of materializing the result.
//!
//! Every API returns the unified [`TpdbError`]; parse errors carry byte
//! spans and the offending token. The pre-session [`QueryEngine`] remains
//! as a deprecated shim.
//!
//! ## Example
//!
//! ```
//! use tpdb_query::Session;
//! use tpdb_storage::{Catalog, Value};
//!
//! let mut catalog = Catalog::new();
//! let (a, b) = tpdb_datagen::booking_example();
//! catalog.register(a).unwrap();
//! catalog.register(b).unwrap();
//!
//! let session = Session::new(catalog);
//!
//! // Prepare once, bind many.
//! let stmt = session
//!     .prepare("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc WHERE Name = $1")
//!     .unwrap();
//! assert_eq!(stmt.execute(&[Value::str("Ann")]).unwrap().len(), 6);
//!
//! // Stream instead of materializing.
//! let mut cursor = session
//!     .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
//!     .unwrap();
//! assert!(cursor.next().unwrap().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cursor;
mod engine;
mod error;
mod exec;
mod expr;
mod parser;
mod plan;
mod planner;
mod session;
mod shared_cache;

pub use cursor::ResultCursor;
#[allow(deprecated)]
pub use engine::QueryEngine;
pub use error::{ParseError, Span, TpdbError};
pub use exec::{execute_plan, execute_plan_with, PhysicalOperator};
pub use expr::{LiteralPredicate, Operand, PredicateOp};
pub use parser::parse_query;
pub use plan::{JoinStrategy, LogicalPlan};
pub use planner::{explain, explain_with, plan_query, plan_query_with, QueryOptions};
pub use session::{snapshot_summary, PreparedQuery, Session, SessionStats};
pub use shared_cache::{
    normalize_text, prepare_plan, PreparedPlan, ShardedPlanCache, SharedCacheStats,
};
pub use tpdb_core::TpSetOpKind;

/// The former name of [`TpdbError`].
#[deprecated(since = "0.2.0", note = "renamed to `TpdbError`")]
pub type QueryError = TpdbError;
