//! # tpdb-query
//!
//! A pipelined (Volcano-style) query engine for TP relations: logical plans,
//! physical operators, a rule-based planner and a small textual query
//! language. This crate stands in for the PostgreSQL integration of the
//! paper (parser / optimizer / executor modifications): both the NJ window
//! approach and the Temporal Alignment baseline are exposed as join
//! *strategies* that the planner can pick, and the NJ join is executed as a
//! fully pipelined operator built on the streaming window adaptors of
//! `tpdb-core`.
//!
//! ## Example
//!
//! ```
//! use tpdb_query::QueryEngine;
//! use tpdb_storage::Catalog;
//!
//! let mut catalog = Catalog::new();
//! let (a, b) = tpdb_datagen::booking_example();
//! catalog.register(a).unwrap();
//! catalog.register(b).unwrap();
//!
//! let engine = QueryEngine::new(catalog);
//! let result = engine
//!     .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
//!     .unwrap();
//! assert_eq!(result.len(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod exec;
mod expr;
mod parser;
mod plan;
mod planner;

pub use engine::QueryEngine;
pub use exec::{execute_plan, execute_plan_with, PhysicalOperator};
pub use expr::{LiteralPredicate, PredicateOp};
pub use parser::{parse_query, ParseError};
pub use plan::{JoinStrategy, LogicalPlan};
pub use planner::{explain, explain_with, plan_query, plan_query_with, QueryOptions};

/// Errors surfaced by the query layer.
#[derive(Debug)]
pub enum QueryError {
    /// The query text could not be parsed.
    Parse(ParseError),
    /// A catalog or schema error occurred while planning or executing.
    Storage(tpdb_storage::StorageError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<tpdb_storage::StorageError> for QueryError {
    fn from(e: tpdb_storage::StorageError) -> Self {
        QueryError::Storage(e)
    }
}
