//! The experiment driver regenerating the figures of the paper's evaluation
//! section (Section IV) as result tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tpdb-bench --bin experiments            # all figures, default scale
//! cargo run --release -p tpdb-bench --bin experiments -- fig5    # only Fig. 5
//! cargo run --release -p tpdb-bench --bin experiments -- fig7 --full   # paper-scale cardinalities
//! cargo run --release -p tpdb-bench --bin experiments -- ablation
//! cargo run --release -p tpdb-bench --bin experiments -- fig5 --smoke --json --check-nj-wuo
//! cargo run --release -p tpdb-bench --bin experiments -- scaling --json --threads 1,2,4,8
//! cargo run --release -p tpdb-bench --bin experiments -- scaling --smoke --json --threads 1,2,4 --check-scaling
//! cargo run --release -p tpdb-bench --bin experiments -- check-baselines
//! cargo run --release -p tpdb-bench --bin experiments -- prepared --json
//! cargo run --release -p tpdb-bench --bin experiments -- setops --smoke --json --check-union-streaming
//! cargo run --release -p tpdb-bench --bin experiments -- ratio --smoke --json --check-query-overhead
//! cargo run --release -p tpdb-bench --bin experiments -- snapshot --smoke --json --check-load-speedup
//! cargo run --release -p tpdb-bench --bin experiments -- throughput --smoke --json --check-throughput
//! ```
//!
//! Default cardinalities are scaled down from the paper's 40K–200K so that
//! the whole sweep finishes in a few minutes on a laptop; `--full` switches
//! to the paper's sizes (expect the TA series of Fig. 7 to run for a long
//! time — the nested-loop degradation is the point of that figure), and
//! `--smoke` to the reduced CI scale.
//!
//! * `--json` writes each figure's measurements to `BENCH_<figure>.json` in
//!   the current directory (the perf-trajectory format).
//! * `--check-nj-wuo` exits non-zero when the NJ series of Fig. 5 is slower
//!   than the TA series on the meteo workload at the largest measured scale
//!   — the CI regression guard for the LAWAU hot path.
//! * `--check-union-streaming` exits non-zero when the streamed TP union of
//!   the `setops` figure is slower than the pre-streaming materializing
//!   reference (beyond a 10% noise margin) at the largest measured scale —
//!   the CI regression guard for the set-operation streaming path.
//! * `--check-query-overhead` exits non-zero when the session-executed TP
//!   left outer join of the `ratio` figure is more than 1.2× slower than
//!   the core function on the meteo workload at the largest measured scale
//!   — the CI regression guard for query-layer overhead. Unlike the
//!   `prepared` figure (whose join series is a TP anti join), both sides of
//!   `ratio` run the *same* join kind serially, so the comparison is
//!   apples-to-apples.
//! * `--check-load-speedup` exits non-zero when the ingest overhead of
//!   loading the binary snapshot of the meteo workload — wall-clock net of
//!   the in-memory construction floor measured by the `datagen` series —
//!   is less than 10× smaller than the overhead of importing the same data
//!   as CSV text, at the largest scale of the `snapshot` figure (recorded
//!   as `BENCH_load.json`). The CI regression guard for the read path.
//! * `--check-throughput` exits non-zero when the `throughput` figure's
//!   concurrent server run underperforms its expectation for the host: on a
//!   machine with ≥ 4 cores, 4 concurrent clients must reach at least 2× the
//!   1-client qps; on smaller hosts (where the curve is flat by
//!   construction) the 4-client qps must stay within 0.8× of the serial
//!   in-process baseline — i.e. the server front-end may cost at most 20%.
//!   The recorded `machine-cores` series says which branch was asserted.
//! * `--check-scaling` exits non-zero when the `scaling` figure's
//!   work-stealing parallel NJ underperforms its expectation for the host:
//!   on a machine with ≥ 4 cores, `NJ-P4` must be at least 2× faster than
//!   the serial `NJ-P1`; on smaller hosts (where the speedup curve is flat
//!   by construction) `NJ-P4` may cost at most 15% over `NJ-P1` — the
//!   morsel scheduler's overhead bound. The recorded `machine-cores` series
//!   says which branch was asserted.
//! * `--threads 1,2,4` selects the worker counts of the `scaling` figure
//!   (morsel work-stealing parallel NJ on the meteo WUO workload; implies
//!   `scaling`) and prints/records speedups against the serial `NJ-P1`
//!   baseline. Speedup is bounded by the machine — on a single-core host
//!   the curve is flat by construction.
//! * `check-baselines` (a subcommand, not a flag) compares the
//!   freshly written `BENCH_*_smoke.json` files in the current directory
//!   against the committed copies under `baselines/`: the series sets and
//!   per-series `output` counts must match exactly (the deterministic half
//!   of every figure), while runtimes only need to stay within a generous
//!   50× band (runners differ wildly; a swapped field or a broken series
//!   does not). Run it in CI right after the smoke figures.

use tpdb_bench::{
    header, measurements_to_json, run_nj_left_outer, run_nj_wn, run_nj_wuo, run_nj_wuo_parallel,
    run_nj_wuon, run_prepared_vs_reparse, run_query_core_ratio, run_setops_query_layer,
    run_snapshot_load, run_ta_left_outer, run_ta_negating, run_ta_wuo, run_throughput,
    run_union_materialized, run_union_parallel, run_union_streamed, workload_via_cache, Dataset,
    Measurement, Workload,
};

/// Input cardinalities per figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    /// Reduced sizes for the CI smoke run.
    Smoke,
    /// Laptop-friendly default.
    Default,
    /// The paper's cardinalities.
    Full,
}

struct Config {
    figures: Vec<String>,
    scale: Scale,
    json: bool,
    check_nj_wuo: bool,
    check_union_streaming: bool,
    check_query_overhead: bool,
    check_load_speedup: bool,
    check_throughput: bool,
    check_scaling: bool,
    /// The `check-baselines` subcommand: compare fresh smoke JSONs against
    /// the committed `baselines/` copies instead of running figures.
    check_baselines: bool,
    /// Worker counts of the `scaling` figure.
    threads: Vec<usize>,
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: experiments [fig5] [fig6] [fig7] [ablation] [scaling] [prepared] [setops] \
         [ratio] [snapshot] [throughput] [--full | --smoke] [--json] [--check-nj-wuo] \
         [--check-union-streaming] [--check-query-overhead] [--check-load-speedup] \
         [--check-throughput] [--check-scaling] [--threads 1,2,4]\n\
         \x20      experiments check-baselines"
    );
    std::process::exit(2);
}

fn parse_threads(list: &str) -> Vec<usize> {
    let threads: Vec<usize> = list
        .split(',')
        .map(|t| match t.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--threads expects a comma-separated list of positive integers");
                usage_and_exit();
            }
        })
        .collect();
    if threads.is_empty() {
        usage_and_exit();
    }
    threads
}

fn parse_args() -> Config {
    let mut figures = Vec::new();
    let mut scale = Scale::Default;
    let mut json = false;
    let mut check_nj_wuo = false;
    let mut check_union_streaming = false;
    let mut check_query_overhead = false;
    let mut check_load_speedup = false;
    let mut check_throughput = false;
    let mut check_scaling = false;
    let mut check_baselines = false;
    let mut threads: Option<Vec<usize>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--smoke" => scale = Scale::Smoke,
            "--json" => json = true,
            "--check-nj-wuo" => check_nj_wuo = true,
            "--check-union-streaming" => check_union_streaming = true,
            "--check-query-overhead" => check_query_overhead = true,
            "--check-load-speedup" => check_load_speedup = true,
            "--check-throughput" => check_throughput = true,
            "--check-scaling" => check_scaling = true,
            "check-baselines" => check_baselines = true,
            "--threads" => match args.next() {
                Some(list) => threads = Some(parse_threads(&list)),
                None => {
                    eprintln!("--threads requires an argument (e.g. --threads 1,2,4)");
                    usage_and_exit();
                }
            },
            "fig5" | "fig6" | "fig7" | "ablation" | "scaling" | "prepared" | "setops" | "ratio"
            | "snapshot" | "throughput" => figures.push(arg),
            other => {
                eprintln!("unknown argument: {other}");
                usage_and_exit();
            }
        }
    }
    // --threads (and --check-scaling) imply the scaling figure.
    if (threads.is_some() || check_scaling) && !figures.iter().any(|f| f == "scaling") {
        figures.push("scaling".into());
    }
    if check_baselines {
        if !figures.is_empty() {
            eprintln!("check-baselines is a standalone subcommand; do not combine it with figures");
            std::process::exit(2);
        }
        return Config {
            figures,
            scale,
            json,
            check_nj_wuo,
            check_union_streaming,
            check_query_overhead,
            check_load_speedup,
            check_throughput,
            check_scaling,
            check_baselines,
            threads: threads.unwrap_or_default(),
        };
    }
    if figures.is_empty() {
        figures = vec![
            "fig5".into(),
            "fig6".into(),
            "fig7".into(),
            "ablation".into(),
            "prepared".into(),
            "setops".into(),
            "ratio".into(),
            "snapshot".into(),
            "throughput".into(),
        ];
    }
    // The regression guards only evaluate their own figure's rows; passing
    // a guard without running the figure would silently skip the check.
    if check_nj_wuo && !figures.iter().any(|f| f == "fig5") {
        eprintln!("--check-nj-wuo requires fig5 to be among the figures run");
        std::process::exit(2);
    }
    if check_union_streaming && !figures.iter().any(|f| f == "setops") {
        eprintln!("--check-union-streaming requires setops to be among the figures run");
        std::process::exit(2);
    }
    if check_query_overhead && !figures.iter().any(|f| f == "ratio") {
        eprintln!("--check-query-overhead requires ratio to be among the figures run");
        std::process::exit(2);
    }
    if check_load_speedup && !figures.iter().any(|f| f == "snapshot") {
        eprintln!("--check-load-speedup requires snapshot to be among the figures run");
        std::process::exit(2);
    }
    if check_throughput && !figures.iter().any(|f| f == "throughput") {
        eprintln!("--check-throughput requires throughput to be among the figures run");
        std::process::exit(2);
    }
    let threads = threads.unwrap_or_else(|| vec![1, 2, 4, 8]);
    // NJ-P1 is always measured as the baseline; the guard additionally
    // needs the P=4 point.
    if check_scaling && !threads.contains(&4) {
        eprintln!("--check-scaling requires --threads to include 4 (the asserted worker count)");
        std::process::exit(2);
    }
    Config {
        figures,
        scale,
        json,
        check_nj_wuo,
        check_union_streaming,
        check_query_overhead,
        check_load_speedup,
        check_throughput,
        check_scaling,
        check_baselines,
        threads,
    }
}

/// Workload lookup for the figures: snapshot-cache backed (the first run
/// at a scale pays datagen and saves a binary snapshot under the temp
/// directory; every later figure or run loads it), fixed seed 42.
fn workload(dataset: Dataset, tuples: usize) -> Workload {
    workload_via_cache(dataset, tuples, 42)
}

fn print_series(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    println!("{}", header());
    for row in rows {
        println!("{}", row.row());
    }
}

fn fig5(scale: Scale) -> Vec<Measurement> {
    let sizes: &[usize] = match scale {
        Scale::Full => &[50_000, 100_000, 150_000, 200_000],
        Scale::Default => &[5_000, 10_000, 20_000, 40_000],
        Scale::Smoke => &[2_000, 5_000],
    };
    let mut all = Vec::new();
    for dataset in [Dataset::WebkitLike, Dataset::MeteoLike] {
        let mut rows = Vec::new();
        for &n in sizes {
            let w = workload(dataset, n);
            rows.push(run_nj_wuo(&w));
            rows.push(run_ta_wuo(&w));
        }
        print_series(
            &format!(
                "Fig. 5 ({}) — WUO: overlapping + unmatched windows",
                dataset.label()
            ),
            &rows,
        );
        all.extend(rows);
    }
    all
}

fn fig6(scale: Scale) -> Vec<Measurement> {
    let sizes: &[usize] = match scale {
        Scale::Full => &[40_000, 80_000, 120_000, 160_000, 200_000],
        Scale::Default => &[5_000, 10_000, 20_000, 40_000],
        Scale::Smoke => &[2_000, 5_000],
    };
    let mut all = Vec::new();
    for dataset in [Dataset::WebkitLike, Dataset::MeteoLike] {
        let mut rows = Vec::new();
        for &n in sizes {
            let w = workload(dataset, n);
            rows.push(run_nj_wn(&w));
            rows.push(run_nj_wuon(&w));
            rows.push(run_ta_negating(&w));
        }
        print_series(
            &format!("Fig. 6 ({}) — negating windows", dataset.label()),
            &rows,
        );
        all.extend(rows);
    }
    all
}

fn fig7(scale: Scale) -> Vec<Measurement> {
    // TA's end-to-end plan is nested-loop; keep the default sweep small.
    let sizes: &[usize] = match scale {
        Scale::Full => &[40_000, 80_000, 120_000, 160_000, 200_000],
        Scale::Default => &[1_000, 2_000, 4_000, 8_000],
        Scale::Smoke => &[500, 1_000],
    };
    let mut all = Vec::new();
    for dataset in [Dataset::WebkitLike, Dataset::MeteoLike] {
        let mut rows = Vec::new();
        for &n in sizes {
            let w = workload(dataset, n);
            rows.push(run_nj_left_outer(&w));
            rows.push(run_ta_left_outer(&w));
        }
        print_series(
            &format!("Fig. 7 ({}) — TP left outer join", dataset.label()),
            &rows,
        );
        all.extend(rows);
    }
    all
}

/// The thread-scaling sweep: the Fig. 5 NJ measurement (meteo WUO — the
/// workload of the `--check-nj-wuo` guard) under morsel work-stealing
/// parallel execution, one series point per worker count. `NJ-P1` is the
/// serial baseline; the printed speedup column is `P1 time / Pn time`. A
/// trailing `machine-cores` series records the hardware parallelism
/// (`output`) so a recorded curve can be judged against the machine that
/// produced it — on a single-core host the curve is flat by construction.
fn scaling(scale: Scale, threads: &[usize]) -> Vec<Measurement> {
    let size: usize = match scale {
        Scale::Full => 200_000,
        Scale::Default => 40_000,
        Scale::Smoke => 5_000,
    };
    let w = workload(Dataset::MeteoLike, size);
    let mut rows: Vec<Measurement> = Vec::new();
    // Always measure the serial baseline so speedups are computable even
    // when the requested list omits 1.
    let baseline = run_nj_wuo_parallel(&w, 1);
    let base_ms = baseline.millis;
    rows.push(baseline);
    for &p in threads.iter().filter(|&&p| p != 1) {
        rows.push(run_nj_wuo_parallel(&w, p));
    }
    println!(
        "\n== Scaling — morsel work-stealing parallel NJ (meteo WUO, {size} tuples, \
         {} hardware threads) ==",
        tpdb_core::default_parallelism()
    );
    println!("{}   {:>8}", header(), "speedup");
    for row in &rows {
        println!("{}   {:>7.2}x", row.row(), base_ms / row.millis);
    }
    rows.push(Measurement {
        series: "machine-cores".to_owned(),
        dataset: "meteo".to_owned(),
        tuples: size,
        millis: 0.0,
        output: tpdb_core::default_parallelism(),
    });
    rows
}

/// The scaling regression guard: the P=4 work-stealing run must match the
/// host's expectation. On a ≥ 4-core machine the morsel scheduler must
/// actually scale — `NJ-P4` at least 2× faster than the serial `NJ-P1`
/// (ROADMAP targets ≥ 3×; the guard leaves headroom for shared runners).
/// On a smaller host every worker shares the core and the curve is flat by
/// construction, so the assertion degrades to an overhead bound: stealing
/// may cost at most 15% over serial.
fn check_scaling(rows: &[Measurement]) {
    let cores = rows
        .iter()
        .find(|m| m.series == "machine-cores")
        .map_or(1, |m| m.output);
    let tuples = rows.iter().map(|m| m.tuples).max().unwrap_or(0);
    let ms =
        |rows: &[Measurement], name: &str| rows.iter().find(|m| m.series == name).map(|m| m.millis);
    let (Some(mut t1), Some(mut t4)) = (ms(rows, "NJ-P1"), ms(rows, "NJ-P4")) else {
        eprintln!("--check-scaling: NJ-P1/NJ-P4 series missing");
        std::process::exit(1);
    };
    let holds = |t1: f64, t4: f64| {
        if cores >= 4 {
            t1 >= 2.0 * t4
        } else {
            t4 <= 1.15 * t1
        }
    };
    // Wall-clock comparisons on shared CI runners are noisy; before
    // declaring a regression, re-measure the pair up to twice, keeping the
    // minimum (least-noise) sample of each series.
    for attempt in 1..=2 {
        if holds(t1, t4) {
            break;
        }
        eprintln!(
            "scaling below expectation (P1 {t1:.2} ms, P4 {t4:.2} ms, {cores} cores); \
             re-measuring (attempt {attempt}/2, noisy runner?)"
        );
        let w = workload(Dataset::MeteoLike, tuples);
        t1 = t1.min(run_nj_wuo_parallel(&w, 1).millis);
        t4 = t4.min(run_nj_wuo_parallel(&w, 4).millis);
    }
    println!(
        "\nscaling guard (meteo WUO, {tuples} tuples, {cores} cores): P1 {t1:.2} ms, \
         P4 {t4:.2} ms ({:.2}x) — asserting {}",
        t1 / t4,
        if cores >= 4 {
            "P4 >= 2x P1 (multi-core scaling)"
        } else {
            "P4 <= 1.15x P1 (single-core stealing overhead bound)"
        }
    );
    if !holds(t1, t4) {
        if cores >= 4 {
            eprintln!(
                "REGRESSION: the P=4 work-stealing run ({t4:.2} ms) is less than 2x faster \
                 than serial ({t1:.2} ms) on a {cores}-core host"
            );
        } else {
            eprintln!(
                "REGRESSION: the P=4 work-stealing run ({t4:.2} ms) costs more than 15% over \
                 serial ({t1:.2} ms) on a {cores}-core host"
            );
        }
        std::process::exit(1);
    }
}

/// The session front-end sweep: prepared-vs-reparse latency on the meteo
/// WUO workload (the TP anti join whose answer is the unmatched/negating
/// window mass of Fig. 5) plus a cheap parameterized scan where the
/// parse + validate share dominates. `runtime_ms` is the mean per
/// execution over the iteration count.
fn prepared(scale: Scale) -> Vec<Measurement> {
    let (sizes, iterations): (&[usize], usize) = match scale {
        Scale::Full => (&[40_000], 5),
        Scale::Default => (&[5_000, 20_000], 7),
        Scale::Smoke => (&[2_000], 3),
    };
    let mut all = Vec::new();
    for &n in sizes {
        let w = workload(Dataset::MeteoLike, n);
        let rows = run_prepared_vs_reparse(&w, iterations);
        print_series(
            &format!("Prepared vs. reparse (meteo, {n} tuples, mean of {iterations} executions)"),
            &rows,
        );
        all.extend(rows);
    }
    all
}

/// The set-operation figure: union/intersect/except on the meteo workload.
/// `union-stream` is the lazy [`tpdb_core::TpSetOpStream`] path (what
/// [`tpdb_core::tp_union`] and the query layer run); `union-mat` is the
/// pre-streaming materializing reference; `union-steal-P<n>` is the
/// morsel work-stealing union at degree n (P1 takes the serial path, so
/// the P1/P4 pair is the stealing overhead/speedup); the `*-query` series
/// measure the three operations end-to-end through the session front-end.
fn setops(scale: Scale) -> Vec<Measurement> {
    let sizes: &[usize] = match scale {
        Scale::Full => &[40_000],
        Scale::Default => &[5_000, 20_000],
        Scale::Smoke => &[2_000],
    };
    let mut all = Vec::new();
    for &n in sizes {
        let w = workload(Dataset::MeteoLike, n);
        // Untimed warmup: the first run over a fresh workload pays the
        // cold-cache cost, which would otherwise bias whichever series is
        // measured first.
        let _ = run_union_materialized(&w);
        let mut rows = vec![run_union_streamed(&w), run_union_materialized(&w)];
        for threads in [1, 2, 4] {
            rows.push(run_union_parallel(&w, threads));
        }
        rows.extend(run_setops_query_layer(&w));
        print_series(
            &format!("Set operations (meteo, {n} tuples) — streamed vs. materializing union"),
            &rows,
        );
        all.extend(rows);
    }
    all
}

/// The query-overhead figure: the same TP left outer join measured as the
/// core [`tpdb_core::tp_left_outer_join`] function and end-to-end through a
/// prepared, serial session statement. Both series run the identical join
/// kind and pipeline, so their ratio is pure query-layer overhead — unlike
/// the `prepared` figure, whose join series is a TP anti join and therefore
/// not comparable to Fig. 7. Meteo only, the workload of the other
/// regression guards.
fn ratio(scale: Scale) -> Vec<Measurement> {
    let sizes: &[usize] = match scale {
        Scale::Full => &[40_000],
        Scale::Default => &[5_000, 20_000],
        Scale::Smoke => &[2_000],
    };
    let mut all = Vec::new();
    for &n in sizes {
        let w = workload(Dataset::MeteoLike, n);
        let rows = run_query_core_ratio(&w);
        print_series(
            &format!("Query-vs-core ratio (meteo, {n} tuples) — TP left outer join"),
            &rows,
        );
        all.extend(rows);
    }
    all
}

/// The query-overhead regression guard: the session-executed TP left outer
/// join must stay within `1.2×` of the core function on the meteo workload
/// at the largest measured cardinality. Both series run the same serial
/// join, so anything beyond the margin is envelope cost the query layer
/// added back (per-execution engine cloning, per-tuple fact copies, ...).
fn check_query_overhead(rows: &[Measurement]) {
    let meteo: Vec<&Measurement> = rows.iter().filter(|m| m.dataset == "meteo").collect();
    let largest = meteo.iter().map(|m| m.tuples).max().unwrap_or(0);
    let series = |name: &str| {
        meteo
            .iter()
            .find(|m| m.series == name && m.tuples == largest)
            .copied()
    };
    let (Some(core), Some(session)) = (series("core"), series("session")) else {
        eprintln!("--check-query-overhead: ratio core/session series missing");
        std::process::exit(1);
    };
    const MARGIN: f64 = 1.20;
    // Wall-clock comparisons on shared CI runners are noisy; before
    // declaring a regression, re-measure the pair up to twice on a fresh
    // workload.
    let (mut core_ms, mut session_ms) = (core.millis, session.millis);
    for attempt in 1..=2 {
        if session_ms <= core_ms * MARGIN {
            break;
        }
        eprintln!(
            "session join ({session_ms:.2} ms) more than 1.2x over core ({core_ms:.2} ms); \
             re-measuring (attempt {attempt}/2, noisy runner?)"
        );
        let w = workload(Dataset::MeteoLike, largest);
        let rows = run_query_core_ratio(&w);
        core_ms = rows[0].millis;
        session_ms = rows[1].millis;
    }
    println!(
        "\nquery overhead guard (meteo, {largest} tuples): core {core_ms:.2} ms, \
         session {session_ms:.2} ms ({:.2}x)",
        session_ms / core_ms
    );
    if session_ms > core_ms * MARGIN {
        eprintln!(
            "REGRESSION: the session-executed left outer join ({session_ms:.2} ms) is more \
             than 1.2x slower than the core function ({core_ms:.2} ms) on the meteo workload \
             at {largest} tuples"
        );
        std::process::exit(1);
    }
}

/// The set-operation regression guard: the streamed union must not be
/// slower than the old materializing path on the meteo workload at the
/// largest measured cardinality, beyond a 10% wall-clock noise margin (the
/// two paths do identical window work — the streamed one merely avoids
/// materializing the window lists, so any real slowdown is a pipeline
/// regression).
fn check_union_streaming(rows: &[Measurement]) {
    let meteo: Vec<&Measurement> = rows.iter().filter(|m| m.dataset == "meteo").collect();
    let largest = meteo.iter().map(|m| m.tuples).max().unwrap_or(0);
    let series = |name: &str| {
        meteo
            .iter()
            .find(|m| m.series == name && m.tuples == largest)
            .copied()
    };
    let (Some(streamed), Some(materialized)) = (series("union-stream"), series("union-mat")) else {
        eprintln!("--check-union-streaming: setops union series missing");
        std::process::exit(1);
    };
    const MARGIN: f64 = 1.10;
    // Wall-clock comparisons on shared CI runners are noisy; before
    // declaring a regression, re-measure the pair up to twice on a fresh
    // workload.
    let (mut stream_ms, mut mat_ms) = (streamed.millis, materialized.millis);
    for attempt in 1..=2 {
        if stream_ms <= mat_ms * MARGIN {
            break;
        }
        eprintln!(
            "streamed union ({stream_ms:.2} ms) slower than materializing ({mat_ms:.2} ms); \
             re-measuring (attempt {attempt}/2, noisy runner?)"
        );
        let w = workload(Dataset::MeteoLike, largest);
        // Same untimed warmup as the figure itself: without it the first
        // measured series would absorb the fresh workload's cold-cache
        // cost and the retry would be biased against the streamed path.
        let _ = run_union_materialized(&w);
        stream_ms = run_union_streamed(&w).millis;
        mat_ms = run_union_materialized(&w).millis;
    }
    println!(
        "\nunion streaming guard (meteo, {largest} tuples): streamed {stream_ms:.2} ms, \
         materializing {mat_ms:.2} ms"
    );
    if stream_ms > mat_ms * MARGIN {
        eprintln!(
            "REGRESSION: the streamed union ({stream_ms:.2} ms) is more than 10% slower than \
             the materializing reference ({mat_ms:.2} ms) on the meteo workload at {largest} \
             tuples"
        );
        std::process::exit(1);
    }
}

/// The `snapshot` figure: how fast the meteo workload comes into a catalog
/// — datagen regeneration vs. binary snapshot save/load vs. CSV import —
/// recorded as `BENCH_load.json`. The snapshot-load advantage over text
/// ingest is what the workload cache (and the `--check-load-speedup`
/// guard) banks on; the datagen series is recorded alongside as the
/// in-memory construction floor both loaders sit on top of.
fn snapshot(scale: Scale) -> Vec<Measurement> {
    let sizes: &[usize] = match scale {
        Scale::Full => &[5_000, 40_000, 200_000, 1_000_000],
        Scale::Default => &[5_000, 40_000, 200_000],
        Scale::Smoke => &[5_000],
    };
    let dir = std::env::temp_dir();
    let mut all = Vec::new();
    for &n in sizes {
        let rows = run_snapshot_load(n, 42, &dir);
        print_series(
            &format!("Snapshot (meteo, {n} tuples) — datagen vs. snapshot load vs. CSV import"),
            &rows,
        );
        all.extend(rows);
    }
    all
}

/// The snapshot regression guard: at the largest measured cardinality, the
/// *ingest overhead* of loading the binary snapshot — its cost net of the
/// shared in-memory tuple construction that every loader pays, estimated
/// by the `datagen` series — must be at least 10× smaller than the ingest
/// overhead of importing the identical data as CSV text. The overhead is
/// what the format controls (file read, checksum, parse); the construction
/// floor is identical on both sides, so comparing gross wall-clock would
/// only measure how large that shared floor is, not the format.
fn check_load_speedup(rows: &[Measurement]) {
    let largest = rows.iter().map(|m| m.tuples).max().unwrap_or(0);
    let series = |rows: &[Measurement], name: &str| {
        rows.iter()
            .find(|m| m.series == name && m.tuples == largest)
            .map(|m| m.millis)
    };
    let (Some(mut datagen_ms), Some(mut import_ms), Some(mut load_ms)) = (
        series(rows, "datagen"),
        series(rows, "csv-import"),
        series(rows, "snap-load"),
    ) else {
        eprintln!("--check-load-speedup: snapshot datagen/csv-import/snap-load series missing");
        std::process::exit(1);
    };
    const SPEEDUP: f64 = 10.0;
    // Overheads above the construction floor; a load at or below the floor
    // has no measurable overhead at all and trivially passes.
    let overheads = |datagen: f64, import: f64, load: f64| {
        ((import - datagen).max(0.0), (load - datagen).max(0.001))
    };
    // Wall-clock comparisons on shared CI runners are noisy; before
    // declaring a regression, re-measure up to twice, keeping the minimum
    // (least-noise) sample of every series.
    for attempt in 1..=2 {
        let (import_over, load_over) = overheads(datagen_ms, import_ms, load_ms);
        if load_over * SPEEDUP <= import_over {
            break;
        }
        eprintln!(
            "snapshot load overhead ({load_over:.2} ms) within 10x of CSV import overhead \
             ({import_over:.2} ms); re-measuring (attempt {attempt}/2, noisy runner?)"
        );
        let retry = run_snapshot_load(largest, 42, &std::env::temp_dir());
        datagen_ms = series(&retry, "datagen")
            .unwrap_or(datagen_ms)
            .min(datagen_ms);
        import_ms = series(&retry, "csv-import")
            .unwrap_or(import_ms)
            .min(import_ms);
        load_ms = series(&retry, "snap-load").unwrap_or(load_ms).min(load_ms);
    }
    let (import_over, load_over) = overheads(datagen_ms, import_ms, load_ms);
    println!(
        "\nload speedup guard (meteo, {largest} tuples): construction floor {datagen_ms:.2} ms, \
         csv import +{import_over:.2} ms, snapshot load +{load_over:.2} ms ({:.1}x)",
        import_over / load_over
    );
    if load_over * SPEEDUP > import_over {
        eprintln!(
            "REGRESSION: the meteo snapshot's load overhead ({load_over:.2} ms above the \
             {datagen_ms:.2} ms construction floor) is less than 10x smaller than CSV import's \
             ({import_over:.2} ms) at {largest} tuples"
        );
        std::process::exit(1);
    }
}

/// The `throughput` figure: the meteo TP left outer join driven through the
/// `tpdb-server` front-end at 1/2/4/8 concurrent clients, against the
/// serial in-process session baseline, recorded as
/// `BENCH_throughput.json`. Every concurrent response is asserted
/// byte-identical to the serial rendering inside [`run_throughput`] itself,
/// so the figure doubles as the concurrency correctness check; the
/// `machine-cores` series records the hardware parallelism the qps curve
/// must be judged against.
fn throughput(scale: Scale) -> Vec<Measurement> {
    let (tuples, rounds, concurrency): (usize, usize, &[usize]) = match scale {
        Scale::Full => (5_000, 20, &[1, 2, 4, 8]),
        Scale::Default => (2_000, 12, &[1, 2, 4, 8]),
        Scale::Smoke => (500, 5, &[1, 2, 4]),
    };
    let w = workload(Dataset::MeteoLike, tuples);
    let rows = run_throughput(&w, concurrency, rounds);
    let cores = rows
        .iter()
        .find(|m| m.series == "machine-cores")
        .map_or(1, |m| m.output);
    print_series(
        &format!(
            "Throughput — tpdb-server front-end (meteo, {tuples} tuples, {rounds} queries \
             per client, {cores} hardware threads)"
        ),
        &rows,
    );
    println!("{:<8} {:>10}", "series", "qps");
    for row in rows
        .iter()
        .filter(|m| m.series == "serial" || (m.series.starts_with('c') && !m.series.contains('-')))
    {
        println!(
            "{:<8} {:>10.1}",
            row.series,
            row.output as f64 * 1000.0 / row.millis.max(0.001)
        );
    }
    rows
}

/// The throughput regression guard: qps at 4 concurrent clients must match
/// the host's expectation. On a ≥ 4-core machine the worker pool must
/// actually scale — at least 2× the 1-client qps. On a smaller host the
/// curve is flat by construction (every worker shares the core), so the
/// assertion degrades to an overhead bound: the concurrent server path may
/// cost at most 20% against the serial in-process baseline (the
/// `BENCH_scaling.json` convention for single-core runners).
fn check_throughput(rows: &[Measurement], scale: Scale) {
    let qps = |rows: &[Measurement], name: &str| {
        rows.iter()
            .find(|m| m.series == name)
            .map(|m| m.output as f64 * 1000.0 / m.millis.max(0.001))
    };
    let cores = rows
        .iter()
        .find(|m| m.series == "machine-cores")
        .map_or(1, |m| m.output);
    let tuples = rows.iter().map(|m| m.tuples).max().unwrap_or(0);
    let (Some(mut serial), Some(mut c1), Some(mut c4)) =
        (qps(rows, "serial"), qps(rows, "c1"), qps(rows, "c4"))
    else {
        eprintln!("--check-throughput: serial/c1/c4 series missing");
        std::process::exit(1);
    };
    let holds = |serial: f64, c1: f64, c4: f64| {
        if cores >= 4 {
            c4 >= 2.0 * c1
        } else {
            c4 >= 0.8 * serial
        }
    };
    // Wall-clock comparisons on shared CI runners are noisy; before
    // declaring a regression, re-measure up to twice on a fresh workload,
    // keeping the best (least-noise) qps of every series.
    for attempt in 1..=2 {
        if holds(serial, c1, c4) {
            break;
        }
        eprintln!(
            "throughput below expectation (serial {serial:.1} qps, c1 {c1:.1}, c4 {c4:.1}, \
             {cores} cores); re-measuring (attempt {attempt}/2, noisy runner?)"
        );
        let w = workload(Dataset::MeteoLike, tuples);
        let rounds = if scale == Scale::Smoke { 5 } else { 12 };
        let retry = run_throughput(&w, &[1, 4], rounds);
        serial = qps(&retry, "serial").unwrap_or(serial).max(serial);
        c1 = qps(&retry, "c1").unwrap_or(c1).max(c1);
        c4 = qps(&retry, "c4").unwrap_or(c4).max(c4);
    }
    println!(
        "\nthroughput guard (meteo, {tuples} tuples, {cores} cores): serial {serial:.1} qps, \
         c1 {c1:.1} qps, c4 {c4:.1} qps — asserting {}",
        if cores >= 4 {
            "c4 >= 2x c1 (multi-core scaling)"
        } else {
            "c4 >= 0.8x serial (single-core overhead bound)"
        }
    );
    if !holds(serial, c1, c4) {
        if cores >= 4 {
            eprintln!(
                "REGRESSION: 4 concurrent clients reach {c4:.1} qps, less than 2x the \
                 1-client {c1:.1} qps on a {cores}-core host"
            );
        } else {
            eprintln!(
                "REGRESSION: 4 concurrent clients reach {c4:.1} qps, less than 0.8x the \
                 serial in-process baseline of {serial:.1} qps on a {cores}-core host"
            );
        }
        std::process::exit(1);
    }
}

/// Ablations not present in the paper: (A1) the overlap-join plan inside NJ
/// — sweep vs. hash vs. nested loop — and (A2) the effect of the
/// independence-decomposition shortcuts in the probability engine.
fn ablation() {
    use std::time::Instant;
    use tpdb_core::{overlapping_windows_with_plan, OverlapJoinPlan};

    println!("\n== A1 — overlap-join plan inside NJ (webkit-like, 20K tuples) ==");
    let w = workload(Dataset::WebkitLike, 20_000);
    let bound = w.theta.bind(w.r.schema(), w.s.schema()).expect("θ binds");
    let mut timings = Vec::new();
    for plan in [
        OverlapJoinPlan::Sweep,
        OverlapJoinPlan::Hash,
        OverlapJoinPlan::NestedLoop,
    ] {
        let start = Instant::now();
        // A forced plan either runs or errors — it can no longer silently
        // downgrade, so each reported series is the plan it claims to be.
        let windows = overlapping_windows_with_plan(&w.r, &w.s, &bound, plan)
            .unwrap_or_else(|e| panic!("plan {plan} did not run: {e}"));
        let millis = start.elapsed().as_secs_f64() * 1000.0;
        println!(
            "  overlap join [{:<11}]  {:>10.2} ms   {} windows",
            plan.label(),
            millis,
            windows.len()
        );
        timings.push((plan, millis));
    }
    let ordered = timings.windows(2).all(|pair| pair[0].1 <= pair[1].1);
    println!(
        "  plan ordering sweep <= hash <= nested-loop: {}",
        if ordered {
            "holds"
        } else {
            "VIOLATED (timing noise? rerun on an idle machine)"
        }
    );

    println!("\n== A2 — probability computation: decomposition vs. forced Shannon ==");
    let w = workload(Dataset::MeteoLike, 5_000);
    for force in [false, true] {
        let mut engine = tpdb_lineage::ProbabilityEngine::new();
        w.r.register_probabilities(&mut engine);
        w.s.register_probabilities(&mut engine);
        engine.set_force_shannon(force);
        let start = Instant::now();
        let result = tpdb_core::tp_join_with_engine(
            &w.r,
            &w.s,
            &w.theta,
            tpdb_core::TpJoinKind::Anti,
            &mut engine,
        )
        .expect("θ binds");
        println!(
            "  anti join [{}]  {:>10.2} ms   {} output tuples, {} Shannon expansions",
            if force {
                "forced Shannon "
            } else {
                "decomposition  "
            },
            start.elapsed().as_secs_f64() * 1000.0,
            result.len(),
            engine.expansions()
        );
    }
}

/// Writes a figure's measurements to `BENCH_<figure>.json` (default scale)
/// or `BENCH_<figure>_<scale>.json` — the reduced/full sweeps must not
/// clobber the recorded default-scale series.
fn write_json(figure: &str, scale: Scale, rows: &[Measurement]) {
    let path = match scale {
        Scale::Default => format!("BENCH_{figure}.json"),
        Scale::Smoke => format!("BENCH_{figure}_smoke.json"),
        Scale::Full => format!("BENCH_{figure}_full.json"),
    };
    match std::fs::write(&path, measurements_to_json(rows)) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The Fig. 5 regression guard: NJ must not be slower than TA on the meteo
/// WUO series at the largest measured cardinality (this very repository once
/// shipped NJ 3.5× *slower* — see CHANGES.md).
fn check_nj_wuo(rows: &[Measurement]) {
    let meteo: Vec<&Measurement> = rows.iter().filter(|m| m.dataset == "meteo").collect();
    let largest = meteo.iter().map(|m| m.tuples).max().unwrap_or(0);
    let series = |name: &str| {
        meteo
            .iter()
            .find(|m| m.series == name && m.tuples == largest)
            .copied()
    };
    let (Some(nj), Some(ta)) = (series("NJ"), series("TA")) else {
        eprintln!("--check-nj-wuo: fig5 meteo NJ/TA series missing");
        std::process::exit(1);
    };
    // Wall-clock comparisons on shared CI runners are noisy; before
    // declaring a regression, re-measure the pair up to twice on a fresh
    // workload. A genuine regression (the original bug was 3.5×) fails
    // every attempt.
    let (mut nj_ms, mut ta_ms) = (nj.millis, ta.millis);
    for attempt in 1..=2 {
        if nj_ms <= ta_ms {
            break;
        }
        eprintln!(
            "NJ ({nj_ms:.2} ms) slower than TA ({ta_ms:.2} ms); \
             re-measuring (attempt {attempt}/2, noisy runner?)"
        );
        let w = workload(Dataset::MeteoLike, largest);
        nj_ms = run_nj_wuo(&w).millis;
        ta_ms = run_ta_wuo(&w).millis;
    }
    println!("\nNJ-vs-TA guard (meteo WUO, {largest} tuples): NJ {nj_ms:.2} ms, TA {ta_ms:.2} ms");
    if nj_ms > ta_ms {
        eprintln!(
            "REGRESSION: NJ ({nj_ms:.2} ms) is slower than TA ({ta_ms:.2} ms) on the \
             meteo WUO workload at {largest} tuples"
        );
        std::process::exit(1);
    }
}

/// One parsed row of a `BENCH_*.json` file (the format
/// [`tpdb_bench::measurements_to_json`] writes: one flat object per line).
struct BenchRow {
    dataset: String,
    series: String,
    tuples: usize,
    millis: f64,
    output: usize,
}

fn json_str_field(line: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":\"");
    let start = line.find(&key)? + key.len();
    let len = line.get(start..)?.find('"')?;
    Some(line.get(start..start + len)?.to_owned())
}

fn json_num_field(line: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let start = line.find(&key)? + key.len();
    let rest = line.get(start..)?;
    let len = rest.find([',', '}']).unwrap_or(rest.len());
    rest.get(..len)?.trim().parse().ok()
}

/// Parses the flat one-object-per-line JSON our own writer produces.
/// Anything unparseable is a hard error — a baseline file is either in our
/// format or the comparison is meaningless.
fn parse_bench_rows(text: &str, path: &str) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        let parsed = (|| {
            Some(BenchRow {
                dataset: json_str_field(line, "dataset")?,
                series: json_str_field(line, "series")?,
                tuples: json_num_field(line, "tuples")? as usize,
                millis: json_num_field(line, "runtime_ms")?,
                output: json_num_field(line, "output")? as usize,
            })
        })();
        match parsed {
            Some(row) => rows.push(row),
            None => {
                eprintln!("{path}:{}: unparseable measurement row", lineno + 1);
                std::process::exit(2);
            }
        }
    }
    rows
}

/// The smoke-figure baseline check: every `BENCH_<figure>_smoke.json` just
/// produced in the current directory is compared against the committed
/// copy under `baselines/`. Series sets and per-series `output` counts
/// must match exactly — they are deterministic functions of the workload
/// (fixed seed) and a drift means an engine change altered results or a
/// figure lost a series. Runtimes only have to stay within a 50× band of
/// the baseline (for baselines ≥ 1 ms): runners differ wildly in speed,
/// but a runtime recorded into the wrong field or a series suddenly
/// measuring nothing does not survive even that band. `machine-cores`
/// rows are exempt from the output comparison (they record the host).
fn check_baselines() {
    const FIGURES: [&str; 7] = [
        "fig5",
        "scaling",
        "prepared",
        "setops",
        "ratio",
        "load",
        "throughput",
    ];
    const RUNTIME_BAND: f64 = 50.0;
    let mut failures = 0usize;
    let mut compared = 0usize;
    for figure in FIGURES {
        let fresh_path = format!("BENCH_{figure}_smoke.json");
        let base_path = format!("baselines/BENCH_{figure}_smoke.json");
        let read = |path: &str| match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("check-baselines: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let fresh = parse_bench_rows(&read(&fresh_path), &fresh_path);
        let base = parse_bench_rows(&read(&base_path), &base_path);
        let key = |r: &BenchRow| (r.dataset.clone(), r.series.clone(), r.tuples);
        let fresh_keys: Vec<_> = fresh.iter().map(key).collect();
        let base_keys: Vec<_> = base.iter().map(key).collect();
        for k in &base_keys {
            if !fresh_keys.contains(k) {
                eprintln!(
                    "{figure}: series {}/{} @{} present in {base_path} but missing from \
                     {fresh_path}",
                    k.0, k.1, k.2
                );
                failures += 1;
            }
        }
        for k in &fresh_keys {
            if !base_keys.contains(k) {
                eprintln!(
                    "{figure}: series {}/{} @{} is new in {fresh_path} — regenerate the \
                     baseline under baselines/",
                    k.0, k.1, k.2
                );
                failures += 1;
            }
        }
        for b in &base {
            let Some(f) = fresh.iter().find(|f| key(f) == key(b)) else {
                continue;
            };
            compared += 1;
            if b.series != "machine-cores" && f.output != b.output {
                eprintln!(
                    "{figure}: series {}/{} @{}: output {} differs from baseline {}",
                    b.dataset, b.series, b.tuples, f.output, b.output
                );
                failures += 1;
            }
            if b.millis >= 1.0
                && (f.millis > b.millis * RUNTIME_BAND || f.millis * RUNTIME_BAND < b.millis)
            {
                eprintln!(
                    "{figure}: series {}/{} @{}: runtime {:.3} ms outside the {RUNTIME_BAND}x \
                     band of baseline {:.3} ms",
                    b.dataset, b.series, b.tuples, f.millis, b.millis
                );
                failures += 1;
            }
        }
    }
    println!(
        "check-baselines: {compared} series compared across {} figures, {failures} drift(s)",
        FIGURES.len()
    );
    if failures > 0 {
        eprintln!(
            "BASELINE DRIFT: {failures} mismatch(es) against baselines/ — if intentional, \
             regenerate the baselines (see docs/EXPERIMENTS.md)"
        );
        std::process::exit(1);
    }
}

fn main() {
    let config = parse_args();
    if config.check_baselines {
        check_baselines();
        return;
    }
    println!(
        "TPDB experiment driver (scale: {})",
        match config.scale {
            Scale::Full => "full (paper)",
            Scale::Default => "default (scaled down)",
            Scale::Smoke => "smoke (CI)",
        }
    );
    for figure in &config.figures {
        let rows = match figure.as_str() {
            "fig5" => fig5(config.scale),
            "fig6" => fig6(config.scale),
            "fig7" => fig7(config.scale),
            "scaling" => scaling(config.scale, &config.threads),
            "prepared" => prepared(config.scale),
            "setops" => setops(config.scale),
            "ratio" => ratio(config.scale),
            "snapshot" => snapshot(config.scale),
            "throughput" => throughput(config.scale),
            "ablation" => {
                ablation();
                continue;
            }
            _ => unreachable!("validated in parse_args"),
        };
        if config.json {
            // The snapshot figure records under the load-cost name the
            // perf-trajectory tooling tracks.
            let json_name = if figure == "snapshot" { "load" } else { figure };
            write_json(json_name, config.scale, &rows);
        }
        if config.check_nj_wuo && figure == "fig5" {
            check_nj_wuo(&rows);
        }
        if config.check_union_streaming && figure == "setops" {
            check_union_streaming(&rows);
        }
        if config.check_query_overhead && figure == "ratio" {
            check_query_overhead(&rows);
        }
        if config.check_load_speedup && figure == "snapshot" {
            check_load_speedup(&rows);
        }
        if config.check_throughput && figure == "throughput" {
            check_throughput(&rows, config.scale);
        }
        if config.check_scaling && figure == "scaling" {
            check_scaling(&rows);
        }
    }
}
