//! The experiment driver regenerating the figures of the paper's evaluation
//! section (Section IV) as result tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tpdb-bench --bin experiments            # all figures, default scale
//! cargo run --release -p tpdb-bench --bin experiments -- fig5    # only Fig. 5
//! cargo run --release -p tpdb-bench --bin experiments -- fig7 --full   # paper-scale cardinalities
//! cargo run --release -p tpdb-bench --bin experiments -- ablation
//! ```
//!
//! Default cardinalities are scaled down from the paper's 40K–200K so that
//! the whole sweep finishes in a few minutes on a laptop; `--full` switches
//! to the paper's sizes (expect the TA series of Fig. 7 to run for a long
//! time — the nested-loop degradation is the point of that figure).

use tpdb_bench::{
    header, run_nj_left_outer, run_nj_wn, run_nj_wuo, run_nj_wuon, run_ta_left_outer,
    run_ta_negating, run_ta_wuo, Dataset, Measurement,
};

struct Config {
    figures: Vec<String>,
    full: bool,
}

fn parse_args() -> Config {
    let mut figures = Vec::new();
    let mut full = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => full = true,
            "fig5" | "fig6" | "fig7" | "ablation" => figures.push(arg),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: experiments [fig5] [fig6] [fig7] [ablation] [--full]");
                std::process::exit(2);
            }
        }
    }
    if figures.is_empty() {
        figures = vec![
            "fig5".into(),
            "fig6".into(),
            "fig7".into(),
            "ablation".into(),
        ];
    }
    Config { figures, full }
}

fn print_series(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    println!("{}", header());
    for row in rows {
        println!("{}", row.row());
    }
}

fn fig5(full: bool) {
    let sizes: &[usize] = if full {
        &[50_000, 100_000, 150_000, 200_000]
    } else {
        &[5_000, 10_000, 20_000, 40_000]
    };
    for dataset in [Dataset::WebkitLike, Dataset::MeteoLike] {
        let mut rows = Vec::new();
        for &n in sizes {
            let w = dataset.generate(n, 42);
            rows.push(run_nj_wuo(&w));
            rows.push(run_ta_wuo(&w));
        }
        print_series(
            &format!(
                "Fig. 5 ({}) — WUO: overlapping + unmatched windows",
                dataset.label()
            ),
            &rows,
        );
    }
}

fn fig6(full: bool) {
    let sizes: &[usize] = if full {
        &[40_000, 80_000, 120_000, 160_000, 200_000]
    } else {
        &[5_000, 10_000, 20_000, 40_000]
    };
    for dataset in [Dataset::WebkitLike, Dataset::MeteoLike] {
        let mut rows = Vec::new();
        for &n in sizes {
            let w = dataset.generate(n, 42);
            rows.push(run_nj_wn(&w));
            rows.push(run_nj_wuon(&w));
            rows.push(run_ta_negating(&w));
        }
        print_series(
            &format!("Fig. 6 ({}) — negating windows", dataset.label()),
            &rows,
        );
    }
}

fn fig7(full: bool) {
    // TA's end-to-end plan is nested-loop; keep the default sweep small.
    let sizes: &[usize] = if full {
        &[40_000, 80_000, 120_000, 160_000, 200_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000]
    };
    for dataset in [Dataset::WebkitLike, Dataset::MeteoLike] {
        let mut rows = Vec::new();
        for &n in sizes {
            let w = dataset.generate(n, 42);
            rows.push(run_nj_left_outer(&w));
            rows.push(run_ta_left_outer(&w));
        }
        print_series(
            &format!("Fig. 7 ({}) — TP left outer join", dataset.label()),
            &rows,
        );
    }
}

/// Ablations not present in the paper: (A1) the effect of the hash overlap
/// join vs. a nested-loop overlap join inside NJ, and (A2) the effect of the
/// independence-decomposition shortcuts in the probability engine.
fn ablation() {
    use std::time::Instant;
    use tpdb_core::{overlapping_windows_with_plan, OverlapJoinPlan};

    println!("\n== A1 — overlap-join plan inside NJ (webkit-like, 20K tuples) ==");
    let w = Dataset::WebkitLike.generate(20_000, 42);
    let bound = w.theta.bind(w.r.schema(), w.s.schema()).expect("θ binds");
    for (label, plan) in [
        ("hash", OverlapJoinPlan::Hash),
        ("nested-loop", OverlapJoinPlan::NestedLoop),
    ] {
        let start = Instant::now();
        let windows = overlapping_windows_with_plan(&w.r, &w.s, &bound, plan);
        println!(
            "  overlap join [{label:<11}]  {:>10.2} ms   {} windows",
            start.elapsed().as_secs_f64() * 1000.0,
            windows.len()
        );
    }

    println!("\n== A2 — probability computation: decomposition vs. forced Shannon ==");
    let w = Dataset::MeteoLike.generate(5_000, 42);
    for force in [false, true] {
        let mut engine = tpdb_lineage::ProbabilityEngine::new();
        w.r.register_probabilities(&mut engine);
        w.s.register_probabilities(&mut engine);
        engine.set_force_shannon(force);
        let start = Instant::now();
        let result = tpdb_core::tp_join_with_engine(
            &w.r,
            &w.s,
            &w.theta,
            tpdb_core::TpJoinKind::Anti,
            &mut engine,
        )
        .expect("θ binds");
        println!(
            "  anti join [{}]  {:>10.2} ms   {} output tuples, {} Shannon expansions",
            if force {
                "forced Shannon "
            } else {
                "decomposition  "
            },
            start.elapsed().as_secs_f64() * 1000.0,
            result.len(),
            engine.expansions()
        );
    }
}

fn main() {
    let config = parse_args();
    println!(
        "TPDB experiment driver (scale: {})",
        if config.full {
            "full (paper)"
        } else {
            "default (scaled down)"
        }
    );
    for figure in &config.figures {
        match figure.as_str() {
            "fig5" => fig5(config.full),
            "fig6" => fig6(config.full),
            "fig7" => fig7(config.full),
            "ablation" => ablation(),
            _ => unreachable!("validated in parse_args"),
        }
    }
}
