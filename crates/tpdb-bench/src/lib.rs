//! # tpdb-bench
//!
//! Workload construction and measurement helpers shared by the Criterion
//! benches (`benches/fig5_wuo.rs`, `benches/fig6_negating.rs`,
//! `benches/fig7_outer_join.rs`) and the `experiments` binary that
//! regenerates the figures of the paper's evaluation section (see
//! `docs/EXPERIMENTS.md` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;
use tpdb_core::{
    lawan, lawau, overlapping_windows, parallel_wuo_count, tp_left_outer_join, LawanStream,
    LawauStream, OverlapWindowStream, ThetaCondition,
};
use tpdb_storage::{Catalog, TpRelation, Value};
use tpdb_ta::{ta_left_outer_join, ta_negating_windows, ta_wuo_windows, ta_wuon_windows};

/// The two dataset families of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Webkit-like: many distinct join keys, selective θ (Fig. 5a/6a/7a).
    WebkitLike,
    /// Meteo-like: few distinct join keys, non-selective θ (Fig. 5b/6b/7b).
    MeteoLike,
}

impl Dataset {
    /// Human-readable label used in result tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Dataset::WebkitLike => "webkit",
            Dataset::MeteoLike => "meteo",
        }
    }

    /// The equi-join column of the dataset's workload.
    #[must_use]
    pub fn key_column(&self) -> &'static str {
        match self {
            Dataset::WebkitLike => "Key",
            Dataset::MeteoLike => "Metric",
        }
    }

    /// Generates the positive/negative relation pair and the θ condition of
    /// the experiments, with `tuples` tuples per relation.
    #[must_use]
    pub fn generate(&self, tuples: usize, seed: u64) -> Workload {
        match self {
            Dataset::WebkitLike => {
                let (r, s) = tpdb_datagen::webkit_like(tuples, seed);
                Workload {
                    dataset: *self,
                    theta: ThetaCondition::column_equals("Key", "Key"),
                    r,
                    s,
                }
            }
            Dataset::MeteoLike => {
                let (r, s) = tpdb_datagen::meteo_like(tuples, seed);
                Workload {
                    dataset: *self,
                    theta: ThetaCondition::column_equals("Metric", "Metric"),
                    r,
                    s,
                }
            }
        }
    }
}

/// A generated experiment input: two TP relations and a θ condition.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which dataset family generated the workload.
    pub dataset: Dataset,
    /// The join condition of the experiments.
    pub theta: ThetaCondition,
    /// Positive relation.
    pub r: TpRelation,
    /// Negative relation.
    pub s: TpRelation,
}

/// One measured data point of an experiment series.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Series name (e.g. `NJ`, `TA`, `NJ-WN`).
    pub series: String,
    /// Dataset label.
    pub dataset: String,
    /// Input cardinality per relation.
    pub tuples: usize,
    /// Wall-clock runtime in milliseconds.
    pub millis: f64,
    /// Number of produced windows / output tuples (sanity check that the
    /// compared systems do the same work).
    pub output: usize,
}

impl Measurement {
    /// Formats the measurement as a result-table row.
    #[must_use]
    pub fn row(&self) -> String {
        format!(
            "{:<8} {:<8} {:>10} {:>12.2} {:>12}",
            self.dataset, self.series, self.tuples, self.millis, self.output
        )
    }

    /// Renders the measurement as a JSON object (labels are plain ASCII
    /// identifiers, so no escaping is needed).
    #[must_use]
    pub fn json(&self) -> String {
        format!(
            r#"{{"dataset":"{}","series":"{}","tuples":{},"runtime_ms":{:.3},"output":{}}}"#,
            self.dataset, self.series, self.tuples, self.millis, self.output
        )
    }
}

/// Renders a series of measurements as a JSON array (the `BENCH_*.json`
/// format the perf-trajectory tooling reads).
#[must_use]
pub fn measurements_to_json(rows: &[Measurement]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&row.json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Header matching [`Measurement::row`].
#[must_use]
pub fn header() -> String {
    format!(
        "{:<8} {:<8} {:>10} {:>12} {:>12}",
        "dataset", "series", "tuples", "runtime_ms", "output"
    )
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1000.0, out)
}

/// Runs `f` `reps` times and reports the *minimum* elapsed time — the
/// standard low-noise estimator for repeatable work (the minimum skims
/// scheduler preemption, allocator warm-up and page-fault noise that a
/// single sample on a shared runner picks up).
fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best_ms, mut out) = time(&mut f);
    for _ in 1..reps {
        let (ms, next) = time(&mut f);
        if ms < best_ms {
            best_ms = ms;
        }
        out = next;
    }
    (best_ms, out)
}

// ---------------------------------------------------------------------------
// Figure 5 — WUO: overlapping and unmatched windows
// ---------------------------------------------------------------------------

/// NJ side of Fig. 5: the streaming pipeline sweep overlap join → LAWAU.
/// Windows are consumed (counted) as they leave the pipeline, exactly as the
/// join operator consumes them — nothing is materialized.
#[must_use]
pub fn run_nj_wuo(w: &Workload) -> Measurement {
    let (millis, count) = time(|| {
        let wo = OverlapWindowStream::new(&w.r, &w.s, &w.theta).expect("θ binds");
        LawauStream::new(wo, &w.r).count()
    });
    Measurement {
        series: "NJ".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: count,
    }
}

/// The scaling series: the Fig. 5 NJ measurement (streaming sweep overlap
/// join → LAWAU, windows consumed as they leave the pipeline) executed with
/// morsel work-stealing parallelism at the given worker count. `threads =
/// 1` is the serial baseline the speedups of `BENCH_scaling.json` are
/// computed against. The series label is `NJ-P<threads>`.
#[must_use]
pub fn run_nj_wuo_parallel(w: &Workload, threads: usize) -> Measurement {
    let (millis, count) =
        time(|| parallel_wuo_count(&w.r, &w.s, &w.theta, threads).expect("θ binds"));
    Measurement {
        series: format!("NJ-P{threads}"),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: count,
    }
}

/// TA side of Fig. 5: the overlap join executed twice.
#[must_use]
pub fn run_ta_wuo(w: &Workload) -> Measurement {
    let (millis, windows) = time(|| ta_wuo_windows(&w.r, &w.s, &w.theta).expect("θ binds"));
    Measurement {
        series: "TA".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: windows.len(),
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — negating windows
// ---------------------------------------------------------------------------

/// NJ-WN series of Fig. 6: LAWAN only (its input `WUO` is pre-computed and
/// not part of the measured time).
#[must_use]
pub fn run_nj_wn(w: &Workload) -> Measurement {
    let wo = overlapping_windows(&w.r, &w.s, &w.theta).expect("θ binds");
    let wuo = lawau(&wo, &w.r);
    let (millis, windows) = time(|| lawan(&wuo));
    Measurement {
        series: "NJ-WN".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: windows.len(),
    }
}

/// NJ-WUON series of Fig. 6: the full streaming pipeline overlap join →
/// LAWAU → LAWAN.
#[must_use]
pub fn run_nj_wuon(w: &Workload) -> Measurement {
    let (millis, count) = time(|| {
        let wo = OverlapWindowStream::new(&w.r, &w.s, &w.theta).expect("θ binds");
        LawanStream::new(LawauStream::new(wo, &w.r)).count()
    });
    Measurement {
        series: "NJ-WUON".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: count,
    }
}

/// TA series of Fig. 6: alignment-based negating windows including the
/// duplicate-eliminating union with `WUO`.
#[must_use]
pub fn run_ta_negating(w: &Workload) -> Measurement {
    let (millis, windows) = time(|| {
        // TA recomputes WUO as part of its union-based plan.
        let _negating = ta_negating_windows(&w.r, &w.s, &w.theta).expect("θ binds");
        ta_wuon_windows(&w.r, &w.s, &w.theta).expect("θ binds")
    });
    Measurement {
        series: "TA".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: windows.len(),
    }
}

// ---------------------------------------------------------------------------
// Figure 7 — TP left outer join end-to-end
// ---------------------------------------------------------------------------

/// NJ series of Fig. 7: the complete TP left outer join.
#[must_use]
pub fn run_nj_left_outer(w: &Workload) -> Measurement {
    let (millis, rel) = time(|| tp_left_outer_join(&w.r, &w.s, &w.theta).expect("θ binds"));
    Measurement {
        series: "NJ".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: rel.len(),
    }
}

/// TA series of Fig. 7: the complete TP left outer join via alignment, with
/// the nested-loop plans the paper observes for TA's end-to-end query.
#[must_use]
pub fn run_ta_left_outer(w: &Workload) -> Measurement {
    let (millis, rel) = time(|| ta_left_outer_join(&w.r, &w.s, &w.theta).expect("θ binds"));
    Measurement {
        series: "TA".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: rel.len(),
    }
}

// ---------------------------------------------------------------------------
// Set operations — streamed vs. materializing union, query-layer end-to-end
// ---------------------------------------------------------------------------

/// The streamed TP union (the [`tpdb_core::TpSetOpStream`] path the query
/// layer's cursors ride on), drained to a relation.
#[must_use]
pub fn run_union_streamed(w: &Workload) -> Measurement {
    let (millis, rel) = time(|| tpdb_core::tp_union(&w.r, &w.s).expect("union-compatible"));
    Measurement {
        series: "union-stream".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: rel.len(),
    }
}

/// The pre-streaming TP union reference
/// ([`tpdb_core::tp_union_materialized`]): both window passes fully
/// materialized before output formation. The `--check-union-streaming`
/// regression guard compares [`run_union_streamed`] against this series.
#[must_use]
pub fn run_union_materialized(w: &Workload) -> Measurement {
    let (millis, rel) =
        time(|| tpdb_core::tp_union_materialized(&w.r, &w.s).expect("union-compatible"));
    Measurement {
        series: "union-mat".to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: rel.len(),
    }
}

/// The morsel-parallel TP union ([`tpdb_core::tp_set_op_parallel`]): both
/// union passes cut into work-stealing morsels at the given degree. At
/// `threads = 1` this takes the serial streamed path, so the
/// `union-steal-P1` vs `union-steal-P<n>` pair is the stealing overhead /
/// speedup curve of the setops figure. Output is byte-identical to
/// [`run_union_streamed`] by construction.
#[must_use]
pub fn run_union_parallel(w: &Workload, threads: usize) -> Measurement {
    let (millis, rel) = time(|| {
        tpdb_core::tp_set_op_parallel(&w.r, &w.s, tpdb_core::TpSetOpKind::Union, threads)
            .expect("union-compatible")
    });
    Measurement {
        series: format!("union-steal-P{threads}"),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output: rel.len(),
    }
}

/// The three set operations end-to-end through the query layer: parse →
/// plan → `SetOpExec` → materialized result, on a fresh session (the first
/// execution pays the one-time parse + validate; it is noise at these
/// cardinalities, exactly as the `prepared` figure shows for joins).
#[must_use]
pub fn run_setops_query_layer(w: &Workload) -> Vec<Measurement> {
    let session = session_over(w);
    let (rname, sname) = (w.r.name(), w.s.name());
    let mut rows = Vec::new();
    for (series, kw) in [
        ("union-query", "UNION"),
        ("intersect-query", "INTERSECT"),
        ("except-query", "EXCEPT"),
    ] {
        let q = format!("SELECT * FROM {rname} {kw} SELECT * FROM {sname}");
        let (millis, output) = time(|| session.execute(&q).expect("set op runs").len());
        rows.push(Measurement {
            series: series.to_owned(),
            dataset: w.dataset.label().to_owned(),
            tuples: w.r.len(),
            millis,
            output,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Query-vs-core ratio: the session overhead guard
// ---------------------------------------------------------------------------

/// Measures the *same* TP left outer join twice — once as the core
/// [`tp_left_outer_join`] function and once end-to-end through a prepared
/// session statement pinned to serial execution — so the two series differ
/// only in the query-layer envelope (plan-cache lookup, parameter binding,
/// scan operators, output materialization). This is the apples-to-apples
/// pair the `ratio` figure and the `--check-query-overhead` CI guard are
/// built on; the `prepared` figure is *not* comparable to Fig. 7 because
/// its join series is a TP anti join.
///
/// Two series: `core` (the direct function call) and `session` (prepared
/// once — parse + plan cost excluded, exactly like `join-prepared` — then
/// one timed execution). `output` is the result cardinality, asserted
/// identical across the pair.
#[must_use]
pub fn run_query_core_ratio(w: &Workload) -> Vec<Measurement> {
    let key = w.dataset.key_column();
    let (rname, sname) = (w.r.name(), w.s.name());

    // Untimed warm-up so the first measured series does not absorb the
    // fresh workload's cold-cache cost (same convention as the setops
    // figure).
    let _ = tp_left_outer_join(&w.r, &w.s, &w.theta).expect("θ binds");
    let (core_ms, core_out) = time(|| {
        tp_left_outer_join(&w.r, &w.s, &w.theta)
            .expect("θ binds")
            .len()
    });

    let mut session = session_over(w);
    // The core function is serial; pin the session to the same pipeline so
    // the ratio isolates query-layer overhead rather than comparing serial
    // against partitioned execution.
    session.set_parallelism(1);
    let q = format!("SELECT * FROM {rname} TP LEFT JOIN {sname} ON {rname}.{key} = {sname}.{key}");
    let stmt = session.prepare(&q).expect("query prepares");
    let (session_ms, session_out) = time(|| stmt.execute(&[]).expect("query runs").len());

    assert_eq!(
        core_out, session_out,
        "core and session must compute the same join"
    );
    let row = |series: &str, millis: f64, output: usize| Measurement {
        series: series.to_owned(),
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output,
    };
    vec![
        row("core", core_ms, core_out),
        row("session", session_ms, session_out),
    ]
}

// ---------------------------------------------------------------------------
// Prepared-vs-reparse: the session front-end contract
// ---------------------------------------------------------------------------

/// Builds a [`Session`](tpdb_query::Session) over the workload's two
/// relations.
fn session_over(w: &Workload) -> tpdb_query::Session {
    let mut catalog = tpdb_storage::Catalog::new();
    catalog.register(w.r.clone()).expect("fresh catalog");
    catalog.register(w.s.clone()).expect("fresh catalog");
    tpdb_query::Session::new(catalog)
}

/// Measures the session front-end's *prepare once, bind many* contract on
/// the workload's WUO query (the TP anti join — the operator whose answer
/// is exactly the unmatched/negating window mass of Fig. 5) and on a cheap
/// parameterized scan where the parse + validate cost is a visible
/// fraction of the per-execution time.
///
/// Four series, `iterations` executions each:
///
/// * `join-reparse` / `scan-reparse` — every execution re-parses the text,
///   re-binds the parameters and re-plans against the catalog (the old
///   one-shot `QueryEngine` contract, cache disabled).
/// * `join-prepared` / `scan-prepared` — prepared once through
///   [`tpdb_query::Session::prepare`], then bound and executed
///   `iterations` times.
///
/// The recorded `runtime_ms` is the *mean per execution*; `output` is the
/// result cardinality (identical across the paired series by
/// construction).
#[must_use]
pub fn run_prepared_vs_reparse(w: &Workload, iterations: usize) -> Vec<Measurement> {
    use tpdb_query::{execute_plan_with, parse_query, QueryOptions};
    use tpdb_storage::Value;
    assert!(iterations >= 1);
    let key = w.dataset.key_column();
    let (rname, sname) = (w.r.name(), w.s.name());
    let join_q =
        format!("SELECT * FROM {rname} TP ANTI JOIN {sname} ON {rname}.{key} = {sname}.{key}");
    let scan_q = format!("SELECT * FROM {rname} WHERE {key} >= $1");
    let scan_params = [Value::Int(0)];

    let session = session_over(w);
    let options = QueryOptions::default();
    let mut rows = Vec::new();
    let mut record = |series: &str, millis: f64, output: usize| {
        rows.push(Measurement {
            series: series.to_owned(),
            dataset: w.dataset.label().to_owned(),
            tuples: w.r.len(),
            millis,
            output,
        });
    };

    // Re-parse + re-plan per execution (the pre-session contract).
    let reparse = |text: &str, params: &[Value]| {
        let (millis, output) = time(|| {
            let mut output = 0;
            for _ in 0..iterations {
                let plan = parse_query(text).expect("query parses");
                let bound = plan.bind_parameters(params).expect("parameters bind");
                output = execute_plan_with(session.catalog(), &bound, &options)
                    .expect("query runs")
                    .len();
            }
            output
        });
        (millis / iterations as f64, output)
    };
    // Prepare once, bind and execute many times.
    let prepared = |text: &str, params: &[Value]| {
        let stmt = session.prepare(text).expect("query prepares");
        let (millis, output) = time(|| {
            let mut output = 0;
            for _ in 0..iterations {
                output = stmt.execute(params).expect("query runs").len();
            }
            output
        });
        (millis / iterations as f64, output)
    };

    let (millis, output) = reparse(&join_q, &[]);
    record("join-reparse", millis, output);
    let (millis, output) = prepared(&join_q, &[]);
    record("join-prepared", millis, output);
    let (millis, output) = reparse(&scan_q, &scan_params);
    record("scan-reparse", millis, output);
    let (millis, output) = prepared(&scan_q, &scan_params);
    record("scan-prepared", millis, output);
    rows
}

// ---------------------------------------------------------------------------
// Snapshot figure — datagen regen vs. snapshot load vs. CSV import
// ---------------------------------------------------------------------------

/// Renders a TP relation as delimiter-separated text in the
/// [`Catalog::import_delimited`] wire format: one record per tuple holding
/// the fact columns, interval start, interval end and probability. Strings
/// are always quoted (with `""` escaping), NULL is the empty field.
#[must_use]
pub fn relation_to_delimited(rel: &TpRelation, delimiter: char) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for tuple in rel.tuples() {
        for value in tuple.facts() {
            match value {
                Value::Null => {}
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Int(i) => {
                    let _ = write!(out, "{i}");
                }
                Value::Float(f) => {
                    let _ = write!(out, "{f}");
                }
                Value::Str(s) => {
                    out.push('"');
                    out.push_str(&s.replace('"', "\"\""));
                    out.push('"');
                }
            }
            out.push(delimiter);
        }
        let _ = writeln!(
            out,
            "{}{delimiter}{}{delimiter}{}",
            tuple.interval().start(),
            tuple.interval().end(),
            tuple.probability()
        );
    }
    out
}

/// The names of the two relations a dataset's generator produces (the
/// snapshot-backed workload cache looks them up after a load).
#[must_use]
pub fn dataset_relation_names(dataset: Dataset) -> (&'static str, &'static str) {
    match dataset {
        Dataset::WebkitLike => ("webkit_r", "webkit_s"),
        Dataset::MeteoLike => ("meteo_r", "meteo_s"),
    }
}

/// Returns the workload for `(dataset, tuples, seed)`, served from a binary
/// snapshot cache under the system temp directory when one exists. The
/// first request at a scale pays the datagen cost and saves a snapshot;
/// later runs (or later figures in the same sweep) load it instead —
/// datagen regeneration dominates setup time at the paper-scale
/// cardinalities, which is exactly what `BENCH_load.json` quantifies. Any
/// cache failure falls back to plain generation.
#[must_use]
pub fn workload_via_cache(dataset: Dataset, tuples: usize, seed: u64) -> Workload {
    let dir = std::env::temp_dir().join("tpdb-bench-cache");
    if std::fs::create_dir_all(&dir).is_err() {
        return dataset.generate(tuples, seed);
    }
    let path = dir.join(format!("{}-{tuples}-{seed}.snap", dataset.label()));
    let mut catalog = Catalog::new();
    if catalog.load_snapshot(&path).is_ok() {
        let (rname, sname) = dataset_relation_names(dataset);
        if let (Ok(r), Ok(s)) = (catalog.relation(rname), catalog.relation(sname)) {
            return Workload {
                dataset,
                theta: ThetaCondition::column_equals(dataset.key_column(), dataset.key_column()),
                r: r.as_ref().clone(),
                s: s.as_ref().clone(),
            };
        }
    }
    let w = dataset.generate(tuples, seed);
    let mut fresh = Catalog::new();
    if fresh.register(w.r.clone()).is_ok() && fresh.register(w.s.clone()).is_ok() {
        if let Err(e) = fresh.save_snapshot(&path) {
            eprintln!("workload cache write failed ({e}); continuing uncached");
        }
    }
    w
}

/// The `snapshot` figure: the cost of bringing the meteo workload into a
/// catalog three ways — regenerating it with tpdb-datagen (`datagen`),
/// loading a binary snapshot (`snap-save`/`snap-load`), and importing CSV
/// text (`csv-import`) — at the same cardinality. The snapshot and CSV
/// inputs are prepared from the generated workload itself, so every series
/// brings in the identical pair of relations and `output` is the total
/// tuple count across both.
#[must_use]
pub fn run_snapshot_load(tuples: usize, seed: u64, dir: &std::path::Path) -> Vec<Measurement> {
    let (datagen_ms, w) = time(|| Dataset::MeteoLike.generate(tuples, seed));

    let mut catalog = Catalog::new();
    catalog.register(w.r.clone()).expect("fresh catalog");
    catalog.register(w.s.clone()).expect("fresh catalog");
    let snap = dir.join(format!("bench-meteo-{tuples}-{seed}.snap"));
    let (save_ms, ()) = time(|| catalog.save_snapshot(&snap).expect("snapshot writes"));
    let (load_ms, loaded) = time_min(3, || {
        let mut c = Catalog::new();
        c.load_snapshot(&snap).expect("snapshot loads");
        c.relation_names()
            .iter()
            .map(|n| c.relation(n).expect("listed relation").len())
            .sum::<usize>()
    });
    std::fs::remove_file(&snap).ok();

    let csv_r = relation_to_delimited(&w.r, ',');
    let csv_s = relation_to_delimited(&w.s, ',');
    let (import_ms, imported) = time_min(2, || {
        let mut c = Catalog::new();
        c.import_delimited("meteo_csv_r", w.r.schema().clone(), ',', &csv_r)
            .expect("csv imports")
            .len()
            + c.import_delimited("meteo_csv_s", w.s.schema().clone(), ',', &csv_s)
                .expect("csv imports")
                .len()
    });

    let row = |series: &str, millis: f64, output: usize| Measurement {
        series: series.to_owned(),
        dataset: "meteo".to_owned(),
        tuples,
        millis,
        output,
    };
    vec![
        row("datagen", datagen_ms, w.r.len() + w.s.len()),
        row("snap-save", save_ms, w.r.len() + w.s.len()),
        row("snap-load", load_ms, loaded),
        row("csv-import", import_ms, imported),
    ]
}

/// `sorted` must be ascending; returns the latency at quantile `q` (0..=1)
/// by nearest-rank, or `0.0` for an empty sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        n => {
            let idx = ((n - 1) as f64 * q).round() as usize;
            *sorted.get(idx.min(n - 1)).unwrap_or(&0.0)
        }
    }
}

/// The throughput figure: the workload's TP left outer join hammered
/// through the `tpdb-server` front-end at each concurrency level, against a
/// serial in-process [`Session`](tpdb_query::Session) baseline doing the
/// identical work (execute + render the wire rows, minus the socket).
///
/// Per concurrency level `n` the server runs `n` workers; `n` client
/// threads each issue `rounds` queries back-to-back and every response is
/// asserted byte-identical to the serial reference rendering — the
/// correctness half of the figure. Series produced:
///
/// * `serial` — wall-clock of `rounds` session executions (qps baseline),
/// * `c<n>` — wall-clock of the concurrent run (`output` = total queries,
///   so `output / millis` is the qps). Note the *raw wall-clock grows with
///   `n`* because higher levels execute more statements — reading `c1` vs
///   `c4` runtimes as a scaling curve inverts the result,
/// * `c<n>-qps` — the normalized rate: statements per wall-clock *second*,
///   stored in the `runtime_ms` field (`output` = total statements). This
///   is the series to compare across concurrency levels,
/// * `c<n>-p50` / `c<n>-p99` — client-observed latency percentiles in ms,
/// * `machine-cores` — the host's hardware parallelism (`output`), recorded
///   so the scaling expectation of `BENCH_throughput.json` can be judged:
///   on a single-core host the concurrency curve is flat by construction.
#[must_use]
pub fn run_throughput(w: &Workload, concurrency: &[usize], rounds: usize) -> Vec<Measurement> {
    use tpdb_server::{protocol, Client, Server, ServerConfig};

    let (rname, sname) = dataset_relation_names(w.dataset);
    let key = w.dataset.key_column();
    let query =
        format!("SELECT * FROM {rname} TP LEFT JOIN {sname} ON {rname}.{key} = {sname}.{key}");
    let catalog = || {
        let mut c = Catalog::new();
        c.register(w.r.clone()).expect("fresh catalog");
        c.register(w.s.clone()).expect("fresh catalog");
        c
    };

    let row = |series: String, millis: f64, output: usize| Measurement {
        series,
        dataset: w.dataset.label().to_owned(),
        tuples: w.r.len(),
        millis,
        output,
    };
    let mut rows = Vec::new();

    // Serial baseline: one session, `rounds` executions, rendering the
    // same wire rows the server renders. The first execution doubles as
    // the byte-identity reference and warms the session plan cache, like
    // the server's first request warms the shared cache.
    let mut session = tpdb_query::Session::new(catalog());
    session.set_parallelism(1);
    let reference =
        protocol::render_relation_rows(&session.execute(&query).expect("reference query runs"));
    let (serial_ms, ()) = time(|| {
        for _ in 0..rounds {
            let rendered = protocol::render_relation_rows(
                &session.execute(&query).expect("serial query runs"),
            );
            assert_eq!(rendered.len(), reference.len(), "serial run diverged");
        }
    });
    rows.push(row("serial".to_owned(), serial_ms, rounds));

    for &n in concurrency {
        let server = Server::start(
            catalog(),
            ServerConfig {
                workers: n,
                queue_depth: 2 * n.max(4),
                parallelism: 1,
            },
        )
        .expect("server starts");
        let addr = server.local_addr();

        let started = Instant::now();
        let mut latencies: Vec<f64> = Vec::with_capacity(n * rounds);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|client_id| {
                    let (query, reference) = (&query, &reference);
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("client connects");
                        let mut samples = Vec::with_capacity(rounds);
                        for round in 0..rounds {
                            let t0 = Instant::now();
                            let response = client.query(query).expect("concurrent query runs");
                            samples.push(t0.elapsed().as_secs_f64() * 1000.0);
                            assert!(
                                response.rows == *reference,
                                "client {client_id} round {round}: response diverged from \
                                 the serial reference"
                            );
                        }
                        client.close().ok();
                        samples
                    })
                })
                .collect();
            for handle in handles {
                latencies.extend(handle.join().expect("client thread panicked"));
            }
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        server.shutdown();

        latencies.sort_by(f64::total_cmp);
        rows.push(row(format!("c{n}"), wall_ms, n * rounds));
        // The normalized rate, so levels are comparable without dividing
        // by hand (the raw c<n> wall-clock covers n·rounds statements and
        // *grows* with n — it is not a scaling curve).
        let qps = if wall_ms > 0.0 {
            (n * rounds) as f64 * 1000.0 / wall_ms
        } else {
            0.0
        };
        rows.push(row(format!("c{n}-qps"), qps, n * rounds));
        rows.push(row(
            format!("c{n}-p50"),
            percentile(&latencies, 0.50),
            n * rounds,
        ));
        rows.push(row(
            format!("c{n}-p99"),
            percentile(&latencies, 0.99),
            n * rounds,
        ));
    }

    rows.push(row(
        "machine-cores".to_owned(),
        0.0,
        tpdb_core::default_parallelism(),
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_produces_both_datasets() {
        let w = Dataset::WebkitLike.generate(500, 1);
        assert_eq!(w.r.len(), 500);
        assert_eq!(w.s.len(), 500);
        let m = Dataset::MeteoLike.generate(500, 1);
        assert_eq!(m.r.len(), 500);
        assert_eq!(m.theta.to_string(), "r.Metric = s.Metric");
    }

    #[test]
    fn nj_and_ta_measure_the_same_window_counts() {
        for dataset in [Dataset::WebkitLike, Dataset::MeteoLike] {
            let w = dataset.generate(300, 7);
            let nj = run_nj_wuo(&w);
            let ta = run_ta_wuo(&w);
            assert_eq!(nj.output, ta.output, "{dataset:?} WUO");
            let njn = run_nj_wuon(&w);
            let tan = run_ta_negating(&w);
            assert_eq!(njn.output, tan.output, "{dataset:?} WUON");
            let njj = run_nj_left_outer(&w);
            let taj = run_ta_left_outer(&w);
            assert_eq!(njj.output, taj.output, "{dataset:?} left outer join");
        }
    }

    #[test]
    fn parallel_wuo_counts_match_the_serial_series() {
        for dataset in [Dataset::WebkitLike, Dataset::MeteoLike] {
            let w = dataset.generate(300, 7);
            let serial = run_nj_wuo(&w);
            for threads in [1, 2, 4] {
                let parallel = run_nj_wuo_parallel(&w, threads);
                assert_eq!(parallel.output, serial.output, "{dataset:?} P={threads}");
                assert_eq!(parallel.series, format!("NJ-P{threads}"));
            }
        }
    }

    #[test]
    fn setops_series_agree_on_outputs() {
        let w = Dataset::MeteoLike.generate(300, 7);
        let streamed = run_union_streamed(&w);
        let materialized = run_union_materialized(&w);
        assert_eq!(streamed.output, materialized.output);
        for threads in [1, 2, 4] {
            let stolen = run_union_parallel(&w, threads);
            assert_eq!(stolen.output, streamed.output, "P={threads}");
            assert_eq!(stolen.series, format!("union-steal-P{threads}"));
        }
        let query_rows = run_setops_query_layer(&w);
        assert_eq!(query_rows.len(), 3);
        let union_query = query_rows
            .iter()
            .find(|m| m.series == "union-query")
            .expect("union-query series");
        assert_eq!(union_query.output, streamed.output);
    }

    #[test]
    fn ratio_series_agree_on_outputs() {
        let w = Dataset::MeteoLike.generate(300, 7);
        let rows = run_query_core_ratio(&w);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].series, "core");
        assert_eq!(rows[1].series, "session");
        // Same join, same cardinality — on both sides of the ratio and
        // against the Fig. 7 NJ series it claims to match.
        assert_eq!(rows[0].output, rows[1].output);
        assert_eq!(rows[0].output, run_nj_left_outer(&w).output);
    }

    #[test]
    fn prepared_and_reparse_series_agree_on_outputs() {
        let w = Dataset::MeteoLike.generate(300, 7);
        let rows = run_prepared_vs_reparse(&w, 2);
        assert_eq!(rows.len(), 4);
        let by_series = |name: &str| {
            rows.iter()
                .find(|m| m.series == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        assert_eq!(
            by_series("join-reparse").output,
            by_series("join-prepared").output
        );
        assert_eq!(
            by_series("scan-reparse").output,
            by_series("scan-prepared").output
        );
        // the scan returns every r tuple (Metric >= 0 always holds)
        assert_eq!(by_series("scan-prepared").output, w.r.len());
    }

    #[test]
    fn snapshot_series_bring_in_the_same_data() {
        let rows = run_snapshot_load(500, 7, &std::env::temp_dir());
        assert_eq!(rows.len(), 4);
        let by = |name: &str| {
            rows.iter()
                .find(|m| m.series == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        // the snapshot load brings back every saved tuple
        assert_eq!(by("snap-load").output, by("datagen").output);
        // the CSV import covers both relations, like the catalog-level series
        assert_eq!(by("csv-import").output, by("datagen").output);
    }

    #[test]
    fn throughput_series_cover_serial_and_every_concurrency_level() {
        let w = Dataset::MeteoLike.generate(120, 7);
        let rows = run_throughput(&w, &[1, 2], 2);
        let series: Vec<&str> = rows.iter().map(|m| m.series.as_str()).collect();
        for expected in [
            "serial",
            "c1",
            "c1-qps",
            "c1-p50",
            "c1-p99",
            "c2",
            "c2-qps",
            "c2-p50",
            "c2-p99",
            "machine-cores",
        ] {
            assert!(series.contains(&expected), "missing {expected}: {series:?}");
        }
        let by = |name: &str| {
            rows.iter()
                .find(|m| m.series == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        // output is the query count the qps is computed from
        assert_eq!(by("serial").output, 2);
        assert_eq!(by("c2").output, 4);
        // the qps row really is a rate: statements / wall seconds
        let c2 = by("c2");
        let expected_qps = c2.output as f64 * 1000.0 / c2.millis;
        assert!((by("c2-qps").millis - expected_qps).abs() < 1e-6);
        // p50 <= p99 by construction, and the core count is at least 1
        assert!(by("c2-p50").millis <= by("c2-p99").millis);
        assert!(by("machine-cores").output >= 1);
    }

    #[test]
    fn delimited_rendering_round_trips_through_the_importer() {
        let w = Dataset::MeteoLike.generate(300, 7);
        let csv = relation_to_delimited(&w.r, ',');
        let mut c = Catalog::new();
        let imported = c
            .import_delimited("roundtrip", w.r.schema().clone(), ',', &csv)
            .expect("rendered text imports");
        assert_eq!(imported.len(), w.r.len());
        for (orig, back) in w.r.tuples().iter().zip(imported.tuples()) {
            assert_eq!(orig.facts(), back.facts());
            assert_eq!(orig.interval(), back.interval());
            assert!((orig.probability() - back.probability()).abs() < 1e-12);
        }
    }

    #[test]
    fn workload_cache_serves_identical_relations() {
        let first = workload_via_cache(Dataset::MeteoLike, 250, 99);
        let second = workload_via_cache(Dataset::MeteoLike, 250, 99);
        assert_eq!(first.r, second.r);
        assert_eq!(first.s, second.s);
        assert_eq!(first.r, Dataset::MeteoLike.generate(250, 99).r);
    }

    #[test]
    fn measurement_rows_align_with_header() {
        let w = Dataset::WebkitLike.generate(100, 1);
        let m = run_nj_wuo(&w);
        assert_eq!(header().split_whitespace().count(), 5);
        assert_eq!(m.row().split_whitespace().count(), 5);
    }
}
