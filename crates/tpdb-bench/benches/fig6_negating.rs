//! Figure 6 — runtime of computing the negating windows: NJ-WN (LAWAN only),
//! NJ-WUON (overlap join + LAWAU + LAWAN) and TA, on the Webkit-like (6a)
//! and Meteo-like (6b) workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpdb_bench::{Dataset, Workload};
use tpdb_core::{lawan, lawau, overlapping_windows};
use tpdb_ta::{ta_negating_windows, ta_wuon_windows};

const SIZES: [usize; 4] = [1_000, 2_000, 4_000, 8_000];

fn bench_dataset(c: &mut Criterion, dataset: Dataset, figure: &str) {
    let mut group = c.benchmark_group(figure);
    group.sample_size(10);
    for &n in &SIZES {
        let w: Workload = dataset.generate(n, 42);
        let wuo = lawau(
            &overlapping_windows(&w.r, &w.s, &w.theta).expect("θ binds"),
            &w.r,
        );
        group.bench_with_input(BenchmarkId::new("NJ-WN", n), &wuo, |b, wuo| {
            b.iter(|| lawan(wuo));
        });
        group.bench_with_input(BenchmarkId::new("NJ-WUON", n), &w, |b, w| {
            b.iter(|| {
                let wo = overlapping_windows(&w.r, &w.s, &w.theta).expect("θ binds");
                lawan(&lawau(&wo, &w.r))
            });
        });
        group.bench_with_input(BenchmarkId::new("TA", n), &w, |b, w| {
            b.iter(|| {
                let _n = ta_negating_windows(&w.r, &w.s, &w.theta).expect("θ binds");
                ta_wuon_windows(&w.r, &w.s, &w.theta).expect("θ binds")
            });
        });
    }
    group.finish();
}

fn fig6a(c: &mut Criterion) {
    bench_dataset(c, Dataset::WebkitLike, "fig6a_negating_webkit");
}

fn fig6b(c: &mut Criterion) {
    bench_dataset(c, Dataset::MeteoLike, "fig6b_negating_meteo");
}

criterion_group!(benches, fig6a, fig6b);
criterion_main!(benches);
