//! Figure 7 — end-to-end runtime of the TP left outer join, NJ vs. TA, on
//! the Webkit-like (7a) and Meteo-like (7b) workloads.
//!
//! TA's end-to-end plan degenerates to nested loops (it cannot exploit θ
//! once the duplicate-eliminating union is in the plan), so the benchmark
//! cardinalities are kept small; the gap already spans 1–2 orders of
//! magnitude at these sizes and widens further at paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpdb_bench::{Dataset, Workload};
use tpdb_core::tp_left_outer_join;
use tpdb_ta::ta_left_outer_join;

const SIZES: [usize; 3] = [500, 1_000, 2_000];

fn bench_dataset(c: &mut Criterion, dataset: Dataset, figure: &str) {
    let mut group = c.benchmark_group(figure);
    group.sample_size(10);
    for &n in &SIZES {
        let w: Workload = dataset.generate(n, 42);
        group.bench_with_input(BenchmarkId::new("NJ", n), &w, |b, w| {
            b.iter(|| tp_left_outer_join(&w.r, &w.s, &w.theta).expect("θ binds"));
        });
        group.bench_with_input(BenchmarkId::new("TA", n), &w, |b, w| {
            b.iter(|| ta_left_outer_join(&w.r, &w.s, &w.theta).expect("θ binds"));
        });
    }
    group.finish();
}

fn fig7a(c: &mut Criterion) {
    bench_dataset(c, Dataset::WebkitLike, "fig7a_left_outer_webkit");
}

fn fig7b(c: &mut Criterion) {
    bench_dataset(c, Dataset::MeteoLike, "fig7b_left_outer_meteo");
}

criterion_group!(benches, fig7a, fig7b);
criterion_main!(benches);
