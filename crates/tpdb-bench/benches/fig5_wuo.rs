//! Figure 5 — runtime of computing the overlapping and unmatched windows
//! (WUO) for the NJ approach vs. the Temporal Alignment baseline, on the
//! Webkit-like (5a) and Meteo-like (5b) workloads.
//!
//! Cardinalities are scaled down from the paper's 50K–200K so that
//! `cargo bench` finishes in minutes; the full-scale sweep is available via
//! `cargo run --release -p tpdb-bench --bin experiments -- fig5 --full`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpdb_bench::{Dataset, Workload};
use tpdb_core::{LawauStream, OverlapWindowStream};
use tpdb_ta::ta_wuo_windows;

const SIZES: [usize; 4] = [1_000, 2_000, 4_000, 8_000];

fn bench_dataset(c: &mut Criterion, dataset: Dataset, figure: &str) {
    let mut group = c.benchmark_group(figure);
    group.sample_size(10);
    for &n in &SIZES {
        let w: Workload = dataset.generate(n, 42);
        group.bench_with_input(BenchmarkId::new("NJ", n), &w, |b, w| {
            // The streaming NJ pipeline: sweep overlap join → LAWAU, windows
            // consumed as they are produced (nothing materialized).
            b.iter(|| {
                let wo = OverlapWindowStream::new(&w.r, &w.s, &w.theta).expect("θ binds");
                LawauStream::new(wo, &w.r).count()
            });
        });
        group.bench_with_input(BenchmarkId::new("TA", n), &w, |b, w| {
            b.iter(|| ta_wuo_windows(&w.r, &w.s, &w.theta).expect("θ binds"));
        });
    }
    group.finish();
}

fn fig5a(c: &mut Criterion) {
    bench_dataset(c, Dataset::WebkitLike, "fig5a_wuo_webkit");
}

fn fig5b(c: &mut Criterion) {
    bench_dataset(c, Dataset::MeteoLike, "fig5b_wuo_meteo");
}

criterion_group!(benches, fig5a, fig5b);
criterion_main!(benches);
