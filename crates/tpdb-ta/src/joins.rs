//! End-to-end TP joins with negation computed via Temporal Alignment.
//!
//! The window sets are produced by the alignment-based routines of
//! [`crate::windows`]; output tuples are then formed exactly as in the NJ
//! approach (shared code in `tpdb_core::assemble_join_result`), so the two
//! systems return identical results and differ only in how the windows are
//! computed.
//!
//! Following the observation of the paper's evaluation (Section IV), the
//! end-to-end TA join cannot push the θ condition into its overlap joins and
//! alignment steps once the duplicate-eliminating union is part of the plan,
//! so the optimizer falls back to nested-loop plans — which is what makes TA
//! up to two orders of magnitude slower than NJ on the full TP outer join.

use crate::windows::{ta_wuo_with_plan, ta_wuon_with_plan};
use tpdb_core::{assemble_join_result, ThetaCondition, TpJoinKind, Window};
use tpdb_lineage::ProbabilityEngine;
use tpdb_storage::{StorageError, TpRelation};

/// TP inner join via Temporal Alignment.
pub fn ta_inner_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    ta_join(r, s, theta, TpJoinKind::Inner)
}

/// TP anti join via Temporal Alignment.
pub fn ta_anti_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    ta_join(r, s, theta, TpJoinKind::Anti)
}

/// TP left outer join via Temporal Alignment.
pub fn ta_left_outer_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    ta_join(r, s, theta, TpJoinKind::LeftOuter)
}

/// TP right outer join via Temporal Alignment.
pub fn ta_right_outer_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    ta_join(r, s, theta, TpJoinKind::RightOuter)
}

/// TP full outer join via Temporal Alignment.
pub fn ta_full_outer_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    ta_join(r, s, theta, TpJoinKind::FullOuter)
}

/// Any TP join with negation via Temporal Alignment.
///
/// Base-tuple probabilities are taken from the atomic lineages of the
/// inputs, as in [`tpdb_core::tp_join`].
pub fn ta_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
) -> Result<TpRelation, StorageError> {
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);
    ta_join_with_engine(r, s, theta, kind, &mut engine)
}

/// [`ta_join`] with an explicit probability engine.
pub fn ta_join_with_engine(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    engine: &mut ProbabilityEngine,
) -> Result<TpRelation, StorageError> {
    // Validate θ against the schemas up front (the *_with_plan helpers
    // expect a bindable condition).
    theta.bind(r.schema(), s.schema())?;

    // The end-to-end TA plan cannot exploit θ: nested loops everywhere.
    let use_hash = false;

    let left_windows: Vec<Window> = match kind {
        TpJoinKind::Inner | TpJoinKind::RightOuter => ta_wuo_with_plan(r, s, theta, use_hash)
            .into_iter()
            .filter(|w| w.is_overlapping())
            .collect(),
        TpJoinKind::Anti | TpJoinKind::LeftOuter | TpJoinKind::FullOuter => {
            ta_wuon_with_plan(r, s, theta, use_hash)
        }
    };

    let right_windows: Vec<Window> = match kind {
        TpJoinKind::RightOuter | TpJoinKind::FullOuter => {
            ta_wuon_with_plan(s, r, &theta.flipped(), use_hash)
        }
        _ => Vec::new(),
    };

    Ok(assemble_join_result(
        r,
        s,
        kind,
        &left_windows,
        &right_windows,
        engine,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_core::{
        tp_anti_join, tp_full_outer_join, tp_inner_join, tp_left_outer_join, tp_right_outer_join,
    };
    use tpdb_lineage::{Lineage, SymbolTable};
    use tpdb_storage::{DataType, Schema, TpTuple, Value};
    use tpdb_temporal::Interval;

    fn booking() -> (TpRelation, TpRelation) {
        let mut syms = SymbolTable::new();
        let mut a = TpRelation::new(
            "a",
            Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]),
        );
        for (name, loc, iv, p) in [("Ann", "ZAK", (2, 8), 0.7), ("Jim", "WEN", (7, 10), 0.8)] {
            let var = syms.fresh("a");
            a.push(TpTuple::new(
                vec![Value::str(name), Value::str(loc)],
                Lineage::var(var),
                Interval::new(iv.0, iv.1),
                p,
            ))
            .unwrap();
        }
        let mut b = TpRelation::new(
            "b",
            Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]),
        );
        for (h, loc, iv, p) in [
            ("hotel3", "SOR", (1, 4), 0.9),
            ("hotel2", "ZAK", (5, 8), 0.6),
            ("hotel1", "ZAK", (4, 6), 0.7),
        ] {
            let var = syms.fresh("b");
            b.push(TpTuple::new(
                vec![Value::str(h), Value::str(loc)],
                Lineage::var(var),
                Interval::new(iv.0, iv.1),
                p,
            ))
            .unwrap();
        }
        (a, b)
    }

    fn theta() -> ThetaCondition {
        ThetaCondition::column_equals("Loc", "Loc")
    }

    /// Canonical form of a join result: facts + interval + rounded
    /// probability, sorted. Lineage syntax may differ between the systems
    /// (e.g. operand order), but semantics — and thus probabilities — must
    /// agree.
    fn canon(rel: &TpRelation) -> Vec<(Vec<String>, i64, i64, i64)> {
        let mut rows: Vec<(Vec<String>, i64, i64, i64)> = rel
            .iter()
            .map(|t| {
                (
                    t.facts().iter().map(|v| v.to_string()).collect(),
                    t.interval().start(),
                    t.interval().end(),
                    (t.probability() * 1e9).round() as i64,
                )
            })
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn ta_left_outer_matches_nj_on_paper_example() {
        let (a, b) = booking();
        let nj = tp_left_outer_join(&a, &b, &theta()).unwrap();
        let ta = ta_left_outer_join(&a, &b, &theta()).unwrap();
        assert_eq!(nj.len(), 7);
        assert_eq!(canon(&nj), canon(&ta));
    }

    #[test]
    fn ta_anti_matches_nj() {
        let (a, b) = booking();
        let nj = tp_anti_join(&a, &b, &theta()).unwrap();
        let ta = ta_anti_join(&a, &b, &theta()).unwrap();
        assert_eq!(canon(&nj), canon(&ta));
    }

    #[test]
    fn ta_inner_matches_nj() {
        let (a, b) = booking();
        let nj = tp_inner_join(&a, &b, &theta()).unwrap();
        let ta = ta_inner_join(&a, &b, &theta()).unwrap();
        assert_eq!(canon(&nj), canon(&ta));
    }

    #[test]
    fn ta_right_outer_matches_nj() {
        let (a, b) = booking();
        let nj = tp_right_outer_join(&a, &b, &theta()).unwrap();
        let ta = ta_right_outer_join(&a, &b, &theta()).unwrap();
        assert_eq!(canon(&nj), canon(&ta));
    }

    #[test]
    fn ta_full_outer_matches_nj() {
        let (a, b) = booking();
        let nj = tp_full_outer_join(&a, &b, &theta()).unwrap();
        let ta = ta_full_outer_join(&a, &b, &theta()).unwrap();
        assert_eq!(canon(&nj), canon(&ta));
    }

    #[test]
    fn ta_rejects_unknown_columns() {
        let (a, b) = booking();
        let bad = ThetaCondition::column_equals("Nope", "Loc");
        assert!(ta_left_outer_join(&a, &b, &bad).is_err());
    }
}
