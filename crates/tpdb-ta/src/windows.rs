//! Window computation the Temporal Alignment way.
//!
//! TA derives the same three window classes as the lineage-aware approach,
//! but with the redundancies the paper measures:
//!
//! * [`ta_wuo_windows`] runs the conventional overlap join **twice** — once
//!   to obtain the overlapping windows, and a second alignment pass to find
//!   the unmatched sub-intervals.
//! * [`ta_negating_windows`] aligns the positive relation yet again and then
//!   re-scans the matching negative tuples for every aligned fragment to
//!   assemble the disjunction `λs`.
//! * [`ta_wuon_windows`] unions the two results and has to eliminate the
//!   unmatched windows that were computed twice.

use crate::align::align_bound;
use tpdb_core::{overlapping_windows_with_plan, OverlapJoinPlan, ThetaCondition, Window};
use tpdb_storage::{StorageError, TpRelation};
use tpdb_temporal::{Interval, TimePoint};

/// Overlapping + unmatched windows (`WUO`), computed the TA way: the overlap
/// join runs once for the overlapping windows and the alignment pass
/// (effectively a second overlap join) recomputes the matches to find the
/// unmatched sub-intervals.
pub fn ta_wuo_windows(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<Vec<Window>, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    Ok(ta_wuo_with_plan(r, s, theta, bound.is_equi_join()))
}

/// [`ta_wuo_windows`] with an explicit plan choice (`use_hash = false`
/// forces nested loops, as in the end-to-end TA join).
#[must_use]
pub fn ta_wuo_with_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    use_hash: bool,
) -> Vec<Window> {
    let bound = theta
        .bind(r.schema(), s.schema())
        .expect("θ condition must bind to the input schemas");
    // TA models the plan a conventional DBMS picks inside the alignment
    // operator: a hash join when θ is usable as an equi-join, nested loops
    // otherwise. (The sweep plan is NJ's; TA never gets it.)
    let plan = if use_hash && bound.is_equi_join() {
        OverlapJoinPlan::Hash
    } else {
        OverlapJoinPlan::NestedLoop
    };

    // Pass 1: conventional overlap join — overlapping windows (and the
    // whole-interval unmatched windows of tuples with no match at all).
    let mut windows: Vec<Window> = overlapping_windows_with_plan(r, s, &bound, plan)
        .expect("plan is chosen to match θ")
        .into_iter()
        .filter(|w| w.is_overlapping())
        .collect();

    // Pass 2: alignment — recompute the matches of every r tuple to find the
    // uncovered fragments, which become the unmatched windows.
    let fragments = align_bound(r, s, &bound, use_hash);
    for frag in fragments {
        if !frag.covered {
            let rt = r.tuple(frag.r_idx);
            windows.push(Window::unmatched(
                frag.interval,
                frag.r_idx,
                rt.lineage().clone(),
            ));
        }
    }

    windows.sort_by_key(|w| (w.r_idx, w.interval.start(), w.interval.end()));
    windows
}

/// Negating windows computed the TA way: align the positive relation against
/// the negative one and, for every covered fragment, re-scan the matching
/// negative tuples to build the disjunction of their lineages.
pub fn ta_negating_windows(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<Vec<Window>, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    Ok(ta_negating_with_plan(r, s, theta, bound.is_equi_join()))
}

/// [`ta_negating_windows`] with an explicit plan choice.
#[must_use]
pub fn ta_negating_with_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    use_hash: bool,
) -> Vec<Window> {
    let bound = theta
        .bind(r.schema(), s.schema())
        .expect("θ condition must bind to the input schemas");

    // Candidate lookup structure (hash partition of s on the equi-join key
    // when the plan is allowed to exploit θ).
    let partitions: Option<std::collections::HashMap<Vec<tpdb_storage::Value>, Vec<usize>>> =
        if use_hash && bound.is_equi_join() {
            let mut map: std::collections::HashMap<_, Vec<usize>> =
                std::collections::HashMap::new();
            for (si, st) in s.iter().enumerate() {
                map.entry(bound.right_key(st)).or_default().push(si);
            }
            Some(map)
        } else {
            None
        };

    let mut out = Vec::new();
    let mut candidates: Vec<usize> = Vec::new();
    for (ri, rt) in r.iter().enumerate() {
        let r_iv = rt.interval();
        candidates.clear();
        match &partitions {
            Some(map) => {
                if let Some(list) = map.get(&bound.left_key(rt)) {
                    candidates.extend_from_slice(list);
                }
            }
            None => candidates.extend(0..s.len()),
        }
        // Re-derive the matching overlaps of this tuple (alignment pass),
        // replicating the overlap computation that LAWAN gets for free from
        // the already-computed overlapping windows.
        let mut matches: Vec<(Interval, usize)> = Vec::new();
        let mut boundaries: Vec<TimePoint> = vec![r_iv.start(), r_iv.end()];
        for &si in &candidates {
            let st = s.tuple(si);
            if !bound.matches(rt, st) {
                continue;
            }
            if let Some(overlap) = r_iv.intersect(&st.interval()) {
                boundaries.push(overlap.start());
                boundaries.push(overlap.end());
                matches.push((overlap, si));
            }
        }
        if matches.is_empty() {
            continue;
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        // One pass per fragment over the matches of the tuple: quadratic in
        // the per-tuple match count, which is TA's replication overhead.
        for pair in boundaries.windows(2) {
            let fragment = Interval::new(pair[0], pair[1]);
            let disjuncts: Vec<tpdb_lineage::Lineage> = matches
                .iter()
                .filter(|(overlap, _)| overlap.contains(&fragment))
                .map(|(_, si)| s.tuple(*si).lineage().clone())
                .collect();
            if disjuncts.is_empty() {
                continue; // uncovered fragment: an unmatched window, not a negating one
            }
            out.push(Window::negating(
                fragment,
                ri,
                rt.lineage().clone(),
                tpdb_lineage::Lineage::or(disjuncts),
            ));
        }
    }
    out.sort_by_key(|w| (w.r_idx, w.interval.start(), w.interval.end()));
    out
}

/// `WUON` — all three window classes, computed the TA way and combined with
/// a duplicate-eliminating union (the unmatched windows are produced by both
/// sub-computations and must be de-duplicated, exactly the overhead the
/// paper attributes to TA's union step).
pub fn ta_wuon_windows(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<Vec<Window>, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    Ok(ta_wuon_with_plan(r, s, theta, bound.is_equi_join()))
}

/// [`ta_wuon_windows`] with an explicit plan choice.
#[must_use]
pub fn ta_wuon_with_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    use_hash: bool,
) -> Vec<Window> {
    let wuo = ta_wuo_with_plan(r, s, theta, use_hash);
    let negating = ta_negating_with_plan(r, s, theta, use_hash);

    // The negating computation re-derives the unmatched fragments as part of
    // its alignment pass; emulate TA's union by concatenating both results
    // (including those re-derived unmatched windows) and eliminating
    // duplicates afterwards.
    let bound = theta
        .bind(r.schema(), s.schema())
        .expect("θ condition must bind to the input schemas");
    let re_derived_unmatched: Vec<Window> = align_bound(r, s, &bound, use_hash)
        .into_iter()
        .filter(|f| !f.covered)
        .map(|f| Window::unmatched(f.interval, f.r_idx, r.tuple(f.r_idx).lineage().clone()))
        .collect();

    let mut all = wuo;
    all.extend(re_derived_unmatched);
    all.extend(negating);
    all.sort_by(|a, b| {
        (
            a.r_idx,
            a.interval.start(),
            a.interval.end(),
            a.kind as u8,
            a.s_idx,
        )
            .cmp(&(
                b.r_idx,
                b.interval.start(),
                b.interval.end(),
                b.kind as u8,
                b.s_idx,
            ))
    });
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_core::{lawan, lawau, overlapping_windows, WindowKind};
    use tpdb_lineage::{Lineage, SymbolTable};
    use tpdb_storage::{DataType, Schema, TpTuple, Value};
    use tpdb_temporal::Interval;

    fn booking() -> (TpRelation, TpRelation) {
        let mut syms = SymbolTable::new();
        let mut a = TpRelation::new(
            "a",
            Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]),
        );
        for (name, loc, iv, p) in [("Ann", "ZAK", (2, 8), 0.7), ("Jim", "WEN", (7, 10), 0.8)] {
            let var = syms.fresh("a");
            a.push(TpTuple::new(
                vec![Value::str(name), Value::str(loc)],
                Lineage::var(var),
                Interval::new(iv.0, iv.1),
                p,
            ))
            .unwrap();
        }
        let mut b = TpRelation::new(
            "b",
            Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]),
        );
        for (h, loc, iv, p) in [
            ("hotel3", "SOR", (1, 4), 0.9),
            ("hotel2", "ZAK", (5, 8), 0.6),
            ("hotel1", "ZAK", (4, 6), 0.7),
        ] {
            let var = syms.fresh("b");
            b.push(TpTuple::new(
                vec![Value::str(h), Value::str(loc)],
                Lineage::var(var),
                Interval::new(iv.0, iv.1),
                p,
            ))
            .unwrap();
        }
        (a, b)
    }

    fn theta() -> ThetaCondition {
        ThetaCondition::column_equals("Loc", "Loc")
    }

    /// Canonical form for window-set comparison: ignore input ordering.
    fn canon(mut ws: Vec<Window>) -> Vec<(usize, WindowKind, i64, i64)> {
        ws.sort_by_key(|w| {
            (
                w.r_idx,
                w.interval.start(),
                w.interval.end(),
                w.kind as u8,
                w.s_idx,
            )
        });
        ws.iter()
            .map(|w| (w.r_idx, w.kind, w.interval.start(), w.interval.end()))
            .collect()
    }

    #[test]
    fn ta_wuo_matches_nj_wuo_on_paper_example() {
        let (a, b) = booking();
        let nj = lawau(&overlapping_windows(&a, &b, &theta()).unwrap(), &a);
        let ta = ta_wuo_windows(&a, &b, &theta()).unwrap();
        assert_eq!(canon(nj), canon(ta));
    }

    #[test]
    fn ta_negating_matches_nj_negating_on_paper_example() {
        let (a, b) = booking();
        let nj: Vec<Window> = lawan(&lawau(&overlapping_windows(&a, &b, &theta()).unwrap(), &a))
            .into_iter()
            .filter(|w| w.is_negating())
            .collect();
        let ta = ta_negating_windows(&a, &b, &theta()).unwrap();
        assert_eq!(canon(nj), canon(ta.clone()));
        // λs of the [5,6) window must be a two-way disjunction in both
        let w = ta
            .iter()
            .find(|w| w.interval == Interval::new(5, 6))
            .unwrap();
        match w.lambda_s.as_ref().unwrap().node() {
            tpdb_lineage::LineageNode::Or(cs) => assert_eq!(cs.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn ta_wuon_matches_nj_wuon_on_paper_example() {
        let (a, b) = booking();
        let nj = lawan(&lawau(&overlapping_windows(&a, &b, &theta()).unwrap(), &a));
        let ta = ta_wuon_windows(&a, &b, &theta()).unwrap();
        assert_eq!(canon(nj), canon(ta));
    }

    #[test]
    fn union_removes_duplicate_unmatched_windows() {
        let (a, b) = booking();
        let ta = ta_wuon_windows(&a, &b, &theta()).unwrap();
        // unmatched windows appear exactly once despite being computed twice
        let unmatched: Vec<&Window> = ta.iter().filter(|w| w.is_unmatched()).collect();
        assert_eq!(unmatched.len(), 2);
    }

    #[test]
    fn nested_loop_plan_produces_identical_windows() {
        let (a, b) = booking();
        let hash = ta_wuon_with_plan(&a, &b, &theta(), true);
        let nl = ta_wuon_with_plan(&a, &b, &theta(), false);
        assert_eq!(canon(hash), canon(nl));
    }
}
