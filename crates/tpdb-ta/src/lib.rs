//! # tpdb-ta
//!
//! The **Temporal Alignment (TA)** baseline: the adjustment-operator
//! approach of Dignös, Böhlen, Gamper and Jensen (*"Extending the Kernel of
//! a Relational DBMS with Comprehensive Support for Sequenced Temporal
//! Queries"*, TODS 2016), adapted to temporal-probabilistic joins with
//! negation. This is the only prior approach the paper identifies as
//! adaptable to TP joins with negation and it is the comparison system of
//! the evaluation section.
//!
//! TA works by *aligning* (splitting) the tuples of the positive relation at
//! the interval boundaries of the matching tuples of the negative relation,
//! replicating a tuple once per produced fragment, and then running
//! conventional (non-temporal) joins over the aligned fragments. Compared to
//! the lineage-aware window approach (NJ) of `tpdb-core` this has three
//! sources of overhead, all called out in Section IV of the paper:
//!
//! 1. the conventional overlap join is executed **twice** when computing the
//!    overlapping and unmatched windows (`WUO`),
//! 2. the negating windows are computed by re-scanning the matching tuples
//!    for every aligned fragment (tuple replication + recomputation),
//! 3. the final union has to eliminate the unmatched windows that were
//!    computed twice, and because the θ condition is not usable at that
//!    stage the engine falls back to nested-loop plans.
//!
//! Both systems produce identical results — the integration tests assert
//! NJ ≡ TA on randomized inputs — only their costs differ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod align;
mod joins;
mod windows;

pub use align::{align, AlignedFragment};
pub use joins::{
    ta_anti_join, ta_full_outer_join, ta_inner_join, ta_join, ta_left_outer_join,
    ta_right_outer_join,
};
pub use windows::{ta_negating_windows, ta_wuo_windows, ta_wuon_windows};
