//! The temporal alignment (adjustment) primitive.
//!
//! `align(r, s, θ)` splits every tuple of `r` at the interval boundaries of
//! the θ-matching tuples of `s`, producing one *fragment* per elementary
//! sub-interval. A fragment is a replicated copy of the originating tuple
//! restricted to the sub-interval — this tuple replication is the defining
//! characteristic (and the main cost) of the alignment approach.

use tpdb_core::{BoundTheta, ThetaCondition};
use tpdb_storage::{StorageError, TpRelation};
use tpdb_temporal::{Interval, TimePoint};

/// A fragment of an `r` tuple produced by temporal alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedFragment {
    /// Index of the originating tuple in the positive relation.
    pub r_idx: usize,
    /// The fragment's sub-interval of the originating tuple's interval.
    pub interval: Interval,
    /// Whether at least one θ-matching tuple of `s` is valid over the
    /// fragment (fragments with `covered == false` correspond to the
    /// unmatched portions of the tuple).
    pub covered: bool,
}

/// Splits every tuple of `r` at the boundaries of the θ-matching tuples of
/// `s`. When θ is an equi-join the matching tuples are found through a hash
/// partition of `s` (the plan a DBMS would pick inside the alignment
/// operator); otherwise every pair is compared.
pub fn align(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<Vec<AlignedFragment>, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    Ok(align_bound(r, s, &bound, bound.is_equi_join()))
}

/// [`align`] with a pre-bound θ condition and an explicit plan choice:
/// `use_hash = false` forces the nested-loop alignment the paper observes in
/// the end-to-end TA join, where the optimizer can no longer exploit θ.
#[must_use]
pub fn align_bound(
    r: &TpRelation,
    s: &TpRelation,
    bound: &BoundTheta,
    use_hash: bool,
) -> Vec<AlignedFragment> {
    // Hash partition of s on the equi-join key (only used when allowed).
    let partitions: Option<std::collections::HashMap<Vec<tpdb_storage::Value>, Vec<usize>>> =
        if use_hash && bound.is_equi_join() {
            let mut map: std::collections::HashMap<_, Vec<usize>> =
                std::collections::HashMap::new();
            for (si, st) in s.iter().enumerate() {
                map.entry(bound.right_key(st)).or_default().push(si);
            }
            Some(map)
        } else {
            None
        };

    let mut fragments = Vec::new();
    let mut candidate_buf: Vec<usize> = Vec::new();
    for (ri, rt) in r.iter().enumerate() {
        let r_iv = rt.interval();
        // Candidate s tuples for this r tuple.
        candidate_buf.clear();
        match &partitions {
            Some(map) => {
                if let Some(list) = map.get(&bound.left_key(rt)) {
                    candidate_buf.extend_from_slice(list);
                }
            }
            None => candidate_buf.extend(0..s.len()),
        }
        // Collect the boundaries of every matching s tuple that fall inside
        // the r tuple's interval.
        let mut boundaries: Vec<TimePoint> = vec![r_iv.start(), r_iv.end()];
        let mut matching: Vec<Interval> = Vec::new();
        for &si in &candidate_buf {
            let st = s.tuple(si);
            if !bound.matches(rt, st) {
                continue;
            }
            let Some(overlap) = r_iv.intersect(&st.interval()) else {
                continue;
            };
            matching.push(overlap);
            boundaries.push(overlap.start());
            boundaries.push(overlap.end());
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        // One fragment per consecutive pair of boundaries.
        for pair in boundaries.windows(2) {
            let interval = Interval::new(pair[0], pair[1]);
            let covered = matching.iter().any(|m| m.overlaps(&interval));
            fragments.push(AlignedFragment {
                r_idx: ri,
                interval,
                covered,
            });
        }
    }
    fragments
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_lineage::{Lineage, SymbolTable};
    use tpdb_storage::{DataType, Schema, TpTuple, Value};

    fn one_tuple_relation(
        name: &str,
        key: i64,
        iv: (i64, i64),
        syms: &mut SymbolTable,
    ) -> TpRelation {
        let mut r = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
        r.push(TpTuple::new(
            vec![Value::Int(key)],
            Lineage::var(syms.intern(&format!("{name}1"))),
            Interval::new(iv.0, iv.1),
            0.5,
        ))
        .unwrap();
        r
    }

    fn many_tuple_relation(
        name: &str,
        key: i64,
        ivs: &[(i64, i64)],
        syms: &mut SymbolTable,
    ) -> TpRelation {
        let mut r = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
        for (i, iv) in ivs.iter().enumerate() {
            r.push(TpTuple::new(
                vec![Value::Int(key)],
                Lineage::var(syms.intern(&format!("{name}{i}"))),
                Interval::new(iv.0, iv.1),
                0.5,
            ))
            .unwrap();
        }
        r
    }

    #[test]
    fn fragments_partition_the_tuple_interval() {
        let mut syms = SymbolTable::new();
        let r = one_tuple_relation("r", 1, (0, 20), &mut syms);
        let s = many_tuple_relation("s", 1, &[(2, 6), (4, 10), (15, 25)], &mut syms);
        let theta = ThetaCondition::column_equals("k", "k");
        let frags = align(&r, &s, &theta).unwrap();
        // fragments are contiguous and partition [0, 20)
        assert_eq!(frags.first().unwrap().interval.start(), 0);
        assert_eq!(frags.last().unwrap().interval.end(), 20);
        for pair in frags.windows(2) {
            assert_eq!(pair[0].interval.end(), pair[1].interval.start());
        }
        let total: i64 = frags.iter().map(|f| f.interval.duration()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn covered_flag_matches_overlap() {
        let mut syms = SymbolTable::new();
        let r = one_tuple_relation("r", 1, (0, 10), &mut syms);
        let s = many_tuple_relation("s", 1, &[(3, 6)], &mut syms);
        let theta = ThetaCondition::column_equals("k", "k");
        let frags = align(&r, &s, &theta).unwrap();
        assert_eq!(frags.len(), 3);
        assert!(!frags[0].covered);
        assert_eq!(frags[0].interval, Interval::new(0, 3));
        assert!(frags[1].covered);
        assert_eq!(frags[1].interval, Interval::new(3, 6));
        assert!(!frags[2].covered);
        assert_eq!(frags[2].interval, Interval::new(6, 10));
    }

    #[test]
    fn non_matching_tuples_produce_one_uncovered_fragment() {
        let mut syms = SymbolTable::new();
        let r = one_tuple_relation("r", 1, (0, 10), &mut syms);
        let s = many_tuple_relation("s", 2, &[(3, 6)], &mut syms); // different key
        let theta = ThetaCondition::column_equals("k", "k");
        let frags = align(&r, &s, &theta).unwrap();
        assert_eq!(
            frags,
            vec![AlignedFragment {
                r_idx: 0,
                interval: Interval::new(0, 10),
                covered: false
            }]
        );
    }

    #[test]
    fn replication_grows_with_matching_tuples() {
        let mut syms = SymbolTable::new();
        let r = one_tuple_relation("r", 1, (0, 100), &mut syms);
        let s = many_tuple_relation(
            "s",
            1,
            &(0..10).map(|i| (i * 10, i * 10 + 5)).collect::<Vec<_>>(),
            &mut syms,
        );
        let theta = ThetaCondition::column_equals("k", "k");
        let frags = align(&r, &s, &theta).unwrap();
        // 10 covered + 10 gaps = 20 fragments for a single input tuple:
        // alignment replicates aggressively.
        assert_eq!(frags.len(), 20);
        assert_eq!(frags.iter().filter(|f| f.covered).count(), 10);
    }

    #[test]
    fn empty_negative_relation_keeps_whole_tuples() {
        let mut syms = SymbolTable::new();
        let r = one_tuple_relation("r", 1, (5, 9), &mut syms);
        let s = TpRelation::new("s", Schema::tp(&[("k", DataType::Int)]));
        let theta = ThetaCondition::column_equals("k", "k");
        let frags = align(&r, &s, &theta).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].interval, Interval::new(5, 9));
        assert!(!frags[0].covered);
    }
}
