//! Concurrency properties of the server: N clients hammering one server
//! get results byte-identical to a serial in-process `Session` run, and
//! interleaved catalog swaps never produce a torn read.

use std::collections::HashSet;
use tpdb_query::Session;
use tpdb_server::{protocol, Client, Server, ServerConfig};
use tpdb_storage::Catalog;

/// All five TP join kinds plus a set operation, over the meteo workload.
const QUERIES: [&str; 6] = [
    "SELECT * FROM meteo_r TP INNER JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric",
    "SELECT * FROM meteo_r TP LEFT JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric",
    "SELECT * FROM meteo_r TP RIGHT JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric",
    "SELECT * FROM meteo_r TP FULL OUTER JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric",
    "SELECT * FROM meteo_r TP ANTI JOIN meteo_s ON meteo_r.Metric = meteo_s.Metric",
    "SELECT * FROM meteo_r UNION SELECT * FROM meteo_s",
];

fn meteo_catalog(tuples: usize, seed: u64) -> Catalog {
    let (r, s) = tpdb_datagen::meteo_like(tuples, seed);
    let mut catalog = Catalog::new();
    catalog.register(r).unwrap();
    catalog.register(s).unwrap();
    catalog
}

/// Renders the serial reference result of `query` exactly as the server
/// renders its response rows.
fn serial_rows(session: &Session, query: &str) -> Vec<String> {
    protocol::render_relation_rows(&session.execute(query).unwrap())
}

#[test]
fn concurrent_prepared_queries_match_serial_execution_byte_for_byte() {
    let catalog = meteo_catalog(200, 7);
    let mut serial = Session::new(catalog.clone());
    serial.set_parallelism(1);
    let expected: Vec<Vec<String>> = QUERIES.iter().map(|q| serial_rows(&serial, q)).collect();
    assert!(
        expected.iter().any(|rows| !rows.is_empty()),
        "degenerate workload: every reference result is empty"
    );

    let server = Server::start(
        catalog,
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            parallelism: 1,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Prepare each statement once (connection-local names),
                // then execute it repeatedly through the shared cache.
                for (i, query) in QUERIES.iter().enumerate() {
                    let slots = client.prepare(&format!("q{i}"), query).unwrap();
                    assert_eq!(slots, 0);
                }
                for round in 0..3 {
                    for (i, reference) in expected.iter().enumerate() {
                        let got = client.execute(&format!("q{i}"), &[]).unwrap();
                        assert_eq!(
                            &got.rows, reference,
                            "round {round}, query {i}: server rows diverge from serial run"
                        );
                    }
                }
                client.close().unwrap();
            });
        }
    });

    let stats = server.shutdown();
    assert_eq!(stats.connections, 4);
    // 4 clients × (6 prepares + 3 rounds × 6 executes) all planned through
    // the shared cache: after the first few misses everything hits.
    assert!(stats.cache_hits > stats.cache_misses, "{stats:?}");
}

#[test]
fn interleaved_catalog_swaps_never_yield_a_torn_read() {
    let dir = std::env::temp_dir().join(format!("tpdb-server-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("state-a.snap");
    let path_b = dir.join("state-b.snap");

    // Two complete catalog states with the same relation names but
    // different contents (different seeds).
    let catalog_a = meteo_catalog(120, 11);
    let catalog_b = meteo_catalog(120, 29);
    catalog_a.save_snapshot(&path_a).unwrap();
    catalog_b.save_snapshot(&path_b).unwrap();

    let query = QUERIES[1]; // TP LEFT JOIN
    let mut serial_a = Session::new(catalog_a.clone());
    serial_a.set_parallelism(1);
    let mut serial_b = Session::new(catalog_b.clone());
    serial_b.set_parallelism(1);
    let rows_a = serial_rows(&serial_a, query);
    let rows_b = serial_rows(&serial_b, query);
    assert_ne!(rows_a, rows_b, "states must be distinguishable");

    let server = Server::start(
        catalog_a,
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            parallelism: 1,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut seen = HashSet::new();
    std::thread::scope(|scope| {
        // One writer flips the catalog between the two states via the
        // atomic snapshot-load path.
        let writer = scope.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            for i in 0..10 {
                let path = if i % 2 == 0 { &path_b } else { &path_a };
                client
                    .query(&format!("LOAD SNAPSHOT '{}'", path.display()))
                    .unwrap();
            }
            client.close().unwrap();
        });
        // Readers hammer the join; every answer must be exactly one of the
        // two serial renderings — old epoch or new epoch, never a mix.
        let mut readers = Vec::new();
        for _ in 0..3 {
            readers.push(scope.spawn(|| {
                let mut client = Client::connect(addr).unwrap();
                let mut observed = HashSet::new();
                for _ in 0..20 {
                    let got = client.query(query).unwrap();
                    let state = if got.rows == rows_a {
                        "a"
                    } else if got.rows == rows_b {
                        "b"
                    } else {
                        panic!("torn read: rows match neither catalog state");
                    };
                    observed.insert(state);
                }
                client.close().unwrap();
                observed
            }));
        }
        writer.join().unwrap();
        for reader in readers {
            seen.extend(reader.join().unwrap());
        }
    });
    // The flipping writer ran concurrently, so readers should have seen
    // both states (not strictly guaranteed, but with 10 flips against 60
    // reads a single-state run would itself be suspicious).
    assert!(!seen.is_empty());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
