//! Server lifecycle: protocol commands, typed error paths, backpressure
//! (`ServerBusy`) and graceful shutdown (`ServerShuttingDown`).

use std::time::{Duration, Instant};
use tpdb_server::{Client, ClientError, ErrorCode, Server, ServerConfig, ServerHandle};
use tpdb_storage::{Catalog, Value};

fn booking_server(config: ServerConfig) -> ServerHandle {
    let mut catalog = Catalog::new();
    let (a, b) = tpdb_datagen::booking_example();
    catalog.register(a).unwrap();
    catalog.register(b).unwrap();
    Server::start(catalog, config).unwrap()
}

/// Polls `cond` on the server stats until it holds (or panics after 5s).
fn wait_for(server: &ServerHandle, what: &str, cond: impl Fn(tpdb_server::ServerStats) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond(server.stats()) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn server_code(err: &ClientError) -> Option<ErrorCode> {
    err.server_code()
}

#[test]
fn protocol_commands_round_trip() {
    let server = booking_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    client.ping().unwrap();

    // Plain query.
    let rows = client
        .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
        .unwrap();
    assert_eq!(rows.rows.len(), 7);
    assert!(rows.schema.contains("Name:STR"), "{}", rows.schema);

    // Prepare/execute with a bound string parameter.
    let slots = client
        .prepare("by_name", "SELECT Name FROM a WHERE Name = $1")
        .unwrap();
    assert_eq!(slots, 1);
    let ann = client.execute("by_name", &[Value::str("Ann")]).unwrap();
    assert_eq!(ann.rows.len(), 1);
    assert!(ann.rows[0].starts_with("Ann\t"), "{:?}", ann.rows);

    // EXPLAIN returns the plan without executing.
    let plan = client
        .explain("SELECT * FROM a TP ANTI JOIN b ON a.Loc = b.Loc")
        .unwrap();
    assert!(
        plan.iter().any(|l| l.contains("TpJoin")),
        "unexpected EXPLAIN output: {plan:?}"
    );

    // STATS reports counters as key=value lines.
    let stats = client.stats().unwrap();
    assert!(stats.iter().any(|l| l.starts_with("connections=")));
    assert!(stats.iter().any(|l| l.starts_with("schema_epoch=")));

    client.close().unwrap();
    let final_stats = server.shutdown();
    assert_eq!(final_stats.connections, 1);
    assert!(final_stats.executed >= 2);
}

#[test]
fn snapshot_statements_flow_through_the_server() {
    let dir = std::env::temp_dir().join(format!("tpdb-server-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("booking.snap");

    let server = booking_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let reference = client
        .query("SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc")
        .unwrap();

    // SAVE reports one (Relation, Tuples) row per relation.
    let summary = client
        .query(&format!("SAVE SNAPSHOT '{}'", path.display()))
        .unwrap();
    assert_eq!(summary.rows.len(), 2);
    assert!(summary.rows[0].starts_with("a\t"), "{:?}", summary.rows);

    // LOAD swaps the catalog atomically; the query answers identically.
    let loaded = client
        .query(&format!("LOAD SNAPSHOT '{}'", path.display()))
        .unwrap();
    assert_eq!(loaded.rows.len(), 2);
    let after = client
        .query("SELECT * FROM a TP FULL OUTER JOIN b ON a.Loc = b.Loc")
        .unwrap();
    assert_eq!(after, reference);

    client.close().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_errors_come_back_as_typed_wire_errors() {
    let server = booking_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Parse error.
    let err = client.query("SELECT FROM WHERE").unwrap_err();
    assert_eq!(server_code(&err), Some(ErrorCode::Parse), "{err}");

    // Unknown relation → storage error.
    let err = client.query("SELECT * FROM missing").unwrap_err();
    assert_eq!(server_code(&err), Some(ErrorCode::Storage), "{err}");

    // Parameterized statement executed bare → parameter-count error.
    client
        .prepare("p1", "SELECT * FROM a WHERE Name = $1")
        .unwrap();
    let err = client.execute("p1", &[]).unwrap_err();
    assert_eq!(server_code(&err), Some(ErrorCode::ParameterCount), "{err}");

    // Unknown prepared statement and malformed request → protocol errors.
    let err = client.execute("nope", &[]).unwrap_err();
    assert_eq!(server_code(&err), Some(ErrorCode::Protocol), "{err}");
    let err = client.request("SLEEP never").unwrap_err();
    assert_eq!(server_code(&err), Some(ErrorCode::Protocol), "{err}");

    // The connection survives every error above.
    client.ping().unwrap();
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn full_admission_queue_rejects_with_server_busy() {
    let server = booking_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        parallelism: 1,
    });
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        // A occupies the only worker ...
        let a = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.sleep_ms(400).unwrap();
            client.close().unwrap();
        });
        wait_for(&server, "A to start executing", |s| s.executing == 1);

        // ... B fills the depth-1 queue ...
        let b = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.sleep_ms(1).unwrap();
            client.close().unwrap();
        });
        wait_for(&server, "B to be queued", |s| s.queued == 1);

        // ... so C is rejected immediately with the typed backpressure
        // error instead of waiting.
        let mut c = Client::connect(addr).unwrap();
        let before = Instant::now();
        let err = c.ping().unwrap_err();
        assert_eq!(server_code(&err), Some(ErrorCode::ServerBusy), "{err}");
        assert!(
            before.elapsed() < Duration::from_millis(300),
            "busy rejection must not wait for the queue"
        );
        c.close().unwrap();

        a.join().unwrap();
        b.join().unwrap();
    });

    let stats = server.shutdown();
    assert!(stats.busy_rejections >= 1, "{stats:?}");
}

#[test]
fn graceful_shutdown_drains_in_flight_and_rejects_queued_requests() {
    let server = booking_server(ServerConfig {
        workers: 1,
        queue_depth: 4,
        parallelism: 1,
    });
    let addr = server.local_addr();

    let a = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.request("SLEEP 600")
    });
    // Wait for A to hold the worker, then pile two requests into the
    // queue behind it.
    wait_for(&server, "A to start executing", |s| s.executing == 1);
    let queued: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.ping()
            })
        })
        .collect();
    wait_for(&server, "B and C to be queued", |s| s.queued == 2);

    // Shutdown: A (in flight) drains and succeeds; B and C (queued, never
    // started) get the typed shutdown error; the call joins every thread.
    let stats = server.shutdown();

    assert!(a.join().unwrap().is_ok(), "in-flight request must drain");
    for handle in queued {
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(
            server_code(&err),
            Some(ErrorCode::ServerShuttingDown),
            "{err}"
        );
    }
    assert!(stats.shutdown_rejections >= 2, "{stats:?}");
    assert_eq!(stats.executing, 0, "{stats:?}");

    // The listener is closed: new connections are refused (or at best
    // cannot complete a request).
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut client) => assert!(
            client.ping().is_err(),
            "server still answering after shutdown"
        ),
    }
}

#[test]
fn dropping_the_handle_shuts_down_without_hanging() {
    let server = booking_server(ServerConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    drop(server); // must join every thread, not hang
    assert!(
        client.ping().is_err(),
        "connection must be closed by shutdown"
    );
}
