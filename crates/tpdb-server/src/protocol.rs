//! The wire protocol: newline-delimited requests, count-delimited
//! response frames.
//!
//! **Requests** are single UTF-8 lines, terminated by `\n`:
//!
//! * any query-language statement (`SELECT ...`, `SAVE SNAPSHOT '...'`,
//!   `LOAD SNAPSHOT '...'`, set operations, ...) is sent verbatim;
//! * `PREPARE <name> AS <text>` validates `<text>` and binds it to
//!   `<name>` for this connection;
//! * `EXECUTE <name>` / `EXECUTE <name> (<literal>, ...)` runs a prepared
//!   statement, binding one literal per `$n` slot;
//! * `EXPLAIN <text>` returns the plan without executing;
//! * `PING`, `STATS`, `SLEEP <millis>` (diagnostics) and `CLOSE`.
//!
//! **Responses** are framed by a count-carrying header line and an `OK`
//! terminator line, so a reader always knows how many lines follow:
//!
//! ```text
//! ROWS <n>                     TEXT <n>                ERR <Code> <message>
//! SCHEMA <col:TYPE\t...>       <line 1>
//! <row 1>                      ...
//! ...                          <line n>
//! OK                           OK
//! ```
//!
//! Row lines are tab-separated `fact₁ .. fact_k  [s,e)  p  λ` — the fact
//! values, the validity interval, the probability and the lineage of one
//! tuple, each field escaped ([`escape_field`]) so embedded tabs or
//! newlines cannot break the framing. The same rendering functions serve
//! the server and the test suites, which is what makes "byte-identical to
//! a serial [`Session`](tpdb_query::Session) run" a checkable property.

use std::fmt;
use tpdb_query::TpdbError;
use tpdb_storage::{Schema, TpRelation, TpTuple, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A query-language statement, sent verbatim.
    Query(String),
    /// `PREPARE <name> AS <text>`: validate and name a statement.
    Prepare {
        /// The connection-local statement name.
        name: String,
        /// The statement text.
        text: String,
    },
    /// `EXECUTE <name> (<literals>)`: run a named statement with bound
    /// parameter values.
    Execute {
        /// The connection-local statement name.
        name: String,
        /// One value per `$n` slot, in order.
        params: Vec<Value>,
    },
    /// `EXPLAIN <text>`: plan without executing.
    Explain(String),
    /// `SLEEP <millis>`: occupy a worker for the given time (diagnostics;
    /// the concurrency tests use it to create deterministic backlog).
    Sleep(u64),
    /// `PING`: liveness probe.
    Ping,
    /// `STATS`: server counters as `key=value` lines.
    Stats,
    /// `CLOSE`: end this connection.
    Close,
}

/// The typed error classes of the wire protocol. The first word after
/// `ERR` on the wire; clients match on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The statement text failed to parse.
    Parse,
    /// A catalog/schema/IO error from the storage layer.
    Storage,
    /// Wrong number of bound parameter values.
    ParameterCount,
    /// A `$n` placeholder reached execution unbound.
    UnboundParameter,
    /// The admission queue is full — retry later (backpressure, not
    /// failure).
    ServerBusy,
    /// The server is draining; the request was not executed.
    ServerShuttingDown,
    /// The request line itself was malformed.
    Protocol,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Parse => "Parse",
            Self::Storage => "Storage",
            Self::ParameterCount => "ParameterCount",
            Self::UnboundParameter => "UnboundParameter",
            Self::ServerBusy => "ServerBusy",
            Self::ServerShuttingDown => "ServerShuttingDown",
            Self::Protocol => "Protocol",
        })
    }
}

impl std::str::FromStr for ErrorCode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Parse" => Ok(Self::Parse),
            "Storage" => Ok(Self::Storage),
            "ParameterCount" => Ok(Self::ParameterCount),
            "UnboundParameter" => Ok(Self::UnboundParameter),
            "ServerBusy" => Ok(Self::ServerBusy),
            "ServerShuttingDown" => Ok(Self::ServerShuttingDown),
            "Protocol" => Ok(Self::Protocol),
            other => Err(format!("unknown error code: {other}")),
        }
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A relation: rendered schema line plus one rendered line per tuple.
    Rows {
        /// The rendered schema (`SCHEMA` line payload).
        schema: String,
        /// One rendered, escaped line per tuple.
        rows: Vec<String>,
    },
    /// Free-form text lines (EXPLAIN output, STATS, PONG, ...).
    Text(Vec<String>),
    /// A typed error.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail (single logical line; escaped on the
        /// wire).
        message: String,
    },
}

impl Response {
    /// Encodes the frame for the wire, including the trailing newline.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Self::Rows { schema, rows } => {
                let mut out = format!("ROWS {}\nSCHEMA {}\n", rows.len(), schema);
                for row in rows {
                    out.push_str(row);
                    out.push('\n');
                }
                out.push_str("OK\n");
                out
            }
            Self::Text(lines) => {
                let mut out = format!("TEXT {}\n", lines.len());
                for line in lines {
                    out.push_str(&escape_field(line));
                    out.push('\n');
                }
                out.push_str("OK\n");
                out
            }
            Self::Error { code, message } => {
                format!("ERR {code} {}\n", escape_field(message))
            }
        }
    }

    /// Maps an engine error onto its wire error class.
    #[must_use]
    pub fn from_error(err: &TpdbError) -> Self {
        let code = match err {
            TpdbError::Parse(_) => ErrorCode::Parse,
            TpdbError::Storage(_) => ErrorCode::Storage,
            TpdbError::ParameterCount { .. } => ErrorCode::ParameterCount,
            TpdbError::UnboundParameter { .. } => ErrorCode::UnboundParameter,
        };
        Self::Error {
            code,
            message: err.to_string(),
        }
    }
}

/// Escapes a field or text line for the wire: backslash, tab, newline and
/// carriage return become two-character escapes, so one field can never
/// split a row and one row can never split a frame.
#[must_use]
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_field`]. Unknown escapes keep the escaped character;
/// a trailing lone backslash is kept verbatim.
#[must_use]
pub fn unescape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Renders a schema as the `SCHEMA` line payload: tab-separated
/// `name:TYPE` pairs.
#[must_use]
pub fn render_schema(schema: &Schema) -> String {
    let cols: Vec<String> = schema
        .fields()
        .iter()
        .map(|f| format!("{}:{}", escape_field(&f.name), f.dtype))
        .collect();
    cols.join("\t")
}

/// Renders one tuple as a wire row: tab-separated escaped fact values,
/// then the interval, the probability and the lineage.
#[must_use]
pub fn render_tuple(tuple: &TpTuple) -> String {
    let mut fields: Vec<String> = tuple
        .facts()
        .iter()
        .map(|v| escape_field(&v.to_string()))
        .collect();
    fields.push(tuple.interval().to_string());
    fields.push(tuple.probability().to_string());
    fields.push(escape_field(&tuple.lineage().to_string()));
    fields.join("\t")
}

/// Renders a whole relation as wire rows — the canonical rendering both
/// the server and the byte-identity tests use.
#[must_use]
pub fn render_relation_rows(relation: &TpRelation) -> Vec<String> {
    relation.iter().map(render_tuple).collect()
}

/// Builds the `ROWS` response for a result relation.
#[must_use]
pub fn rows_response(relation: &TpRelation) -> Response {
    Response::Rows {
        schema: render_schema(relation.schema()),
        rows: render_relation_rows(relation),
    }
}

/// A malformed request line. Request-line syntax has exactly one failure
/// class on the wire — `ERR Protocol` — so the type is a message-bearing
/// newtype rather than an enum: it exists to keep the failure typed on the
/// Rust side while carrying the human-readable description verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    message: String,
}

impl RequestError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The description the server sends back in the `ERR Protocol` frame.
    #[must_use]
    pub fn into_message(self) -> String {
        self.message
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RequestError {}

/// Parses one request line (already stripped of its line terminator).
/// Command words are matched case-insensitively; anything that is not a
/// protocol command is passed through as query text.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Err(RequestError::new("empty request"));
    }
    let mut words = trimmed.split_whitespace();
    let head = words.next().unwrap_or_default();
    match head.to_ascii_uppercase().as_str() {
        "PING" => expect_bare(trimmed, head, Request::Ping),
        "STATS" => expect_bare(trimmed, head, Request::Stats),
        "CLOSE" => expect_bare(trimmed, head, Request::Close),
        "SLEEP" => {
            let rest = trimmed[head.len()..].trim();
            let millis: u64 = rest.parse().map_err(|_| {
                RequestError::new(format!("SLEEP expects milliseconds, got `{rest}`"))
            })?;
            Ok(Request::Sleep(millis))
        }
        "EXPLAIN" => {
            let rest = trimmed[head.len()..].trim();
            if rest.is_empty() {
                return Err(RequestError::new("EXPLAIN expects a statement"));
            }
            Ok(Request::Explain(rest.to_owned()))
        }
        "PREPARE" => parse_prepare(trimmed, head),
        "EXECUTE" => parse_execute(trimmed, head),
        _ => Ok(Request::Query(trimmed.to_owned())),
    }
}

/// Rejects trailing garbage after an argument-less command.
fn expect_bare(line: &str, head: &str, req: Request) -> Result<Request, RequestError> {
    if line.len() == head.len() {
        Ok(req)
    } else {
        Err(RequestError::new(format!(
            "`{}` takes no arguments",
            head.to_ascii_uppercase()
        )))
    }
}

/// `PREPARE <name> AS <text>`.
fn parse_prepare(line: &str, head: &str) -> Result<Request, RequestError> {
    let rest = line[head.len()..].trim_start();
    let (name, after_name) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| RequestError::new("PREPARE expects `<name> AS <statement>`"))?;
    if !is_identifier(name) {
        return Err(RequestError::new(format!(
            "invalid statement name `{name}`"
        )));
    }
    let after_name = after_name.trim_start();
    let (kw, text) = after_name
        .split_once(char::is_whitespace)
        .ok_or_else(|| RequestError::new("PREPARE expects `AS <statement>`"))?;
    if !kw.eq_ignore_ascii_case("AS") {
        return Err(RequestError::new(format!(
            "PREPARE expects `AS`, got `{kw}`"
        )));
    }
    let text = text.trim();
    if text.is_empty() {
        return Err(RequestError::new("PREPARE expects a statement after AS"));
    }
    Ok(Request::Prepare {
        name: name.to_owned(),
        text: text.to_owned(),
    })
}

/// `EXECUTE <name>` or `EXECUTE <name> (<literal>, ...)`.
fn parse_execute(line: &str, head: &str) -> Result<Request, RequestError> {
    let rest = line[head.len()..].trim();
    if rest.is_empty() {
        return Err(RequestError::new("EXECUTE expects a statement name"));
    }
    let (name, args) = match rest.split_once('(') {
        None => (rest, None),
        Some((name, args)) => {
            let args = args
                .strip_suffix(')')
                .ok_or_else(|| RequestError::new("unterminated parameter list"))?;
            (name.trim(), Some(args))
        }
    };
    if !is_identifier(name) {
        return Err(RequestError::new(format!(
            "invalid statement name `{name}`"
        )));
    }
    let params = match args {
        None => Vec::new(),
        Some(a) => parse_literals(a)?,
    };
    Ok(Request::Execute {
        name: name.to_owned(),
        params,
    })
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses a comma-separated literal list: `NULL`, `TRUE`/`FALSE`,
/// integers, floats, and `'...'` strings with `''` escaping the quote.
pub fn parse_literals(s: &str) -> Result<Vec<Value>, RequestError> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    if rest.is_empty() {
        return Ok(out);
    }
    loop {
        let (value, tail) = parse_literal(rest)?;
        out.push(value);
        rest = tail.trim_start();
        if rest.is_empty() {
            return Ok(out);
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| {
                RequestError::new(format!("expected `,` between literals, got `{rest}`"))
            })?
            .trim_start();
        if rest.is_empty() {
            return Err(RequestError::new("trailing `,` in parameter list"));
        }
    }
}

/// Parses one literal off the front of `s`, returning the remainder.
fn parse_literal(s: &str) -> Result<(Value, &str), RequestError> {
    if let Some(body) = s.strip_prefix('\'') {
        // Scan for the closing quote, treating '' as an escaped quote.
        let mut text = String::new();
        let mut chars = body.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            if c != '\'' {
                text.push(c);
                continue;
            }
            if let Some(&(_, '\'')) = chars.peek() {
                chars.next();
                text.push('\'');
                continue;
            }
            let rest = &body[i + 1..];
            return Ok((Value::str(&text), rest));
        }
        return Err(RequestError::new(format!(
            "unterminated string literal: '{body}"
        )));
    }
    let end = s.find([',', ' ', '\t']).unwrap_or(s.len());
    let (word, rest) = s.split_at(end);
    if word.eq_ignore_ascii_case("NULL") {
        return Ok((Value::Null, rest));
    }
    if word.eq_ignore_ascii_case("TRUE") {
        return Ok((Value::Bool(true), rest));
    }
    if word.eq_ignore_ascii_case("FALSE") {
        return Ok((Value::Bool(false), rest));
    }
    if let Ok(i) = word.parse::<i64>() {
        return Ok((Value::Int(i), rest));
    }
    if let Ok(f) = word.parse::<f64>() {
        return Ok((Value::Float(f), rest));
    }
    Err(RequestError::new(format!("invalid literal: `{word}`")))
}

/// Formats a [`Value`] as a literal [`parse_literals`] reads back — used
/// by [`crate::Client::execute`] to send bound parameters.
///
/// `Float` values are rendered via `{}`; a float with an integral value
/// (e.g. `1.0`) therefore reads back as an `Int`. Statements comparing
/// floats should send explicitly fractional values or inline the literal
/// in the statement text.
#[must_use]
pub fn format_literal(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_owned(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_owned(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_into_typed_requests() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("CLOSE").unwrap(), Request::Close);
        assert_eq!(parse_request("SLEEP 25").unwrap(), Request::Sleep(25));
        assert_eq!(
            parse_request("SELECT * FROM a").unwrap(),
            Request::Query("SELECT * FROM a".to_owned())
        );
        assert_eq!(
            parse_request("EXPLAIN SELECT * FROM a").unwrap(),
            Request::Explain("SELECT * FROM a".to_owned())
        );
        assert_eq!(
            parse_request("PREPARE q1 AS SELECT * FROM a WHERE Loc = $1").unwrap(),
            Request::Prepare {
                name: "q1".to_owned(),
                text: "SELECT * FROM a WHERE Loc = $1".to_owned(),
            }
        );
        assert_eq!(
            parse_request("EXECUTE q1 ('ZAK', 3, 1.5, TRUE, NULL)").unwrap(),
            Request::Execute {
                name: "q1".to_owned(),
                params: vec![
                    Value::str("ZAK"),
                    Value::Int(3),
                    Value::Float(1.5),
                    Value::Bool(true),
                    Value::Null,
                ],
            }
        );
        assert_eq!(
            parse_request("EXECUTE q1").unwrap(),
            Request::Execute {
                name: "q1".to_owned(),
                params: vec![],
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(parse_request("").is_err());
        assert!(parse_request("PING now").is_err());
        assert!(parse_request("SLEEP soon").is_err());
        assert!(parse_request("PREPARE q1").is_err());
        assert!(parse_request("PREPARE q1 SELECT 1").is_err());
        assert!(parse_request("PREPARE 1q AS SELECT 1").is_err());
        assert!(parse_request("EXECUTE q1 ('unterminated)").is_err());
        assert!(parse_request("EXECUTE q1 (1,)").is_err());
        assert!(parse_request("EXECUTE q1 (1 2)").is_err());
    }

    #[test]
    fn string_literals_roundtrip_through_quote_escaping() {
        let v = Value::str("it''s; a 'test'".replace("''", "'").as_str());
        let formatted = format_literal(&v);
        let parsed = parse_literals(&formatted).unwrap();
        assert_eq!(parsed, vec![v]);
    }

    #[test]
    fn field_escaping_roundtrips() {
        for s in [
            "plain",
            "tab\there",
            "line\nbreak",
            "back\\slash",
            "\r\n\t\\",
        ] {
            assert_eq!(unescape_field(&escape_field(s)), s);
            assert!(!escape_field(s).contains('\n'));
            assert!(!escape_field(s).contains('\t'));
        }
    }

    #[test]
    fn response_frames_encode_with_count_and_terminator() {
        let rows = Response::Rows {
            schema: "Name:STR".to_owned(),
            rows: vec!["Ann\t[2,8)\t0.7\tx1".to_owned()],
        };
        assert_eq!(
            rows.encode(),
            "ROWS 1\nSCHEMA Name:STR\nAnn\t[2,8)\t0.7\tx1\nOK\n"
        );
        let text = Response::Text(vec!["PONG".to_owned()]);
        assert_eq!(text.encode(), "TEXT 1\nPONG\nOK\n");
        let err = Response::Error {
            code: ErrorCode::ServerBusy,
            message: "queue full\nretry".to_owned(),
        };
        assert_eq!(err.encode(), "ERR ServerBusy queue full\\nretry\n");
    }
}
