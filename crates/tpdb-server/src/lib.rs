//! # tpdb-server
//!
//! A concurrent multi-session TCP front-end for the TP query engine — the
//! subsystem that turns the library into a database many clients share
//! (ROADMAP item 3).
//!
//! * **Line protocol** ([`protocol`]): newline-delimited requests carrying
//!   the existing query text (plus `PREPARE`/`EXECUTE`/`EXPLAIN`/snapshot
//!   statements), count-delimited response frames.
//! * **Worker pool with backpressure** ([`Server`]): a fixed pool executes
//!   statements from a *bounded* admission queue; a full queue answers
//!   `ERR ServerBusy` instead of buffering without limit.
//! * **Epoch-consistent reads**: each request pins an
//!   [`Arc<Catalog>`](tpdb_storage::Catalog) snapshot via
//!   [`SharedCatalog`](tpdb_storage::SharedCatalog); `LOAD SNAPSHOT` and
//!   DDL swap the published catalog atomically, so readers see one schema
//!   epoch — never a torn mix.
//! * **Shared plan cache**: one
//!   [`ShardedPlanCache`](tpdb_query::ShardedPlanCache) serves all
//!   sessions, keyed by normalized text + schema epoch.
//! * **Blocking client** ([`Client`]): used by the tests, the
//!   `concurrent_clients` example and the `experiments throughput` figure.
//!
//! ```
//! use tpdb_server::{Client, Server, ServerConfig};
//! use tpdb_storage::Catalog;
//!
//! let mut catalog = Catalog::new();
//! let (a, b) = tpdb_datagen::booking_example();
//! catalog.register(a).unwrap();
//! catalog.register(b).unwrap();
//!
//! let server = Server::start(catalog, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! let rows = client
//!     .query("SELECT * FROM a TP LEFT JOIN b ON a.Loc = b.Loc")
//!     .unwrap();
//! assert_eq!(rows.rows.len(), 7);
//!
//! client.close().unwrap();
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod pool;
pub mod protocol;
mod server;

pub use client::{Client, ClientError, Rows};
pub use protocol::{ErrorCode, Request, Response};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
