//! The one sanctioned thread-spawn site of the workspace.
//!
//! The `no-unscoped-threads` lint forbids `std::thread::spawn` everywhere
//! except this module: a server's acceptor, connection and worker threads
//! are *long-lived* — they outlive the function that starts the server,
//! which `std::thread::scope` cannot express. This module restores the
//! invariant the lint enforces, by construction instead of by scoping:
//!
//! 1. **Every spawn returns a [`JoinHandle`]** — there is no fire-and-
//!    forget variant — and every caller in this crate stores the handle in
//!    the server state that [`crate::ServerHandle::shutdown`] drains and
//!    joins. A thread born here cannot outlive the server.
//! 2. **Closures own their state.** Callers pass `'static` closures over
//!    `Arc`'d server internals; there are no borrows for a leaked thread
//!    to outlive, so the memory-safety half of the scoped-thread
//!    discipline is preserved too.
//!
//! Keeping the exemption to one file keeps it auditable: one place
//! threads are born, one shutdown path that joins them.

use std::io;
use std::thread::{Builder, JoinHandle};

/// Spawns a named, long-lived server thread. The caller **must** retain
/// the handle and join it at shutdown (see module docs).
pub(crate) fn spawn<F>(name: &str, f: F) -> io::Result<JoinHandle<()>>
where
    F: FnOnce() + Send + 'static,
{
    Builder::new().name(format!("tpdb-{name}")).spawn(f)
}
