//! A blocking line-protocol client, used by the tests, the examples and
//! the throughput benchmark.

use crate::protocol::{format_literal, unescape_field, ErrorCode, Response};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use tpdb_storage::Value;

/// A client-side failure: transport, server-reported, or a malformed
/// frame.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP transport failed.
    Io(io::Error),
    /// The server answered `ERR <code> <message>`.
    Server {
        /// The typed error class.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The response stream violated the frame grammar.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl ClientError {
    /// The server-reported error class, if this is a server error.
    #[must_use]
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            Self::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A query result as it came off the wire: the rendered schema line and
/// one rendered (still escaped) line per tuple — directly comparable,
/// byte for byte, to [`crate::protocol::render_relation_rows`] over a
/// serial in-process run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rows {
    /// The `SCHEMA` line payload (`name:TYPE`, tab-separated).
    pub schema: String,
    /// One rendered line per tuple.
    pub rows: Vec<String>,
}

/// A blocking connection to a running [`crate::Server`].
///
/// One request is in flight at a time (the protocol is strictly
/// request/response per connection); concurrency comes from opening more
/// clients.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server address (typically
    /// [`crate::ServerHandle::local_addr`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        // The protocol is strict request/response: Nagle would hold every
        // request until the previous response's delayed ACK (~40ms per
        // round trip on loopback).
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one raw request line and reads one response frame. The line
    /// must not contain a newline.
    pub fn request(&mut self, line: &str) -> Result<Response, ClientError> {
        if line.contains('\n') || line.contains('\r') {
            return Err(ClientError::Protocol(
                "request must be a single line".to_owned(),
            ));
        }
        // One write per request: a trailing-newline write of its own would
        // sit in the Nagle queue behind the unacked request bytes.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.read_response()
    }

    /// Runs a statement and returns its rows. Any non-`ROWS` response is
    /// an error.
    pub fn query(&mut self, text: &str) -> Result<Rows, ClientError> {
        match self.request(text)? {
            Response::Rows { schema, rows } => Ok(Rows { schema, rows }),
            other => Err(unexpected("ROWS", &other)),
        }
    }

    /// `PREPARE name AS text`; returns the statement's `$n` slot count.
    pub fn prepare(&mut self, name: &str, text: &str) -> Result<usize, ClientError> {
        let lines = match self.request(&format!("PREPARE {name} AS {text}"))? {
            Response::Text(lines) => lines,
            other => return Err(unexpected("TEXT", &other)),
        };
        let reply = lines.first().map(String::as_str).unwrap_or_default();
        reply
            .rsplit(' ')
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("unparseable PREPARE reply: {reply}")))
    }

    /// `EXECUTE name (params...)`; returns the rows.
    pub fn execute(&mut self, name: &str, params: &[Value]) -> Result<Rows, ClientError> {
        let line = if params.is_empty() {
            format!("EXECUTE {name}")
        } else {
            let literals: Vec<String> = params.iter().map(format_literal).collect();
            format!("EXECUTE {name} ({})", literals.join(", "))
        };
        match self.request(&line)? {
            Response::Rows { schema, rows } => Ok(Rows { schema, rows }),
            other => Err(unexpected("ROWS", &other)),
        }
    }

    /// `EXPLAIN text`; returns the plan description lines.
    pub fn explain(&mut self, text: &str) -> Result<Vec<String>, ClientError> {
        match self.request(&format!("EXPLAIN {text}"))? {
            Response::Text(lines) => Ok(lines),
            other => Err(unexpected("TEXT", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request("PING")? {
            Response::Text(lines) if lines.first().is_some_and(|l| l == "PONG") => Ok(()),
            other => Err(unexpected("PONG", &other)),
        }
    }

    /// Server counters as `key=value` lines.
    pub fn stats(&mut self) -> Result<Vec<String>, ClientError> {
        match self.request("STATS")? {
            Response::Text(lines) => Ok(lines),
            other => Err(unexpected("TEXT", &other)),
        }
    }

    /// Occupies a server worker for `millis` (diagnostics; see
    /// [`crate::protocol::Request::Sleep`]).
    pub fn sleep_ms(&mut self, millis: u64) -> Result<(), ClientError> {
        match self.request(&format!("SLEEP {millis}"))? {
            Response::Text(_) => Ok(()),
            other => Err(unexpected("TEXT", &other)),
        }
    }

    /// Ends the connection politely.
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.request("CLOSE")? {
            Response::Text(_) => Ok(()),
            other => Err(unexpected("BYE", &other)),
        }
    }

    /// Reads one response frame off the connection.
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let header = self.read_line()?;
        if let Some(rest) = header.strip_prefix("ERR ") {
            let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
            let code = code.parse::<ErrorCode>().map_err(ClientError::Protocol)?;
            return Err(ClientError::Server {
                code,
                message: unescape_field(message),
            });
        }
        if let Some(n) = header.strip_prefix("ROWS ") {
            let n = parse_count(n)?;
            let schema_line = self.read_line()?;
            let schema = schema_line
                .strip_prefix("SCHEMA ")
                .or_else(|| (schema_line == "SCHEMA").then_some(""))
                .ok_or_else(|| {
                    ClientError::Protocol(format!("expected SCHEMA line, got `{schema_line}`"))
                })?
                .to_owned();
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(self.read_line()?);
            }
            self.expect_ok()?;
            return Ok(Response::Rows { schema, rows });
        }
        if let Some(n) = header.strip_prefix("TEXT ") {
            let n = parse_count(n)?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                lines.push(unescape_field(&self.read_line()?));
            }
            self.expect_ok()?;
            return Ok(Response::Text(lines));
        }
        Err(ClientError::Protocol(format!(
            "unexpected frame header: `{header}`"
        )))
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-frame".to_owned(),
            ));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    fn expect_ok(&mut self) -> Result<(), ClientError> {
        let line = self.read_line()?;
        if line == "OK" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "expected OK terminator, got `{line}`"
            )))
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

fn parse_count(s: &str) -> Result<usize, ClientError> {
    s.trim()
        .parse()
        .map_err(|_| ClientError::Protocol(format!("invalid frame count: `{s}`")))
}
