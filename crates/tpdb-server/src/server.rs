//! The server: acceptor, per-connection readers, a fixed worker pool with
//! a bounded admission queue, and graceful shutdown.
//!
//! ## Thread and data topology
//!
//! ```text
//! acceptor ──► connection threads (1/conn) ──► bounded queue ──► workers (N)
//!                   │  parse request,                              │ pin catalog snapshot,
//!                   │  try_send + wait reply,                      │ plan via sharded cache,
//!                   │  write response frame                        │ execute, render frame
//!                   └──────────────◄── reply channel ◄─────────────┘
//! ```
//!
//! Every thread is spawned through [`crate::pool`] and joined at
//! shutdown. Workers never touch sockets; connection threads never touch
//! the engine — the admission queue is the only coupling, and it is
//! *bounded*: when it is full, the connection thread answers
//! `ERR ServerBusy` itself instead of buffering (explicit backpressure).
//!
//! ## Reads, writes and epochs
//!
//! A worker pins one [`Catalog`] snapshot per request
//! ([`SharedCatalog::snapshot`]) and executes entirely against it, so a
//! query sees one schema epoch — never a torn mix — while `LOAD SNAPSHOT`
//! or DDL swaps the published catalog atomically underneath. Plans come
//! from one [`ShardedPlanCache`] shared by all workers, keyed by
//! normalized text and validated against the pinned snapshot's epoch.
//!
//! ## Shutdown sequence
//!
//! [`ServerHandle::shutdown`]: set the draining flag → wake and join the
//! acceptor (the listener closes; new connects are refused) → half-close
//! (`Shutdown::Read`) every live connection so readers see EOF after
//! their in-flight reply → join connection threads → drop the master
//! queue sender → workers drain the queue (answering not-yet-started
//! requests with `ERR ServerShuttingDown`), see the channel disconnect,
//! and exit → join workers. In-flight statements complete normally; no
//! thread outlives the call.

use crate::pool;
use crate::protocol::{parse_request, rows_response, ErrorCode, Request, Response};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use tpdb_query::{
    execute_plan_with, explain_with, snapshot_summary, LogicalPlan, QueryOptions, ShardedPlanCache,
    TpdbError,
};
use tpdb_storage::{Catalog, SharedCatalog};

/// Server sizing and execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing statements. Default: 4.
    pub workers: usize,
    /// Admission-queue capacity. A request arriving while `queue_depth`
    /// requests wait is rejected with `ServerBusy`. Default: 16.
    pub queue_depth: usize,
    /// Per-statement degree of parallelism inside a worker. Default: 1.
    ///
    /// This is a *floor*, not a fixed degree: when the pool is busy,
    /// concurrency comes from the workers and per-query fan-out on top of
    /// it would oversubscribe the cores — but when a statement finds the
    /// pool otherwise idle (nothing queued, no other statement executing),
    /// the worker widens its morsel degree to cover the idle workers, so a
    /// lone expensive query still uses the whole machine. See
    /// `dynamic_parallelism` in this module for the exact rule.
    pub parallelism: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 16,
            parallelism: 1,
        }
    }
}

/// A point-in-time copy of the server's counters
/// ([`ServerHandle::stats`], and the `STATS` wire command).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Request lines read (parseable or not).
    pub requests: u64,
    /// Statements executed to completion (success or engine error).
    pub executed: u64,
    /// Requests rejected with `ServerBusy` (queue full).
    pub busy_rejections: u64,
    /// Requests rejected with `ServerShuttingDown`.
    pub shutdown_rejections: u64,
    /// Requests currently executing on a worker.
    pub executing: u64,
    /// Requests admitted and waiting for a worker.
    pub queued: u64,
    /// Shared plan-cache hits.
    pub cache_hits: u64,
    /// Shared plan-cache misses.
    pub cache_misses: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    executed: AtomicU64,
    busy_rejections: AtomicU64,
    shutdown_rejections: AtomicU64,
    executing: AtomicU64,
    queued: AtomicU64,
}

/// One admitted request: what to run, whose connection state to use, and
/// where to send the rendered response.
struct Job {
    request: Request,
    conn: Arc<Mutex<ConnState>>,
    reply: SyncSender<Response>,
}

/// Per-connection session state: the named prepared statements of this
/// connection. (Statement *plans* live in the shared cache; the
/// connection only owns the name → text binding.)
#[derive(Debug, Default)]
struct ConnState {
    prepared: HashMap<String, String>,
}

/// Everything the threads share.
struct Inner {
    shared: SharedCatalog,
    cache: ShardedPlanCache,
    options: QueryOptions,
    /// Pool size, used to widen a statement's parallelism when the rest
    /// of the pool is idle ([`dynamic_parallelism`]).
    workers: usize,
    /// Master sender; connection threads clone it per request. Dropped at
    /// shutdown so workers observe the disconnect once the queue drains.
    queue: Mutex<Option<SyncSender<Job>>>,
    shutting_down: AtomicBool,
    counters: Counters,
    /// Read-half clones of live connections, half-closed at shutdown.
    conn_streams: Mutex<Vec<TcpStream>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Entry point: [`Server::start`] binds a listener and returns the
/// running server's [`ServerHandle`].
pub struct Server;

impl Server {
    /// Starts a server over `catalog` on a loopback port chosen by the
    /// OS. The returned handle owns every thread; dropping it (or calling
    /// [`ServerHandle::shutdown`]) stops the server and joins them all.
    pub fn start(catalog: Catalog, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let inner = Arc::new(Inner {
            shared: SharedCatalog::new(catalog),
            cache: ShardedPlanCache::default(),
            options: QueryOptions {
                parallelism: config.parallelism.max(1),
            },
            workers: config.workers.max(1),
            queue: Mutex::new(Some(tx)),
            shutting_down: AtomicBool::new(false),
            counters: Counters::default(),
            conn_streams: Mutex::new(Vec::new()),
            conn_handles: Mutex::new(Vec::new()),
        });
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&rx);
            workers.push(pool::spawn(&format!("worker-{i}"), move || {
                worker_loop(&inner, &rx);
            })?);
        }
        let acceptor = {
            let inner = Arc::clone(&inner);
            pool::spawn("acceptor", move || acceptor_loop(&inner, &listener))?
        };
        Ok(ServerHandle {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// The running server: address, live counters, and the shutdown path.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listener address clients connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the server counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        stats_snapshot(&self.inner)
    }

    /// A pinned snapshot of the current catalog (same view a worker would
    /// pin for a request arriving now).
    #[must_use]
    pub fn catalog(&self) -> Arc<Catalog> {
        self.inner.shared.snapshot()
    }

    /// Stops the server: drains in-flight statements, answers queued ones
    /// with `ServerShuttingDown`, closes the listener and joins every
    /// thread. Returns the final counters. See the module docs for the
    /// exact sequence.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_in_place();
        stats_snapshot(&self.inner)
    }

    fn shutdown_in_place(&mut self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of accept(); it re-checks the flag, breaks,
        // and drops the listener (new connects are then refused).
        drop(TcpStream::connect(self.addr));
        if let Some(acceptor) = self.acceptor.take() {
            drop(acceptor.join());
        }
        // Half-close live connections: readers see EOF after writing the
        // reply of any in-flight request, then exit. Already-closed
        // sockets error harmlessly.
        let streams = std::mem::take(&mut *lock(&self.inner.conn_streams));
        for stream in streams {
            drop(stream.shutdown(Shutdown::Read));
        }
        let handles = std::mem::take(&mut *lock(&self.inner.conn_handles));
        for handle in handles {
            drop(handle.join());
        }
        // All per-request sender clones are gone with the connection
        // threads; dropping the master sender lets workers drain the queue
        // (rejecting unstarted work) and observe the disconnect.
        drop(lock(&self.inner.queue).take());
        for worker in self.workers.drain(..) {
            drop(worker.join());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Locks a mutex, recovering from poisoning: all guarded state is either
/// a plain collection of handles/streams or an `Option`, mutated by
/// single calls that cannot leave it torn — and shutdown must proceed
/// even if some thread panicked.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn stats_snapshot(inner: &Inner) -> ServerStats {
    let cache = inner.cache.stats();
    let c = &inner.counters;
    ServerStats {
        connections: c.connections.load(Ordering::Relaxed),
        requests: c.requests.load(Ordering::Relaxed),
        executed: c.executed.load(Ordering::Relaxed),
        busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
        shutdown_rejections: c.shutdown_rejections.load(Ordering::Relaxed),
        executing: c.executing.load(Ordering::Relaxed),
        queued: c.queued.load(Ordering::Relaxed),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
    }
}

fn shutting_down_response() -> Response {
    Response::Error {
        code: ErrorCode::ServerShuttingDown,
        message: "server is shutting down".to_owned(),
    }
}

/// Accepts connections until the shutdown flag is raised; each connection
/// gets its own reader thread whose handle is retained for shutdown.
fn acceptor_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            // accept() only fails transiently on loopback; re-check the
            // flag and keep serving.
            if inner.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if inner.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connect (or a client racing shutdown): refuse.
            return;
        }
        inner.counters.connections.fetch_add(1, Ordering::Relaxed);
        // Responses are written as one frame each; disable Nagle so the
        // frame leaves immediately instead of waiting on a delayed ACK.
        stream.set_nodelay(true).ok();
        if let Ok(read_half) = stream.try_clone() {
            lock(&inner.conn_streams).push(read_half);
        }
        let conn_inner = Arc::clone(inner);
        if let Ok(handle) = pool::spawn("conn", move || serve_connection(&conn_inner, stream)) {
            lock(&inner.conn_handles).push(handle);
        }
    }
}

/// Reads request lines off one connection, submits them for execution,
/// and writes response frames back — strictly one request in flight per
/// connection.
fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let conn = Arc::new(Mutex::new(ConnState::default()));
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or torn connection
            Ok(_) => {}
        }
        let text = line.trim_end_matches(['\r', '\n']);
        if text.trim().is_empty() {
            continue;
        }
        inner.counters.requests.fetch_add(1, Ordering::Relaxed);
        let response = match parse_request(text) {
            Err(e) => Response::Error {
                code: ErrorCode::Protocol,
                message: e.into_message(),
            },
            Ok(Request::Close) => {
                let frame = Response::Text(vec!["BYE".to_owned()]).encode();
                drop(writer.write_all(frame.as_bytes()));
                return;
            }
            Ok(request) => submit(inner, request, &conn),
        };
        if writer.write_all(response.encode().as_bytes()).is_err() {
            return;
        }
    }
}

/// Admission control: try to enqueue the request and wait for the reply.
/// A full queue is answered with `ServerBusy` right here — bounded
/// buffering, explicit backpressure.
fn submit(inner: &Inner, request: Request, conn: &Arc<Mutex<ConnState>>) -> Response {
    if inner.shutting_down.load(Ordering::SeqCst) {
        inner
            .counters
            .shutdown_rejections
            .fetch_add(1, Ordering::Relaxed);
        return shutting_down_response();
    }
    let Some(tx) = lock(&inner.queue).as_ref().map(SyncSender::clone) else {
        inner
            .counters
            .shutdown_rejections
            .fetch_add(1, Ordering::Relaxed);
        return shutting_down_response();
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job {
        request,
        conn: Arc::clone(conn),
        reply: reply_tx,
    };
    match tx.try_send(job) {
        Ok(()) => {
            inner.counters.queued.fetch_add(1, Ordering::SeqCst);
            match reply_rx.recv() {
                Ok(response) => response,
                Err(_) => shutting_down_response(),
            }
        }
        Err(TrySendError::Full(_)) => {
            inner
                .counters
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            Response::Error {
                code: ErrorCode::ServerBusy,
                message: format!(
                    "admission queue full ({} waiting); retry",
                    inner.counters.queued.load(Ordering::SeqCst)
                ),
            }
        }
        Err(TrySendError::Disconnected(_)) => {
            inner
                .counters
                .shutdown_rejections
                .fetch_add(1, Ordering::Relaxed);
            shutting_down_response()
        }
    }
}

/// Takes jobs off the shared queue until every sender is gone. Jobs
/// dequeued after the shutdown flag was raised are answered with
/// `ServerShuttingDown` without executing (the drain half of graceful
/// shutdown); everything else executes against a pinned snapshot.
fn worker_loop(inner: &Arc<Inner>, rx: &Mutex<Receiver<Job>>) {
    loop {
        // Holding the lock across recv() is the standard shared-receiver
        // pattern: the blocked holder wakes with a job, releases, and the
        // next worker takes its place at the channel.
        let job = lock(rx).recv();
        let Ok(job) = job else {
            return;
        };
        inner.counters.queued.fetch_sub(1, Ordering::SeqCst);
        let response = if inner.shutting_down.load(Ordering::SeqCst) {
            inner
                .counters
                .shutdown_rejections
                .fetch_add(1, Ordering::Relaxed);
            shutting_down_response()
        } else {
            inner.counters.executing.fetch_add(1, Ordering::SeqCst);
            let response = handle_request(inner, &job.conn, job.request);
            inner.counters.executing.fetch_sub(1, Ordering::SeqCst);
            response
        };
        // The connection may have died while we executed; nothing to do.
        drop(job.reply.send(response));
    }
}

/// Executes one request on a worker thread.
fn handle_request(inner: &Inner, conn: &Mutex<ConnState>, request: Request) -> Response {
    match request {
        Request::Ping => Response::Text(vec!["PONG".to_owned()]),
        Request::Sleep(millis) => {
            std::thread::sleep(std::time::Duration::from_millis(millis));
            Response::Text(vec![format!("SLEPT {millis}")])
        }
        Request::Stats => {
            let s = stats_snapshot(inner);
            Response::Text(vec![
                format!("connections={}", s.connections),
                format!("requests={}", s.requests),
                format!("executed={}", s.executed),
                format!("busy_rejections={}", s.busy_rejections),
                format!("shutdown_rejections={}", s.shutdown_rejections),
                format!("executing={}", s.executing),
                format!("queued={}", s.queued),
                format!("cache_hits={}", s.cache_hits),
                format!("cache_misses={}", s.cache_misses),
                format!("schema_epoch={}", inner.shared.schema_epoch()),
            ])
        }
        Request::Explain(text) => {
            let snapshot = inner.shared.snapshot();
            let prepared = match inner.cache.get_or_prepare(&snapshot, &inner.options, &text) {
                Ok(p) => p,
                Err(e) => return Response::from_error(&e),
            };
            match explain_with(&snapshot, &prepared.plan, &inner.options) {
                Ok(out) => Response::Text(out.lines().map(str::to_owned).collect()),
                Err(e) => Response::from_error(&e),
            }
        }
        Request::Query(text) => run_statement(inner, &text, &[]),
        Request::Prepare { name, text } => {
            let snapshot = inner.shared.snapshot();
            match inner.cache.get_or_prepare(&snapshot, &inner.options, &text) {
                Ok(prepared) => {
                    let parameters = prepared.parameters;
                    lock(conn).prepared.insert(name.clone(), text);
                    Response::Text(vec![format!("PREPARED {name} PARAMS {parameters}")])
                }
                Err(e) => Response::from_error(&e),
            }
        }
        Request::Execute { name, params } => {
            let text = lock(conn).prepared.get(&name).cloned();
            match text {
                None => Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("unknown prepared statement `{name}`"),
                },
                Some(text) => run_statement(inner, &text, &params),
            }
        }
        // Close never reaches a worker (handled on the connection thread).
        Request::Close => Response::Text(vec!["BYE".to_owned()]),
    }
}

/// The effective morsel degree for a statement about to execute, given
/// the pool state at admission time.
///
/// * Statements are waiting in the queue → stick to the configured
///   `floor`: the queued work will occupy the other workers, and fanning
///   out on top of them oversubscribes the cores.
/// * The queue is empty → widen to cover the idle workers. `executing`
///   includes the calling statement itself (the worker increments the
///   counter before executing), so `workers - executing + 1` is "me plus
///   every worker with nothing to do". A lone expensive query on an
///   otherwise idle 4-worker pool gets degree 4.
///
/// The decision is a point-in-time heuristic, not a reservation: a
/// statement admitted a microsecond later may briefly share the cores.
/// That trade (bounded oversubscription vs. idle cores) is deliberate.
fn dynamic_parallelism(floor: usize, workers: usize, executing: u64, queued: u64) -> usize {
    if queued > 0 {
        return floor;
    }
    let executing = usize::try_from(executing.max(1)).unwrap_or(usize::MAX);
    floor.max(workers.saturating_sub(executing) + 1)
}

/// Runs one statement: pin a snapshot, plan through the shared cache,
/// bind, execute, render. `LOAD SNAPSHOT` is the one mutating statement
/// and goes through the shared catalog's atomic swap instead.
///
/// Planning and the cache key use the configured options (so cached plans
/// are shared regardless of pool load), but execution runs at
/// [`dynamic_parallelism`] — the configured floor, widened over idle
/// workers.
fn run_statement(inner: &Inner, text: &str, params: &[tpdb_storage::Value]) -> Response {
    let snapshot = inner.shared.snapshot();
    let prepared = match inner.cache.get_or_prepare(&snapshot, &inner.options, text) {
        Ok(p) => p,
        Err(e) => return Response::from_error(&e),
    };
    let exec_options = QueryOptions {
        parallelism: dynamic_parallelism(
            inner.options.parallelism,
            inner.workers,
            inner.counters.executing.load(Ordering::SeqCst),
            inner.counters.queued.load(Ordering::SeqCst),
        ),
    };
    let result = match &prepared.plan {
        LogicalPlan::SaveSnapshot { path } => snapshot
            .save_snapshot(path)
            .map_err(TpdbError::from)
            .and_then(|()| snapshot_summary(&snapshot)),
        LogicalPlan::LoadSnapshot { path } => {
            match inner.shared.update(|catalog| {
                catalog.load_snapshot(path)?;
                // A cheap clone (relations stay shared) pins the freshly
                // loaded state for the summary even if another update
                // lands right behind this one.
                Ok::<Catalog, tpdb_storage::StorageError>(catalog.clone())
            }) {
                Ok(Ok(loaded)) => snapshot_summary(&loaded),
                Ok(Err(e)) => Err(TpdbError::from(e)),
                Err(e) => Err(TpdbError::from(e)),
            }
        }
        _ => bind(prepared.parameters, &prepared.plan, params)
            .and_then(|bound| execute_plan_with(&snapshot, &bound, &exec_options)),
    };
    match result {
        Ok(relation) => {
            inner.counters.executed.fetch_add(1, Ordering::Relaxed);
            rows_response(&relation)
        }
        Err(e) => Response::from_error(&e),
    }
}

/// Substitutes `$n` placeholders, checking the value count.
fn bind(
    parameters: usize,
    plan: &LogicalPlan,
    params: &[tpdb_storage::Value],
) -> Result<LogicalPlan, TpdbError> {
    if params.len() != parameters {
        return Err(TpdbError::ParameterCount {
            expected: parameters,
            got: params.len(),
        });
    }
    if parameters == 0 {
        Ok(plan.clone())
    } else {
        plan.bind_parameters(params)
    }
}

#[cfg(test)]
mod tests {
    use super::dynamic_parallelism;

    #[test]
    fn a_lone_statement_on_an_idle_pool_gets_every_worker() {
        // executing == 1 is the calling statement itself.
        assert_eq!(dynamic_parallelism(1, 4, 1, 0), 4);
        assert_eq!(dynamic_parallelism(1, 8, 1, 0), 8);
    }

    #[test]
    fn busy_peers_shrink_the_widening_down_to_the_floor() {
        assert_eq!(dynamic_parallelism(1, 4, 2, 0), 3);
        assert_eq!(dynamic_parallelism(1, 4, 4, 0), 1);
        // More executing than workers (racing counters): saturates, floor.
        assert_eq!(dynamic_parallelism(1, 4, 9, 0), 1);
    }

    #[test]
    fn queued_work_pins_the_degree_to_the_configured_floor() {
        assert_eq!(dynamic_parallelism(1, 8, 1, 1), 1);
        assert_eq!(dynamic_parallelism(2, 8, 1, 5), 2);
    }

    #[test]
    fn the_configured_floor_is_never_lowered() {
        assert_eq!(dynamic_parallelism(6, 4, 4, 0), 6);
        assert_eq!(dynamic_parallelism(6, 4, 1, 3), 6);
    }

    #[test]
    fn a_zero_executing_count_is_treated_as_self() {
        // run_statement always increments `executing` first, but the pure
        // rule must not widen past the pool if handed a stale zero.
        assert_eq!(dynamic_parallelism(1, 4, 0, 0), 4);
    }
}
