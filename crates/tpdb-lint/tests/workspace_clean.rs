//! The workspace itself must be lint-clean: every sanctioned exception is
//! allow-listed in the source, so a violation that sneaks in fails this
//! test (and the CI lint job) with a rendered `file:line:col` report.

use std::path::Path;
use tpdb_lint::{check_workspace, find_workspace_root};

#[test]
fn workspace_is_clean() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above the lint crate");
    let report = check_workspace(&root).expect("workspace walk");
    assert!(
        report.is_clean(),
        "the workspace violates its own lint rules:\n{}",
        report.render()
    );
    // The walker saw the whole workspace, not a stray subdirectory.
    assert!(
        report.files_checked > 50,
        "suspiciously few files checked: {}",
        report.files_checked
    );
}
