// tpdb-lint-fixture: path=crates/tpdb-lineage/src/lib.rs
// tpdb-lint-expect: crate-header-policy:1:1

#![forbid(unsafe_code)]

pub mod memo;
