// tpdb-lint-fixture: path=crates/tpdb-storage/src/snapshot.rs
// tpdb-lint-expect: error-taxonomy:5:40
// tpdb-lint-expect: error-taxonomy:9:29

fn load(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    std::fs::read(path).map_err(Into::into)
}

fn parse_flag(raw: &str) -> Result<bool, String> {
    Ok(raw == "1")
}
