// tpdb-lint-fixture: path=crates/tpdb-lineage/src/memo.rs
// tpdb-lint-expect: nan-memo-discipline:7:10
// tpdb-lint-expect: nan-memo-discipline:10:17

fn lookup(memo: &[f64], id: usize) -> Option<f64> {
    let p = memo[id];
    if p == f64::NAN {
        return None;
    }
    if f64::NAN != p {
        return Some(p);
    }
    None
}
