// tpdb-lint-fixture: path=crates/tpdb-core/src/workers.rs
// tpdb-lint-expect: no-unscoped-threads:7:10

// Inside tpdb-core, even thread::scope is confined to the morsel
// scheduler: ad-hoc scoped workers bypass the shared injector.
fn launch(xs: &mut [u64]) {
    std::thread::scope(|scope| {
        for x in xs.iter_mut() {
            scope.spawn(move || {
                *x += 1;
            });
        }
    });
}
