// tpdb-lint-fixture: path=crates/tpdb-datagen/src/gen.rs
// tpdb-lint-expect: bench-determinism:6:28
// tpdb-lint-expect: bench-determinism:11:16

fn elapsed_nanos() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
