// tpdb-lint-fixture: path=crates/tpdb-core/src/stream.rs
// tpdb-lint-expect: no-lineage-clone-in-streams:7:17
// tpdb-lint-expect: no-lineage-clone-in-streams:8:27
// tpdb-lint-expect: no-lineage-clone-in-streams:13:14

fn emit_window(lambda_r: &Lineage) -> (Lineage, Lineage) {
    let fresh = Lineage::tru();
    let copied = lambda_r.clone();
    (fresh, copied)
}

fn legacy(interner: &LineageInterner, r: LineageRef) -> Lineage {
    interner.to_lineage(r)
}
