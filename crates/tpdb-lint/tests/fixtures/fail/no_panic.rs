// tpdb-lint-fixture: path=crates/tpdb-query/src/work.rs
// tpdb-lint-expect: no-panic-in-lib:7:20
// tpdb-lint-expect: no-panic-in-lib:8:37
// tpdb-lint-expect: no-panic-in-lib:10:9

fn run(xs: &[u64]) -> u64 {
    let first = xs[0];
    let parsed = "7".parse::<u64>().unwrap();
    if xs.len() > 99 {
        unreachable!("capped upstream");
    }
    first + parsed
}
