// tpdb-lint-fixture: path=crates/tpdb-core/src/workers.rs
// tpdb-lint-expect: no-unscoped-threads:6:14

fn launch(n: usize) {
    for _ in 0..n {
        std::thread::spawn(|| {});
    }
}
