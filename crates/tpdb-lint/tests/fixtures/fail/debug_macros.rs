// tpdb-lint-fixture: path=crates/tpdb-storage/src/log.rs
// tpdb-lint-expect: no-debug-macros:6:5
// tpdb-lint-expect: no-debug-macros:7:5

fn record(rows: usize) {
    println!("loaded {rows} rows");
    dbg!(rows);
}
