// tpdb-lint-fixture: path=crates/tpdb-server/src/server.rs
// tpdb-lint-expect: no-unscoped-threads:7:10

// The pool-module exemption is path-exact: spawning anywhere else in the
// server crate is still flagged.
fn sneak_a_thread() {
    std::thread::spawn(|| {});
}
