// tpdb-lint-fixture: path=crates/tpdb-query/src/session.rs
// tpdb-lint-expect: io-only-in-storage:7:19
// tpdb-lint-expect: io-only-in-storage:7:28
// tpdb-lint-expect: io-only-in-storage:13:16

fn dump(catalog: &str) -> std::io::Result<()> {
    let mut out = std::fs::File::create("/tmp/catalog.dump")?;
    use std::io::Write;
    out.write_all(catalog.as_bytes())
}

fn slurp() -> std::io::Result<Vec<u8>> {
    let file = File::open("/tmp/catalog.dump")?;
    let mut bytes = Vec::new();
    use std::io::Read;
    file.take(u64::MAX).read_to_end(&mut bytes)?;
    Ok(bytes)
}
