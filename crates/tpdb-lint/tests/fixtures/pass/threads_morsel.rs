// tpdb-lint-fixture: path=crates/tpdb-core/src/morsel.rs

// The sanctioned scheduler module: tpdb-core's single thread creation
// point. Scoped workers are born and joined here, nowhere else.
fn scope_workers(count: usize) {
    std::thread::scope(|scope| {
        for _ in 0..count {
            scope.spawn(|| {});
        }
    });
}
