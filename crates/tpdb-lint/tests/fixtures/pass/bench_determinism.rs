// tpdb-lint-fixture: path=crates/tpdb-bench/src/timing.rs

fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let start = std::time::Instant::now();
    f();
    start.elapsed()
}
