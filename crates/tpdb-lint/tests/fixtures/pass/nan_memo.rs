// tpdb-lint-fixture: path=crates/tpdb-lineage/src/memo.rs

fn lookup(memo: &[f64], id: usize) -> Option<f64> {
    let p = memo[id];
    if p.is_nan() {
        return None;
    }
    Some(p)
}
