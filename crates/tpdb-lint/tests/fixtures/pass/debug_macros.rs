// tpdb-lint-fixture: path=crates/tpdb-storage/src/log.rs

fn summary(rows: usize) -> String {
    format!("loaded {rows} rows")
}

#[cfg(test)]
mod tests {
    #[test]
    fn printing_in_tests_is_fine() {
        println!("debugging a test run is sanctioned");
    }
}
