// tpdb-lint-fixture: path=crates/tpdb-server/src/pool.rs

// The sanctioned pool module: long-lived server threads may be spawned
// here (and only here); the server joins every returned handle at
// shutdown.
fn spawn_worker(f: impl FnOnce() + Send + 'static) -> std::thread::JoinHandle<()> {
    std::thread::spawn(f)
}
