// tpdb-lint-fixture: path=crates/tpdb-lineage/src/lib.rs

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memo;
