// tpdb-lint-fixture: path=crates/tpdb-query/src/work.rs

fn run(xs: &[u64]) -> Result<u64, TpdbError> {
    let first = xs.first().copied().ok_or(TpdbError::EmptyInput)?;
    Ok(first)
}

fn documented_invariant(xs: &[u64]) -> u64 {
    // Callers guarantee non-empty input (validated at the API boundary).
    // tpdb-lint: allow(no-panic-in-lib)
    xs.first().copied().expect("validated non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_fine() {
        assert_eq!(super::run(&[7]).unwrap(), 7);
    }
}
