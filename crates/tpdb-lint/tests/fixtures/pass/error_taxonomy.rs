// tpdb-lint-fixture: path=crates/tpdb-storage/src/snapshot.rs

fn load(path: &str) -> Result<Vec<u8>, StorageError> {
    std::fs::read(path).map_err(StorageError::from)
}

fn parse_flag(raw: &str) -> Result<bool, StorageError> {
    Ok(raw == "1")
}
