// tpdb-lint-fixture: path=crates/tpdb-query/src/session.rs

// Engine code persists through the catalog's typed entry points; the raw
// filesystem calls live in tpdb-storage::snapshot behind them.
fn save(catalog: &tpdb_storage::Catalog, path: &str) -> Result<(), tpdb_storage::StorageError> {
    catalog.save_snapshot(path)
}

#[cfg(test)]
mod tests {
    // Test code may clean up scratch files directly.
    #[test]
    fn removes_scratch() {
        std::fs::remove_file("/tmp/scratch.snap").ok();
    }
}
