// tpdb-lint-fixture: path=crates/tpdb-core/src/stream.rs

fn emit_window(lambda_r: LineageRef) -> LineageRef {
    lambda_r
}

fn boundary(interner: &LineageInterner, r: LineageRef) -> Lineage {
    // The sanctioned output-formation boundary of this fixture.
    // tpdb-lint: allow(no-lineage-clone-in-streams)
    interner.to_lineage(r)
}

#[cfg(test)]
mod tests {
    #[test]
    fn cloning_in_tests_is_fine() {
        let lambda = Lineage::tru();
        let _ = lambda.clone();
    }
}
