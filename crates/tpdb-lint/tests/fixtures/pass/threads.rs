// tpdb-lint-fixture: path=crates/tpdb-storage/src/shared.rs

fn launch(xs: &mut [u64]) {
    std::thread::scope(|scope| {
        for x in xs.iter_mut() {
            scope.spawn(move || {
                *x += 1;
            });
        }
    });
}
