//! The fixture corpus harness. Every file under `tests/fixtures/` is
//! self-describing:
//!
//! ```text
//! // tpdb-lint-fixture: path=crates/tpdb-core/src/stream.rs
//! // tpdb-lint-expect: no-lineage-clone-in-streams:7:17
//! ```
//!
//! The `path=` header is the workspace-relative path the fixture
//! impersonates (rule scoping is path-based), and each `expect` header
//! declares one diagnostic as `rule:line:col` with the line counted in the
//! fixture file itself. `fail/` fixtures must produce exactly their
//! declared diagnostics; `pass/` fixtures declare none and must be clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tpdb_lint::{check_file, rules, SourceFile};

struct Fixture {
    /// File name under `tests/fixtures/{pass,fail}/`, for error messages.
    name: String,
    /// The workspace-relative path the fixture impersonates.
    pretend_path: String,
    /// Declared diagnostics as `(rule, line, col)`.
    expects: BTreeSet<(String, u32, u32)>,
    text: String,
}

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
}

fn load_fixtures(kind: &str) -> Vec<Fixture> {
    let dir = fixture_dir(kind);
    let mut fixtures = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixture dir") {
        let path = entry.expect("fixture entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let name = path
            .file_name()
            .expect("fixture file name")
            .to_string_lossy()
            .into_owned();
        let text = std::fs::read_to_string(&path).expect("fixture read");
        let mut pretend_path = None;
        let mut expects = BTreeSet::new();
        for line in text.lines() {
            if let Some(p) = line.strip_prefix("// tpdb-lint-fixture: path=") {
                pretend_path = Some(p.trim().to_owned());
            } else if let Some(e) = line.strip_prefix("// tpdb-lint-expect: ") {
                let mut parts = e.trim().rsplitn(3, ':');
                let col = parts.next().and_then(|c| c.parse().ok());
                let line_no = parts.next().and_then(|l| l.parse().ok());
                let rule = parts.next();
                match (rule, line_no, col) {
                    (Some(rule), Some(line_no), Some(col)) => {
                        expects.insert((rule.to_owned(), line_no, col));
                    }
                    _ => panic!("{name}: malformed expect header `{e}`"),
                }
            }
        }
        fixtures.push(Fixture {
            pretend_path: pretend_path
                .unwrap_or_else(|| panic!("{name}: missing `tpdb-lint-fixture: path=` header")),
            name,
            expects,
            text,
        });
    }
    assert!(!fixtures.is_empty(), "no fixtures under {}", dir.display());
    fixtures.sort_by(|a, b| a.name.cmp(&b.name));
    fixtures
}

fn diagnostics_of(fixture: &Fixture) -> BTreeSet<(String, u32, u32)> {
    let file = SourceFile::from_text(&fixture.pretend_path, &fixture.text);
    check_file(&file)
        .into_iter()
        .map(|d| {
            assert_eq!(
                d.path, fixture.pretend_path,
                "{}: diagnostic carries the wrong path",
                fixture.name
            );
            (d.rule.to_owned(), d.line, d.col)
        })
        .collect()
}

#[test]
fn fail_fixtures_produce_exactly_their_declared_diagnostics() {
    for fixture in load_fixtures("fail") {
        assert!(
            !fixture.expects.is_empty(),
            "{}: fail fixture declares no expected diagnostics",
            fixture.name
        );
        let actual = diagnostics_of(&fixture);
        assert_eq!(
            actual, fixture.expects,
            "{}: diagnostics (left) differ from the declared expectations (right)",
            fixture.name
        );
    }
}

#[test]
fn pass_fixtures_are_clean() {
    for fixture in load_fixtures("pass") {
        assert!(
            fixture.expects.is_empty(),
            "{}: pass fixture must not declare expected diagnostics",
            fixture.name
        );
        let actual = diagnostics_of(&fixture);
        assert!(
            actual.is_empty(),
            "{}: pass fixture produced diagnostics: {actual:?}",
            fixture.name
        );
    }
}

/// Every registered rule is exercised by at least one fail fixture, and
/// every fail fixture has a pass twin demonstrating the compliant form.
#[test]
fn corpus_covers_every_rule() {
    let fail = load_fixtures("fail");
    let triggered: BTreeSet<&str> = fail
        .iter()
        .flat_map(|f| f.expects.iter().map(|(rule, _, _)| rule.as_str()))
        .collect();
    for rule in rules::all() {
        assert!(
            triggered.contains(rule.id()),
            "rule `{}` has no fail fixture",
            rule.id()
        );
    }
    let pass_names: BTreeSet<String> = load_fixtures("pass")
        .iter()
        .map(|f| f.name.clone())
        .collect();
    for fixture in &fail {
        assert!(
            pass_names.contains(&fixture.name),
            "fail fixture `{}` has no pass twin",
            fixture.name
        );
    }
}
