//! A hand-rolled Rust lexer producing a token stream with line/column
//! spans.
//!
//! The lexer is deliberately *not* a full Rust front-end: rules match
//! shallow token patterns (`.unwrap()`, `Lineage::`, `== NAN`, ...), so all
//! it must get right is the token *boundaries* — where strings, char
//! literals, lifetimes, raw strings and comments begin and end — because a
//! forbidden name inside a string literal or a comment is not a violation.
//! Comments are lexed into a side list (they carry the
//! `// tpdb-lint: allow(<rule>)` escape hatch); everything the rules match
//! on is in the main token stream.

/// The coarse classification of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are stored without `r#`).
    Ident,
    /// A lifetime or loop label (`'a`), without the leading quote.
    Lifetime,
    /// Integer literal (any base, suffix included in the text).
    Int,
    /// Floating-point literal.
    Float,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`, `b'c'`.
    Str,
    /// Punctuation. Multi-character operators the rules care about
    /// (`::`, `==`, `!=`, `->`, `=>`, `..`, `..=`, `&&`, `||`) are single
    /// tokens; everything else is one character per token.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (normalized: raw identifiers lose their `r#`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this text?
    #[must_use]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// A comment (line or block) with the line range it covers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (block comments may span several).
    pub end_line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators kept as single tokens, longest first.
const COMPOUND_PUNCT: &[&str] = &["..=", "::", "==", "!=", "->", "=>", "..", "&&", "||"];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. The lexer never fails: malformed
/// input (e.g. an unterminated string) is consumed to end of file, which is
/// the behavior that loses the fewest diagnostics on files that do not parse.
#[must_use]
pub fn lex(source: &str) -> LexOutput {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = LexOutput::default();

    // A `#!/...` shebang is not the start of an inner attribute.
    if cur.peek(0) == Some('#') && cur.peek(1) == Some('!') && cur.peek(2) == Some('/') {
        while let Some(c) = cur.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur, &mut out, line);
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out, line);
        } else if is_ident_start(c) {
            lex_ident_or_prefixed_literal(&mut cur, &mut out, line, col);
        } else if c.is_ascii_digit() {
            lex_number(&mut cur, &mut out, line, col);
        } else if c == '"' {
            let text = lex_string(&mut cur);
            push(&mut out, TokenKind::Str, text, line, col);
        } else if c == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
        } else {
            lex_punct(&mut cur, &mut out, line, col);
        }
    }
    out
}

fn push(out: &mut LexOutput, kind: TokenKind, text: String, line: u32, col: u32) {
    out.tokens.push(Token {
        kind,
        text,
        line,
        col,
    });
}

fn lex_line_comment(cur: &mut Cursor, out: &mut LexOutput, line: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: line,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut LexOutput, line: u32) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: cur.line,
    });
}

/// Identifiers, keywords, and the literals that *start* with an identifier
/// character: raw strings (`r"…"`, `r#"…"#`), raw identifiers (`r#name`),
/// byte strings (`b"…"`, `br#"…"#`), byte chars (`b'c'`) and C strings
/// (`c"…"`, `cr#"…"#`).
fn lex_ident_or_prefixed_literal(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) {
    let c = cur.peek(0).unwrap_or(' ');
    let next = cur.peek(1);
    // Raw string r"..." / r#"..."# — but r#ident is a raw identifier.
    if (c == 'r' || c == 'c') && matches!(next, Some('"') | Some('#')) {
        if c == 'r' && next == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
            cur.bump();
            cur.bump();
            let text = lex_ident_text(cur);
            push(out, TokenKind::Ident, text, line, col);
            return;
        }
        if raw_string_follows(cur, 1) {
            cur.bump();
            let text = lex_raw_string(cur);
            push(out, TokenKind::Str, text, line, col);
            return;
        }
    }
    if c == 'b' {
        match next {
            Some('\'') => {
                cur.bump();
                let text = lex_char_literal(cur);
                push(out, TokenKind::Str, text, line, col);
                return;
            }
            Some('"') => {
                cur.bump();
                let text = lex_string(cur);
                push(out, TokenKind::Str, text, line, col);
                return;
            }
            Some('r') if raw_string_follows(cur, 2) => {
                cur.bump();
                cur.bump();
                let text = lex_raw_string(cur);
                push(out, TokenKind::Str, text, line, col);
                return;
            }
            _ => {}
        }
    }
    let text = lex_ident_text(cur);
    push(out, TokenKind::Ident, text, line, col);
}

/// Does a raw string (`"..."` optionally preceded by `#`s) start `ahead`
/// characters from the cursor?
fn raw_string_follows(cur: &Cursor, ahead: usize) -> bool {
    let mut i = ahead;
    while cur.peek(i) == Some('#') {
        i += 1;
    }
    cur.peek(i) == Some('"')
}

fn lex_ident_text(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    text
}

fn lex_number(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) {
    let mut text = String::new();
    let mut is_float = false;
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else if c == '.' && !is_float && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` is a float; `1..n` is a range and `1.max(2)` a method
            // call, both of which leave the dot to the punctuation lexer.
            is_float = true;
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    let kind = if is_float {
        TokenKind::Float
    } else {
        TokenKind::Int
    };
    push(out, kind, text, line, col);
}

/// Lexes a `"…"`-delimited string (escapes respected), cursor on the
/// opening quote.
fn lex_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('"'));
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
        } else if c == '"' {
            break;
        }
    }
    text
}

/// Lexes a raw string `#*"…"#*`, cursor on the first `#` or the quote.
fn lex_raw_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push(cur.bump().unwrap_or('#'));
    }
    if cur.peek(0) == Some('"') {
        text.push(cur.bump().unwrap_or('"'));
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '"' {
            let mut matched = 0usize;
            while matched < hashes && cur.peek(0) == Some('#') {
                text.push(cur.bump().unwrap_or('#'));
                matched += 1;
            }
            if matched == hashes {
                break;
            }
        }
    }
    text
}

/// Lexes a `'…'` char literal, cursor on the opening quote.
fn lex_char_literal(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('\'')); // opening quote
    if cur.peek(0) == Some('\\') {
        text.push(cur.bump().unwrap_or('\\'));
        if let Some(escaped) = cur.bump() {
            text.push(escaped);
            // \u{…} escapes run to the closing brace.
            if escaped == 'u' && cur.peek(0) == Some('{') {
                while let Some(c) = cur.bump() {
                    text.push(c);
                    if c == '}' {
                        break;
                    }
                }
            }
        }
    } else if let Some(c) = cur.bump() {
        text.push(c);
    }
    if cur.peek(0) == Some('\'') {
        text.push(cur.bump().unwrap_or('\''));
    }
    text
}

/// Disambiguates a single quote: char literal (`'a'`, `'\n'`) vs lifetime
/// (`'a`, `'static`).
fn lex_quote(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) {
    let next = cur.peek(1);
    let is_char = match next {
        Some('\\') => true,
        // 'x' is a char literal only if a quote closes it right after one
        // identifier character ('a'); otherwise it is a lifetime ('a, 'static).
        Some(c) if is_ident_continue(c) => cur.peek(2) == Some('\''),
        Some(_) => true, // '(' etc. can only be a (possibly malformed) char
        None => true,
    };
    if is_char {
        let text = lex_char_literal(cur);
        push(out, TokenKind::Str, text, line, col);
    } else {
        cur.bump(); // the quote
        let text = lex_ident_text(cur);
        push(out, TokenKind::Lifetime, text, line, col);
    }
}

fn lex_punct(cur: &mut Cursor, out: &mut LexOutput, line: u32, col: u32) {
    for op in COMPOUND_PUNCT {
        if op
            .chars()
            .enumerate()
            .all(|(i, expected)| cur.peek(i) == Some(expected))
        {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            push(out, TokenKind::Punct, (*op).to_owned(), line, col);
            return;
        }
    }
    if let Some(c) = cur.bump() {
        push(out, TokenKind::Punct, c.to_string(), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_punct_and_positions() {
        let out = lex("let x = a.unwrap();\nx.clone()");
        let texts: Vec<&str> = out.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";", "x", ".", "clone", "(", ")"]
        );
        let unwrap = &out.tokens[5];
        assert_eq!((unwrap.line, unwrap.col), (1, 11));
        let clone = &out.tokens[11];
        assert_eq!((clone.line, clone.col), (2, 3));
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let texts: Vec<String> = kinds("a::b == c != d -> e => f .. g ..= h && i || j")
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert!(texts.contains(&"::".to_owned()));
        assert!(texts.contains(&"==".to_owned()));
        assert!(texts.contains(&"!=".to_owned()));
        assert!(texts.contains(&"->".to_owned()));
        assert!(texts.contains(&"..=".to_owned()));
        // `<`/`>` stay single so generic-depth scans work.
        let angle: Vec<String> = kinds("Vec<Vec<u8>>").into_iter().map(|(_, t)| t).collect();
        assert_eq!(angle, ["Vec", "<", "Vec", "<", "u8", ">", ">"]);
    }

    #[test]
    fn strings_and_chars_hide_their_contents() {
        // Forbidden names inside literals must not become Ident tokens.
        let out = kinds(r#"let s = "a.unwrap() Lineage::var"; let c = 'λ'; let l: &'static str;"#);
        assert!(out
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (t != "unwrap" && t != "Lineage")));
        assert!(out
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "static"));
        assert!(out.iter().any(|(k, t)| *k == TokenKind::Str && t == "'λ'"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let out = kinds(r###"let a = r#"panic!("x")"#; let r#type = 1; let b = br##"y"##;"###);
        assert!(out
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "panic"));
        assert!(out
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "type"));
        assert!(out
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("y")));
    }

    #[test]
    fn comments_are_collected_separately() {
        let out = lex("// tpdb-lint: allow(no-panic-in-lib)\nfoo(); /* block\nspan */ bar();");
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains("tpdb-lint: allow"));
        assert_eq!(out.comments[0].line, 1);
        assert_eq!((out.comments[1].line, out.comments[1].end_line), (2, 3));
        let texts: Vec<&str> = out.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["foo", "(", ")", ";", "bar", "(", ")", ";"]);
    }

    #[test]
    fn numbers_ranges_and_floats() {
        let out = kinds("x[0]; 1.5f64; 0..n; 0xFFu32");
        assert!(out.iter().any(|(k, t)| *k == TokenKind::Int && t == "0"));
        assert!(out
            .iter()
            .any(|(k, t)| *k == TokenKind::Float && t == "1.5f64"));
        assert!(out.iter().any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        assert!(out
            .iter()
            .any(|(k, t)| *k == TokenKind::Int && t == "0xFFu32"));
    }

    #[test]
    fn shebang_is_skipped() {
        let out = lex("#!/usr/bin/env rust\nfn main() {}");
        assert!(out.tokens[0].is_ident("fn"));
    }

    #[test]
    fn cfg_attr_tokens_survive() {
        // `#![forbid(unsafe_code)]` must lex as tokens (it is not a shebang).
        let texts: Vec<String> = kinds("#![forbid(unsafe_code)]")
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            texts,
            ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]
        );
    }
}
