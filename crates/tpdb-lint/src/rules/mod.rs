//! The rule set. Each rule is a small, self-contained module implementing
//! [`Rule`] — [`all`] is the registry the driver and the
//! fixture harness iterate over.
//!
//! Adding a rule: create a module with a unit struct implementing `Rule`,
//! add it to [`all`], add one `pass` and one `fail` fixture under
//! `tests/fixtures/`, and document it in the rule table of
//! `docs/ARCHITECTURE.md`.

mod bench_determinism;
mod crate_header;
mod debug_macros;
mod error_taxonomy;
mod io_only_in_storage;
mod lineage_clone;
mod nan_memo;
mod no_panic;
mod threads;

use crate::Rule;

pub use bench_determinism::BenchDeterminism;
pub use crate_header::CrateHeaderPolicy;
pub use debug_macros::NoDebugMacros;
pub use error_taxonomy::ErrorTaxonomy;
pub use io_only_in_storage::IoOnlyInStorage;
pub use lineage_clone::NoLineageCloneInStreams;
pub use nan_memo::NanMemoDiscipline;
pub use no_panic::NoPanicInLib;
pub use threads::NoUnscopedThreads;

/// Every registered rule, in diagnostic-id order.
#[must_use]
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(BenchDeterminism),
        Box::new(CrateHeaderPolicy),
        Box::new(ErrorTaxonomy),
        Box::new(IoOnlyInStorage),
        Box::new(NanMemoDiscipline),
        Box::new(NoDebugMacros),
        Box::new(NoLineageCloneInStreams),
        Box::new(NoPanicInLib),
        Box::new(NoUnscopedThreads),
    ]
}

/// Is the file anywhere under a `src/` tree (library, `main.rs` or
/// `src/bin/`)? Several rules scope to "all shipped code" rather than
/// "library code only".
#[must_use]
pub(crate) fn in_src_tree(file: &crate::SourceFile) -> bool {
    file.rel_path.starts_with("src/") || file.rel_path.contains("/src/")
}
