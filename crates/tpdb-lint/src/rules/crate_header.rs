//! `crate-header-policy`: every crate root carries the agreed safety and
//! documentation attributes, so a new crate cannot silently opt out of the
//! workspace's `unsafe`-free, fully-documented policy.

use crate::{Diagnostic, Rule, SourceFile};

/// The attributes every `src/lib.rs` must declare.
const REQUIRED: &[(&str, &str)] = &[("forbid", "unsafe_code"), ("warn", "missing_docs")];

/// See module docs.
pub struct CrateHeaderPolicy;

impl Rule for CrateHeaderPolicy {
    fn id(&self) -> &'static str {
        "crate-header-policy"
    }

    fn description(&self) -> &'static str {
        "every crate root declares #![forbid(unsafe_code)] and #![warn(missing_docs)]"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.rel_path.ends_with("src/lib.rs")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (attr, arg) in REQUIRED {
            if !has_inner_attr(file, attr, arg) {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "crate root is missing `#![{attr}({arg})]` — every tpdb crate opts \
                         into the workspace header policy"
                    ),
                });
            }
        }
    }
}

/// Looks for the token run `# ! [ attr ( arg ) ]` anywhere in the file
/// (inner attributes sit at the top, but position is not load-bearing).
fn has_inner_attr(file: &SourceFile, attr: &str, arg: &str) -> bool {
    let tokens = &file.tokens;
    (0..tokens.len()).any(|i| {
        tokens[i].is_punct("#")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct("["))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident(attr))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct("("))
            && tokens.get(i + 5).is_some_and(|t| t.is_ident(arg))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct(")"))
            && tokens.get(i + 7).is_some_and(|t| t.is_punct("]"))
    })
}
