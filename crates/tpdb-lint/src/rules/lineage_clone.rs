//! `no-lineage-clone-in-streams`: hot stream modules move interned
//! `LineageRef` ids; they must not build or clone legacy `Lineage` trees.

use crate::{pattern, Diagnostic, Rule, SourceFile};

/// The hot streaming modules of `tpdb-core`. PR 6 interned the lineage
/// layer precisely so these paths stop cloning formula trees; a clone that
/// sneaks back in is a silent performance regression the compiler cannot
/// flag.
const STREAM_MODULES: &[&str] = &[
    "crates/tpdb-core/src/overlap.rs",
    "crates/tpdb-core/src/lawau.rs",
    "crates/tpdb-core/src/lawan.rs",
    "crates/tpdb-core/src/stream.rs",
    "crates/tpdb-core/src/setops.rs",
    "crates/tpdb-core/src/parallel.rs",
];

/// Identifier fragments that mark a value as carrying lineage.
const LINEAGE_RECEIVERS: &[&str] = &["lineage", "lambda", "lin"];

/// See module docs.
pub struct NoLineageCloneInStreams;

impl Rule for NoLineageCloneInStreams {
    fn id(&self) -> &'static str {
        "no-lineage-clone-in-streams"
    }

    fn description(&self) -> &'static str {
        "hot stream modules move interned LineageRef ids — no legacy Lineage construction, \
         lineage clones or to_lineage outside the sanctioned output-formation boundary"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        STREAM_MODULES.contains(&file.rel_path.as_str())
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            let t = &tokens[i];
            if t.is_ident("Lineage") && tokens.get(i + 1).is_some_and(|n| n.is_punct("::")) {
                out.push(self.diag(
                    file,
                    i,
                    "legacy `Lineage` tree constructed in a hot stream module — build the \
                     formula in the `LineageInterner` arena and move `LineageRef` ids",
                ));
            } else if t.is_ident("to_lineage") {
                out.push(self.diag(
                    file,
                    i,
                    "conversion to a legacy `Lineage` tree in a hot stream module — convert \
                     only at the sanctioned output-formation boundary (mark that boundary \
                     with `// tpdb-lint: allow(no-lineage-clone-in-streams)`)",
                ));
            } else if pattern::method_call(tokens, i, "clone") {
                if let Some(receiver) = pattern::receiver_ident(tokens, i) {
                    let lower = receiver.to_lowercase();
                    if LINEAGE_RECEIVERS.iter().any(|frag| lower.contains(frag)) {
                        out.push(self.diag(
                            file,
                            i + 1,
                            "lineage value cloned in a hot stream module — move the interned \
                             `LineageRef` (`Copy`) instead of cloning a formula tree",
                        ));
                    }
                }
            }
        }
    }
}

impl NoLineageCloneInStreams {
    fn diag(&self, file: &SourceFile, token: usize, message: &str) -> Diagnostic {
        let t = &file.tokens[token];
        Diagnostic {
            rule: self.id(),
            path: file.rel_path.clone(),
            line: t.line,
            col: t.col,
            message: message.to_owned(),
        }
    }
}
