//! `no-panic-in-lib`: library exec paths return `TpdbError`/`StorageError`;
//! they do not panic. A panic in a worker thread poisons the shared catalog
//! lock, and a panic mid-stream loses the session — both unacceptable for
//! the concurrent server front-end (ROADMAP item 3).

use crate::lexer::TokenKind;
use crate::{pattern, Diagnostic, Rule, SourceFile};

/// The crates whose library code is held to the no-panic contract.
const SCOPED_CRATES: &[&str] = &["tpdb-core", "tpdb-query", "tpdb-storage"];

/// Macros that abort the current thread.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// See module docs.
pub struct NoPanicInLib;

impl Rule for NoPanicInLib {
    fn id(&self) -> &'static str {
        "no-panic-in-lib"
    }

    fn description(&self) -> &'static str {
        "library exec paths of tpdb-core/tpdb-query/tpdb-storage must return errors, not \
         panic (no unwrap/expect/panic!/todo!/unimplemented!/literal slice indexing)"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        SCOPED_CRATES.contains(&file.crate_name.as_str()) && file.is_lib_src && !file.is_test_like
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            for method in ["unwrap", "expect"] {
                if pattern::method_call(tokens, i, method) {
                    out.push(self.diag(
                        file,
                        i + 1,
                        &format!(
                            "`.{method}()` in a library exec path — propagate a \
                             `TpdbError`/`StorageError` (document a true invariant with \
                             `// tpdb-lint: allow(no-panic-in-lib)`)"
                        ),
                    ));
                }
            }
            for mac in PANIC_MACROS {
                if pattern::macro_call(tokens, i, mac) {
                    out.push(self.diag(
                        file,
                        i,
                        &format!(
                            "`{mac}!` in a library exec path — return an error variant instead \
                             of aborting the worker thread"
                        ),
                    ));
                }
            }
            // Slice indexing with a literal index: `xs[0]`. Panics on short
            // input; use `.first()` / `.get(n)` and handle the None.
            if tokens[i].is_punct("[")
                && i > 0
                && (tokens[i - 1].kind == TokenKind::Ident
                    || tokens[i - 1].is_punct(")")
                    || tokens[i - 1].is_punct("]"))
                && tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Int)
                && tokens.get(i + 2).is_some_and(|t| t.is_punct("]"))
            {
                out.push(self.diag(
                    file,
                    i + 1,
                    "slice indexed by integer literal in a library exec path — use \
                     `.first()`/`.get(n)` or prove the bound with a guard and an allow comment",
                ));
            }
        }
    }
}

impl NoPanicInLib {
    fn diag(&self, file: &SourceFile, token: usize, message: &str) -> Diagnostic {
        let t = &file.tokens[token];
        Diagnostic {
            rule: self.id(),
            path: file.rel_path.clone(),
            line: t.line,
            col: t.col,
            message: message.to_owned(),
        }
    }
}
