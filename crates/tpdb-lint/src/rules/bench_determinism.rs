//! `bench-determinism`: wall-clock reads (`Instant::now`,
//! `SystemTime::now`) are confined to the `tpdb-bench` crate. Engine code
//! that reads the clock produces non-reproducible plans and results; all
//! timing belongs to the measurement harness.

use crate::{pattern, Diagnostic, Rule, SourceFile};

/// See module docs.
pub struct BenchDeterminism;

impl Rule for BenchDeterminism {
    fn id(&self) -> &'static str {
        "bench-determinism"
    }

    fn description(&self) -> &'static str {
        "Instant::now/SystemTime::now are confined to tpdb-bench — engine code stays \
         deterministic"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        super::in_src_tree(file) && !file.is_test_like && file.crate_name != "tpdb-bench"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            for clock in ["Instant", "SystemTime"] {
                if pattern::path_pair(tokens, i, clock, "now") {
                    let t = &tokens[i];
                    out.push(Diagnostic {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{clock}::now()` outside tpdb-bench — engine code must stay \
                             deterministic; thread timing through the bench harness"
                        ),
                    });
                }
            }
        }
    }
}
