//! `io-only-in-storage`: filesystem access (`std::fs`, `File::open`,
//! `OpenOptions`) is confined to the snapshot/import module of
//! `tpdb-storage` plus the measurement and tooling crates. Engine code
//! that touches the filesystem directly bypasses the catalog's typed
//! `SnapshotIo` error path and its all-or-nothing load discipline; query,
//! lineage and temporal code must route persistence through
//! `Catalog::{save_snapshot, load_snapshot, import_delimited_path}`.

use crate::{pattern, Diagnostic, Rule, SourceFile};

/// The one library module allowed to touch the filesystem: the snapshot
/// codec and bulk importer that own the `SnapshotIo` error path.
const STORAGE_IO_MODULE: &str = "crates/tpdb-storage/src/snapshot.rs";

/// See module docs.
pub struct IoOnlyInStorage;

impl Rule for IoOnlyInStorage {
    fn id(&self) -> &'static str {
        "io-only-in-storage"
    }

    fn description(&self) -> &'static str {
        "filesystem APIs are confined to tpdb-storage::snapshot (and the bench/lint \
         tooling) — engine code goes through the catalog's typed IO entry points"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        // Binaries (`src/bin/`, `main.rs`) are front-ends and may do IO;
        // the bench harness caches datasets and the lint tool reads
        // sources, so both crates are exempt wholesale.
        file.is_lib_src
            && !file.is_test_like
            && file.crate_name != "tpdb-bench"
            && file.crate_name != "tpdb-lint"
            && file.rel_path != STORAGE_IO_MODULE
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        let mut flag = |i: usize, api: &str| {
            let t = &tokens[i];
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{api}` outside `tpdb-storage::snapshot` — go through the catalog's \
                     typed IO entry points (save_snapshot/load_snapshot/import_delimited_path)"
                ),
            });
        };
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            // `std::fs` covers both the import (`use std::fs...`) and every
            // fully qualified call; a bare `fs::` use elsewhere still needs
            // that import, so one pattern catches the module.
            if pattern::path_pair(tokens, i, "std", "fs") {
                flag(i, "std::fs");
            }
            for ctor in ["open", "create", "create_new", "options"] {
                if pattern::path_pair(tokens, i, "File", ctor) {
                    flag(i, &format!("File::{ctor}"));
                }
            }
            if pattern::path_pair(tokens, i, "OpenOptions", "new") {
                flag(i, "OpenOptions::new");
            }
        }
    }
}
