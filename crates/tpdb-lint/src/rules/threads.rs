//! `no-unscoped-threads`: worker threads are created with
//! `std::thread::scope`, never `std::thread::spawn`. Scoped threads cannot
//! outlive the data they borrow and cannot leak past a join point — the
//! discipline the shared-catalog server front-end (ROADMAP item 3)
//! depends on.
//!
//! One module is sanctioned to call `thread::spawn`:
//! `crates/tpdb-server/src/pool.rs`. A server's acceptor, connection and
//! worker threads are *long-lived* — they outlive the function that starts
//! the server, which `thread::scope` cannot express. The pool module
//! restores the invariant the rule enforces by construction: every handle
//! it returns is recorded by the server and joined during shutdown, and it
//! only closes over `Arc`'d state (no borrows to outlive). Spawning
//! anywhere else in the server crate is still flagged, which keeps the
//! exemption auditable: one file to review, one place threads are born.
//!
//! Inside `tpdb-core` the rule is one notch stricter: even `thread::scope`
//! is confined to `crates/tpdb-core/src/morsel.rs`, the morsel scheduler's
//! `scope_workers` helper. The engine's parallelism is morsel-driven work
//! stealing; an operator that scoped its own threads would bypass the
//! shared injector (re-introducing static-partition skew) and scatter the
//! crate's thread topology across modules. Keeping one creation point
//! keeps it auditable — exactly the argument for the pool exemption, moved
//! with the code it protects.

use crate::{pattern, Diagnostic, Rule, SourceFile};

/// The one module sanctioned to call `thread::spawn`: the server's thread
/// pool, whose contract is that every returned handle is joined at
/// shutdown (see module docs).
const SANCTIONED_POOL_MODULE: &str = "crates/tpdb-server/src/pool.rs";

/// The one `tpdb-core` module sanctioned to call `thread::scope`: the
/// morsel scheduler, whose `scope_workers` is the crate's single thread
/// creation point (see module docs).
const SANCTIONED_SCHEDULER_MODULE: &str = "crates/tpdb-core/src/morsel.rs";

/// The source tree where `thread::scope` is restricted to
/// [`SANCTIONED_SCHEDULER_MODULE`].
const CORE_SRC_TREE: &str = "crates/tpdb-core/src/";

/// See module docs.
pub struct NoUnscopedThreads;

impl Rule for NoUnscopedThreads {
    fn id(&self) -> &'static str {
        "no-unscoped-threads"
    }

    fn description(&self) -> &'static str {
        "std::thread::spawn is forbidden — use thread::scope so workers are joined and \
         borrows are bounded; inside tpdb-core even thread::scope belongs to the morsel \
         scheduler only"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        super::in_src_tree(file) && !file.is_test_like && file.rel_path != SANCTIONED_POOL_MODULE
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            if pattern::path_pair(tokens, i, "thread", "spawn") {
                let t = &tokens[i];
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "unscoped `thread::spawn` — use `thread::scope` so every worker \
                              is joined and borrowed data cannot be outlived"
                        .to_owned(),
                });
            }
            if file.rel_path.starts_with(CORE_SRC_TREE)
                && file.rel_path != SANCTIONED_SCHEDULER_MODULE
                && pattern::path_pair(tokens, i, "thread", "scope")
            {
                let t = &tokens[i];
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "`thread::scope` outside the morsel scheduler — tpdb-core \
                              workers are born in `morsel::scope_workers` only; route \
                              parallel work through the shared injector"
                        .to_owned(),
                });
            }
        }
    }
}
