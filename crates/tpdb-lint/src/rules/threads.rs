//! `no-unscoped-threads`: worker threads are created with
//! `std::thread::scope`, never `std::thread::spawn`. Scoped threads cannot
//! outlive the data they borrow and cannot leak past a join point — the
//! discipline the shared-catalog server front-end (ROADMAP item 3)
//! depends on.

use crate::{pattern, Diagnostic, Rule, SourceFile};

/// See module docs.
pub struct NoUnscopedThreads;

impl Rule for NoUnscopedThreads {
    fn id(&self) -> &'static str {
        "no-unscoped-threads"
    }

    fn description(&self) -> &'static str {
        "std::thread::spawn is forbidden — use thread::scope so workers are joined and \
         borrows are bounded"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        super::in_src_tree(file) && !file.is_test_like
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            if pattern::path_pair(tokens, i, "thread", "spawn") {
                let t = &tokens[i];
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "unscoped `thread::spawn` — use `thread::scope` so every worker \
                              is joined and borrowed data cannot be outlived"
                        .to_owned(),
                });
            }
        }
    }
}
