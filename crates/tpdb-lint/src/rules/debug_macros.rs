//! `no-debug-macros`: library crates do not write to stdout/stderr.
//! `dbg!`/`println!` left behind after a debugging session corrupt the
//! output of every embedding application (and the benchmark JSON the CI
//! guards parse).

use crate::{pattern, Diagnostic, Rule, SourceFile};

/// Output macros forbidden in library code.
const FORBIDDEN: &[&str] = &["dbg", "println", "print", "eprintln", "eprint"];

/// See module docs.
pub struct NoDebugMacros;

impl Rule for NoDebugMacros {
    fn id(&self) -> &'static str {
        "no-debug-macros"
    }

    fn description(&self) -> &'static str {
        "dbg!/println!/eprintln! are forbidden in library crates — return values or use the \
         bench/CLI binaries for output"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        // tpdb-bench is the measurement harness: its library prints tables
        // by design. Binaries (`src/bin/`, `main.rs`) are excluded via
        // `is_lib_src`.
        file.is_lib_src && !file.is_test_like && file.crate_name != "tpdb-bench"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            for mac in FORBIDDEN {
                if pattern::macro_call(tokens, i, mac) {
                    let t = &tokens[i];
                    out.push(Diagnostic {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{mac}!` in library code — libraries must not write to \
                             stdout/stderr; return the value or move the output to a binary"
                        ),
                    });
                }
            }
        }
    }
}
