//! `nan-memo-discipline`: the probability memo uses `f64::NAN` as its
//! "uncomputed" sentinel. `NaN == NaN` is `false`, so a direct `==`/`!=`
//! against the sentinel silently always misses — a *wrong-probability* bug,
//! not a crash. Sentinel checks must go through `.is_nan()`.

use crate::{Diagnostic, Rule, SourceFile, Token};

/// See module docs.
pub struct NanMemoDiscipline;

impl Rule for NanMemoDiscipline {
    fn id(&self) -> &'static str {
        "nan-memo-discipline"
    }

    fn description(&self) -> &'static str {
        "never compare against the NaN memo sentinel with ==/!= — NaN never compares equal; \
         use .is_nan()"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.is_lib_src && !file.is_test_like
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            if !(tokens[i].is_punct("==") || tokens[i].is_punct("!=")) {
                continue;
            }
            // `f64::NAN == x`, `x != f64::NAN`, `NAN == x`, ... — the NAN
            // path tail sits directly on either side of the operator.
            let lhs_nan = i > 0 && is_nan_ident(&tokens[i - 1]);
            let rhs_nan = tokens.get(i + 1).is_some_and(is_nan_ident)
                || (tokens.get(i + 1).is_some_and(|t| t.is_ident("f64"))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct("::"))
                    && tokens.get(i + 3).is_some_and(is_nan_ident));
            if lhs_nan || rhs_nan {
                let t = &tokens[i];
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "direct comparison against the NaN memo sentinel — NaN never \
                              compares equal, so this check always misses; use `.is_nan()`"
                        .to_owned(),
                });
            }
        }
    }
}

fn is_nan_ident(t: &Token) -> bool {
    t.is_ident("NAN") || t.is_ident("NAN_SENTINEL")
}
