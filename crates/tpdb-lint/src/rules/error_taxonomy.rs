//! `error-taxonomy`: public APIs speak the project's typed error enums
//! (`TpdbError`, `StorageError`, ...). `Box<dyn Error>` erases the variant
//! a caller could match on, and `Result<_, String>` erases even the type —
//! both undo the PR 4 error unification.

use crate::lexer::TokenKind;
use crate::{Diagnostic, Rule, SourceFile};

/// See module docs.
pub struct ErrorTaxonomy;

impl Rule for ErrorTaxonomy {
    fn id(&self) -> &'static str {
        "error-taxonomy"
    }

    fn description(&self) -> &'static str {
        "no Box<dyn Error> and no String-typed error returns in library code — use the \
         typed TpdbError/StorageError taxonomy"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.is_lib_src && !file.is_test_like
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_code(i) {
                continue;
            }
            // Box < dyn ... Error ... >
            if tokens[i].is_ident("Box")
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("<"))
                && tokens.get(i + 2).is_some_and(|t| t.is_ident("dyn"))
            {
                let end = generic_end(tokens, i + 1);
                if tokens[i + 2..end].iter().any(|t| t.is_ident("Error")) {
                    out.push(self.diag(
                        file,
                        i,
                        "`Box<dyn Error>` erases the error variant — return a typed \
                         `TpdbError`/`StorageError` the caller can match on",
                    ));
                }
            }
            // Result < ..., String >
            if tokens[i].is_ident("Result") && tokens.get(i + 1).is_some_and(|t| t.is_punct("<")) {
                let end = generic_end(tokens, i + 1);
                if let Some(comma) = top_level_comma(tokens, i + 2, end) {
                    let err_ty = &tokens[comma + 1..end.saturating_sub(1)];
                    if err_ty.len() == 1 && err_ty[0].is_ident("String") {
                        out.push(self.diag(
                            file,
                            i,
                            "`Result<_, String>` hides the failure taxonomy — define or reuse \
                             a typed error enum instead of a string",
                        ));
                    }
                }
            }
        }
    }
}

impl ErrorTaxonomy {
    fn diag(&self, file: &SourceFile, token: usize, message: &str) -> Diagnostic {
        let t = &file.tokens[token];
        Diagnostic {
            rule: self.id(),
            path: file.rel_path.clone(),
            line: t.line,
            col: t.col,
            message: message.to_owned(),
        }
    }
}

/// With `tokens[open]` being `<`, returns the index just past the matching
/// `>` (angle depth; `<`/`>` are single tokens by lexer construction).
fn generic_end(tokens: &[crate::Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct("<") {
            depth += 1;
        } else if tokens[i].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if tokens[i].kind == TokenKind::Punct
            && (tokens[i].text == ";" || tokens[i].text == "{")
        {
            // Comparison operator misparse (`a < b; ...`): bail out.
            return i;
        }
        i += 1;
    }
    tokens.len()
}

/// First comma at angle-depth 1 / paren-depth 0 in `tokens[start..end]`.
fn top_level_comma(tokens: &[crate::Token], start: usize, end: usize) -> Option<usize> {
    let mut angle = 0isize;
    let mut round = 0isize;
    for (i, t) in tokens
        .iter()
        .enumerate()
        .take(end.min(tokens.len()))
        .skip(start)
    {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" | "[" => round += 1,
            ")" | "]" => round -= 1,
            "," if angle == 0 && round == 0 => return Some(i),
            _ => {}
        }
    }
    None
}
