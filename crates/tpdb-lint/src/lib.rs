//! `tpdb-lint` — workspace-aware static analysis for the tpdb engine.
//!
//! The engine's correctness rests on conventions the Rust compiler cannot
//! see: hot streaming paths must move interned `LineageRef` ids and never
//! clone legacy lineage trees, library code must return `TpdbError` /
//! `StorageError` instead of panicking, the probability memo's NaN sentinel
//! must never be compared with `==`, and the crates must stay free of
//! unscoped threads and nondeterministic clocks before a shared-catalog
//! server front-end can exist. This crate is an offline, dependency-free
//! checker for exactly those invariants: a hand-rolled [lexer], a
//! [rule framework](Rule) over the token stream, and a workspace walker
//! that runs every rule over every crate.
//!
//! Sanctioned exceptions are allow-listed in the source itself with
//!
//! ```text
//! // tpdb-lint: allow(no-panic-in-lib) — invariant: windows carry λs
//! ```
//!
//! which suppresses the named rule on the comment's line and the line
//! below it. Diagnostics carry `file:line:col` spans and render either
//! human-readable or as machine-readable JSON (`--json`).
//!
//! `LineageRef`: see `tpdb-lineage`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use lexer::LexOutput;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The id of the violated rule (e.g. `no-panic-in-lib`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)
    }
}

/// A single static-analysis rule over the token stream of one file.
pub trait Rule {
    /// Stable kebab-case identifier (used in diagnostics and allow
    /// comments).
    fn id(&self) -> &'static str;

    /// One-line description of the invariant the rule enforces.
    fn description(&self) -> &'static str;

    /// Does this rule scan this file at all? (Path-based scoping: hot
    /// stream modules, library sources, `lib.rs` headers, ...)
    fn applies(&self, file: &SourceFile) -> bool;

    /// Emits diagnostics for every violation in `file`. Allow-comment
    /// filtering happens in the driver — rules report everything they see.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// A lexed source file plus the precomputed context rules match against.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// The crate the file belongs to (`tpdb-core`, ... or `tpdb` for the
    /// umbrella sources under the workspace root).
    pub crate_name: String,
    /// Is this library source (under `src/`, not `src/bin/`, not
    /// `main.rs`)?
    pub is_lib_src: bool,
    /// Is this test-like code (under `tests/`, `benches/`, `examples/`, or
    /// a `testutil` module)?
    pub is_test_like: bool,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]` item or a `#[test]`
    /// function.
    pub test_mask: Vec<bool>,
    /// `rule id -> lines` suppressed by `tpdb-lint: allow(...)` comments.
    pub allows: BTreeMap<String, BTreeSet<u32>>,
}

impl SourceFile {
    /// Lexes and analyzes a file's text under a workspace-relative path.
    /// The path determines crate attribution and scoping, so fixtures can
    /// impersonate any location in the workspace.
    #[must_use]
    pub fn from_text(rel_path: &str, text: &str) -> Self {
        let rel_path = rel_path.replace('\\', "/");
        let LexOutput { tokens, comments } = lexer::lex(text);
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("tpdb")
            .to_owned();
        let after_crate = rel_path
            .strip_prefix(&format!("crates/{crate_name}/"))
            .unwrap_or(&rel_path);
        let is_lib_src = after_crate.starts_with("src/")
            && !after_crate.starts_with("src/bin/")
            && !after_crate.ends_with("/main.rs")
            && after_crate != "src/main.rs";
        let is_test_like = after_crate.starts_with("tests/")
            || after_crate.starts_with("benches/")
            || after_crate.starts_with("examples/")
            || after_crate.contains("testutil");
        let test_mask = compute_test_mask(&tokens);
        let mut allows: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        for comment in &comments {
            for rule in parse_allow(&comment.text) {
                let lines = allows.entry(rule).or_default();
                // The allow covers the comment's own line(s) and the line
                // directly below — both the trailing and the standalone
                // comment style.
                for l in comment.line..=comment.end_line + 1 {
                    lines.insert(l);
                }
            }
        }
        Self {
            rel_path,
            crate_name,
            is_lib_src,
            is_test_like,
            tokens,
            test_mask,
            allows,
        }
    }

    /// Loads and analyzes the file at `root.join(rel_path)`.
    pub fn load(root: &Path, rel_path: &str) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(root.join(rel_path))?;
        Ok(Self::from_text(rel_path, text.as_str()))
    }

    /// Is the token at `i` inside test code (`#[cfg(test)]` item or
    /// `#[test]` fn)?
    #[must_use]
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Is this diagnostic suppressed by an allow comment?
    #[must_use]
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(rule).is_some_and(|l| l.contains(&line))
    }
}

/// Extracts rule ids from a `tpdb-lint: allow(rule-a, rule-b)` comment.
fn parse_allow(comment: &str) -> Vec<String> {
    let Some(idx) = comment.find("tpdb-lint:") else {
        return Vec::new();
    };
    let rest = &comment[idx + "tpdb-lint:".len()..];
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(end) = args.find(')') else {
        return Vec::new();
    };
    args[..end]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect()
}

/// Marks every token inside a `#[cfg(test)]` item (usually `mod tests {}`)
/// or a `#[test]` function body, including the attribute tokens themselves.
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = test_attr_end(tokens, i) {
            // Skip any further attributes between the test attr and the
            // item (`#[cfg(test)] #[allow(...)] mod tests {`).
            let mut j = after_attr;
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_balanced(tokens, j + 1, "[", "]");
            }
            // Find the item's opening brace (stop at `;`: `mod t;` has no
            // inline body to mask).
            let mut k = j;
            let mut body: Option<usize> = None;
            while k < tokens.len() {
                if tokens[k].is_punct("{") {
                    body = Some(k);
                    break;
                }
                if tokens[k].is_punct(";") {
                    break;
                }
                k += 1;
            }
            if let Some(open) = body {
                let close = matching_brace(tokens, open);
                for m in mask.iter_mut().take(close + 1).skip(i) {
                    *m = true;
                }
                i = close + 1;
                continue;
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// If a `#[cfg(test)]`, `#[cfg(all(test, ...))]` or `#[test]` attribute
/// starts at token `i`, returns the index just past its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct("#") || !tokens.get(i + 1)?.is_punct("[") {
        return None;
    }
    let end = skip_balanced(tokens, i + 1, "[", "]");
    let inner = &tokens[i + 2..end.saturating_sub(1).max(i + 2)];
    let is_test_attr = match inner.first() {
        Some(t) if t.is_ident("test") => inner.len() == 1,
        Some(t) if t.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
        _ => false,
    };
    is_test_attr.then_some(end)
}

/// With `tokens[open_idx]` being `open`, returns the index just past the
/// matching `close` (saturating at end of stream).
fn skip_balanced(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the `}` matching the `{` at `open` (saturating at end).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    skip_balanced(tokens, open, "{", "}").saturating_sub(1)
}

/// The outcome of a workspace (or fixture) check.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived allow-comment filtering, ordered by
    /// (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_checked: usize,
}

impl Report {
    /// Did the check pass?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report the way `rustc` renders errors, one block per
    /// diagnostic, plus a summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push_str("\n\n");
        }
        out.push_str(&format!(
            "tpdb-lint: {} file(s) checked, {} rule(s), {} violation(s)",
            self.files_checked,
            rules::all().len(),
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the report as machine-readable JSON (stable key order, no
    /// dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_checked\":{},", self.files_checked));
        out.push_str("\"rules\":[");
        let rules = rules::all();
        for (i, r) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", r.id()));
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"column\":{},\"message\":\"{}\"}}",
                json_escape(d.rule),
                json_escape(&d.path),
                d.line,
                d.col,
                json_escape(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs every rule against one analyzed file, applying allow-comment
/// filtering. Exposed for the fixture harness.
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rule in rules::all() {
        if rule.applies(file) {
            rule.check(file, &mut diags);
        }
    }
    diags.retain(|d| !file.is_allowed(d.rule, d.line));
    diags
}

/// Walks the workspace at `root` and checks every source file of every
/// crate (crate `src/`, `tests/`, `benches/`, `examples/` plus the
/// umbrella sources), excluding `vendor/`, `target/` and this crate's own
/// fixture corpus.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for dir in ["src", "tests", "examples"] {
        collect_rs(&root.join(dir), root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                for dir in ["src", "tests", "benches", "examples"] {
                    collect_rs(&entry.path().join(dir), root, &mut files)?;
                }
            }
        }
    }
    files.sort();
    let mut report = Report::default();
    for rel in &files {
        // The fixture corpus intentionally violates the rules.
        if rel.contains("tests/fixtures/") {
            continue;
        }
        let file = SourceFile::load(root, rel)?;
        report.diagnostics.extend(check_file(&file));
        report.files_checked += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

// Re-exported for rule implementations and tests.
pub use lexer::{Comment, Token, TokenKind};

/// Token-pattern helpers shared by the rules.
pub mod pattern {
    use super::{Token, TokenKind};

    /// Is `tokens[i..]` a method call `.name(`? Returns the index of the
    /// name token.
    #[must_use]
    pub fn method_call(tokens: &[Token], i: usize, name: &str) -> bool {
        tokens[i].is_punct(".")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident(name))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct("("))
    }

    /// Is `tokens[i..]` a macro invocation `name!`?
    #[must_use]
    pub fn macro_call(tokens: &[Token], i: usize, name: &str) -> bool {
        tokens[i].is_ident(name) && tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
    }

    /// Is `tokens[i..]` a path segment pair `a::b`?
    #[must_use]
    pub fn path_pair(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
        tokens[i].is_ident(a)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident(b))
    }

    /// The nearest identifier *ending* the expression before token `i`
    /// (used to guess the receiver of a method call): walks left over at
    /// most one `()`/`[]` group.
    #[must_use]
    pub fn receiver_ident(tokens: &[Token], i: usize) -> Option<&str> {
        let mut j = i.checked_sub(1)?;
        // x.foo().clone(): skip the call's argument list.
        for (open, close) in [("(", ")"), ("[", "]")] {
            if tokens[j].is_punct(close) {
                let mut depth = 0usize;
                loop {
                    if tokens[j].is_punct(close) {
                        depth += 1;
                    } else if tokens[j].is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
            }
        }
        (tokens[j].kind == TokenKind::Ident).then(|| tokens[j].text.as_str())
    }
}
