//! The `tpdb-lint` command-line driver.
//!
//! ```text
//! tpdb-lint check [--json] [--output FILE] [--root DIR]
//! tpdb-lint rules
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.
//! With `--json`, machine-readable diagnostics go to stdout (or `FILE`
//! with `--output`) and the human-readable rendering goes to stderr, so a
//! CI job can upload the artifact *and* show `file:line:col` in the log.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("tpdb-lint: {message}");
            eprintln!(
                "usage: tpdb-lint check [--json] [--output FILE] [--root DIR]\n       tpdb-lint rules"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut command: Option<&str> = None;
    let mut json = false;
    let mut output: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "rules" if command.is_none() => command = Some(arg),
            "--json" => json = true,
            "--output" => {
                let value = it.next().ok_or("--output requires a file path")?;
                output = Some(PathBuf::from(value));
            }
            "--root" => {
                let value = it.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(value));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    match command {
        Some("rules") => {
            for rule in tpdb_lint::rules::all() {
                println!("{:<30} {}", rule.id(), rule.description());
            }
            Ok(true)
        }
        Some("check") => {
            let root = match root {
                Some(r) => r,
                None => {
                    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
                    tpdb_lint::find_workspace_root(&cwd)
                        .ok_or("no workspace root found (run inside the repo or pass --root)")?
                }
            };
            let report = tpdb_lint::check_workspace(&root)
                .map_err(|e| format!("cannot read workspace at {}: {e}", root.display()))?;
            if json {
                let payload = report.to_json();
                match &output {
                    Some(path) => std::fs::write(path, &payload)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
                    None => println!("{payload}"),
                }
                // The rendered diagnostics still belong in the log.
                eprintln!("{}", report.render());
            } else {
                println!("{}", report.render());
            }
            Ok(report.is_clean())
        }
        _ => Err("missing command".to_owned()),
    }
}
