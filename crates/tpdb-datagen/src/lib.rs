//! # tpdb-datagen
//!
//! Deterministic, seeded generators for the workloads used in the paper's
//! evaluation (Section IV) and for the examples and tests of this
//! repository.
//!
//! The original evaluation uses two real-world datasets that are not
//! redistributable with this repository:
//!
//! * the **Webkit** dataset (file-change history of the WebKit SVN
//!   repository): predictions that a file remains unchanged over an
//!   interval — many distinct join values (one per file), non-overlapping
//!   version intervals per file, a selective equi-join condition;
//! * the **Meteo Swiss** dataset: predictions that a metric at a weather
//!   station does not vary by more than 0.1 over an interval — very few
//!   distinct join values (metrics) drawn uniformly, hence a non-selective
//!   join condition.
//!
//! [`webkit_like`] and [`meteo_like`] generate synthetic datasets with the
//! same structural properties (see DESIGN.md §3 for the substitution
//! rationale); [`uniform`] and [`zipf`] provide fully parameterizable
//! workloads for ablations. [`booking_example`] reproduces the running
//! example of Fig. 1 exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod booking;
mod synthetic;

pub use booking::booking_example;
pub use synthetic::{meteo_like, uniform, webkit_like, zipf, GeneratorConfig};
