//! The running example of the paper (Fig. 1).

use tpdb_lineage::{Lineage, SymbolTable};
use tpdb_storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb_temporal::Interval;

/// Builds the booking-website example of Fig. 1: relation `a`
/// (*wantsToVisit*) with tuples `a1`, `a2` and relation `b`
/// (*hotelAvailability*) with tuples `b1`, `b2`, `b3`.
///
/// ```
/// let (a, b) = tpdb_datagen::booking_example();
/// assert_eq!(a.len(), 2);
/// assert_eq!(b.len(), 3);
/// ```
#[must_use]
pub fn booking_example() -> (TpRelation, TpRelation) {
    let mut syms = SymbolTable::new();
    let mut a = TpRelation::new(
        "a",
        Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]),
    );
    let rows_a = [("Ann", "ZAK", (2, 8), 0.7), ("Jim", "WEN", (7, 10), 0.8)];
    for (i, (name, loc, iv, p)) in rows_a.iter().enumerate() {
        let var = syms.intern(&format!("a{}", i + 1));
        a.push(TpTuple::new(
            vec![Value::str(name), Value::str(loc)],
            Lineage::var(var),
            Interval::new(iv.0, iv.1),
            *p,
        ))
        .expect("static example rows are valid");
    }

    let mut b = TpRelation::new(
        "b",
        Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]),
    );
    let rows_b = [
        ("hotel3", "SOR", (1, 4), 0.9),
        ("hotel2", "ZAK", (5, 8), 0.6),
        ("hotel1", "ZAK", (4, 6), 0.7),
    ];
    for (i, (hotel, loc, iv, p)) in rows_b.iter().enumerate() {
        let var = syms.intern(&format!("b{}", i + 1));
        b.push(TpTuple::new(
            vec![Value::str(hotel), Value::str(loc)],
            Lineage::var(var),
            Interval::new(iv.0, iv.1),
            *p,
        ))
        .expect("static example rows are valid");
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_storage::check_duplicate_free;

    #[test]
    fn example_matches_fig_1a() {
        let (a, b) = booking_example();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(a.tuple(0).fact(0), &Value::str("Ann"));
        assert_eq!(a.tuple(0).interval(), Interval::new(2, 8));
        assert!((a.tuple(0).probability() - 0.7).abs() < 1e-12);
        assert_eq!(b.tuple(2).fact(0), &Value::str("hotel1"));
        assert_eq!(b.tuple(2).interval(), Interval::new(4, 6));
    }

    #[test]
    fn example_relations_are_duplicate_free() {
        let (a, b) = booking_example();
        assert!(check_duplicate_free(&a).is_empty());
        assert!(check_duplicate_free(&b).is_empty());
    }
}
