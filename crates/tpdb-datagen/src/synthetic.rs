//! Synthetic workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpdb_lineage::Lineage;
use tpdb_storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb_temporal::Interval;

/// Parameters of the generic synthetic generators ([`uniform`] / [`zipf`]).
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Relation name (also used as the prefix of the lineage symbols).
    pub name: String,
    /// Number of tuples to generate.
    pub tuples: usize,
    /// Number of distinct join-key values.
    pub distinct_keys: usize,
    /// Average interval duration (chronons).
    pub avg_duration: i64,
    /// Average gap between consecutive intervals of the same fact.
    pub avg_gap: i64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl GeneratorConfig {
    /// A reasonable default configuration for `tuples` tuples.
    #[must_use]
    pub fn new(name: &str, tuples: usize) -> Self {
        Self {
            name: name.to_owned(),
            tuples,
            distinct_keys: (tuples / 20).max(1),
            avg_duration: 50,
            avg_gap: 10,
            seed: 42,
        }
    }

    /// Overrides the number of distinct join-key values.
    #[must_use]
    pub fn with_distinct_keys(mut self, distinct_keys: usize) -> Self {
        self.distinct_keys = distinct_keys.max(1);
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the average interval duration.
    #[must_use]
    pub fn with_avg_duration(mut self, avg_duration: i64) -> Self {
        self.avg_duration = avg_duration.max(1);
        self
    }
}

/// Appends `count` tuples for the fact `facts` to `rel`, walking the
/// timeline forward so that the per-fact intervals never overlap (the
/// duplicate-free TP constraint).
fn push_fact_history(
    rel: &mut TpRelation,
    facts: Vec<Value>,
    count: usize,
    rng: &mut StdRng,
    avg_duration: i64,
    avg_gap: i64,
    next_symbol: &mut u64,
) {
    let mut cursor: i64 = rng.random_range(0..avg_duration * 4 + 1);
    for _ in 0..count {
        let duration = rng.random_range(1..=avg_duration.max(1) * 2);
        let gap = rng.random_range(0..=avg_gap.max(0) * 2);
        let start = cursor + gap;
        let end = start + duration;
        cursor = end;
        let prob = rng.random_range(0.05..1.0);
        let lineage = Lineage::var(tpdb_lineage::VarId(
            u32::try_from(*next_symbol).expect("variable id overflow"),
        ));
        *next_symbol += 1;
        rel.push(TpTuple::new(
            facts.clone(),
            lineage,
            Interval::new(start, end),
            prob,
        ))
        .expect("generated tuples are schema-valid");
    }
}

/// Generates a single-key-column relation with uniformly distributed join
/// keys. Facts are `(Key: INT)`; per-key interval histories never overlap.
#[must_use]
pub fn uniform(config: &GeneratorConfig) -> TpRelation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rel = TpRelation::new(&config.name, Schema::tp(&[("Key", DataType::Int)]));
    let mut next_symbol: u64 = (config.seed % 400) * 10_000_000;
    if config.tuples == 0 {
        return rel;
    }
    // Distribute tuples (almost) evenly over the keys.
    let per_key = config.tuples / config.distinct_keys;
    let remainder = config.tuples % config.distinct_keys;
    for key in 0..config.distinct_keys {
        let count = per_key + usize::from(key < remainder);
        if count == 0 {
            continue;
        }
        push_fact_history(
            &mut rel,
            vec![Value::Int(key as i64)],
            count,
            &mut rng,
            config.avg_duration,
            config.avg_gap,
            &mut next_symbol,
        );
    }
    rel
}

/// Generates a single-key-column relation whose join keys follow a Zipf
/// distribution with exponent `skew` (1.0 ≈ classic Zipf): a few keys own
/// most of the tuples, producing heavily skewed join fan-outs.
#[must_use]
pub fn zipf(config: &GeneratorConfig, skew: f64) -> TpRelation {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rel = TpRelation::new(&config.name, Schema::tp(&[("Key", DataType::Int)]));
    let mut next_symbol: u64 = (config.seed % 400) * 10_000_000 + 5_000_000;
    if config.tuples == 0 {
        return rel;
    }
    // Zipf weights per key.
    let weights: Vec<f64> = (1..=config.distinct_keys)
        .map(|k| 1.0 / (k as f64).powf(skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * config.tuples as f64).floor() as usize)
        .collect();
    let assigned: usize = counts.iter().sum();
    // distribute the rounding remainder to the heaviest keys
    for i in 0..(config.tuples - assigned) {
        counts[i % config.distinct_keys] += 1;
    }
    for (key, count) in counts.into_iter().enumerate() {
        if count == 0 {
            continue;
        }
        push_fact_history(
            &mut rel,
            vec![Value::Int(key as i64)],
            count,
            &mut rng,
            config.avg_duration,
            config.avg_gap,
            &mut next_symbol,
        );
    }
    rel
}

/// Generates a **Webkit-like** dataset pair: file-change histories with many
/// distinct join values (one per file, ≈ 20 versions each), non-overlapping
/// version intervals per file and a selective equi-join on the file id.
///
/// Returns the positive and negative relation of the experiments (schema
/// `(File: INT)` each), with disjoint lineage variable ranges.
#[must_use]
pub fn webkit_like(tuples: usize, seed: u64) -> (TpRelation, TpRelation) {
    let keys = (tuples / 20).max(1);
    let r = uniform(&GeneratorConfig {
        name: "webkit_r".to_owned(),
        tuples,
        distinct_keys: keys,
        avg_duration: 80,
        avg_gap: 5,
        seed,
    });
    let s = uniform(&GeneratorConfig {
        name: "webkit_s".to_owned(),
        tuples,
        distinct_keys: keys,
        avg_duration: 80,
        avg_gap: 5,
        seed: seed.wrapping_add(1),
    });
    (r.renamed("webkit_r"), rename_keys(s, "webkit_s"))
}

/// Generates a **Meteo-like** dataset pair: station measurements with very
/// few distinct join values (metrics) drawn uniformly — the non-selective
/// workload of the paper. Schema: `(Station: INT, Metric: INT)`, join on
/// `Metric`.
#[must_use]
pub fn meteo_like(tuples: usize, seed: u64) -> (TpRelation, TpRelation) {
    (
        meteo_relation("meteo_r", tuples, seed, 0),
        meteo_relation("meteo_s", tuples, seed.wrapping_add(1), 500_000_000),
    )
}

fn meteo_relation(name: &str, tuples: usize, seed: u64, symbol_offset: u64) -> TpRelation {
    const METRICS: usize = 40;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = TpRelation::new(
        name,
        Schema::tp(&[("Station", DataType::Int), ("Metric", DataType::Int)]),
    );
    if tuples == 0 {
        return rel;
    }
    let stations = (tuples / 400).max(1);
    let facts = stations * METRICS;
    let per_fact = (tuples / facts).max(1);
    let mut next_symbol: u64 = symbol_offset + 100_000_000;
    let mut emitted = 0usize;
    'outer: for station in 0..stations {
        for metric in 0..METRICS {
            let count = per_fact.min(tuples - emitted);
            if count == 0 {
                break 'outer;
            }
            push_fact_history(
                &mut rel,
                vec![Value::Int(station as i64), Value::Int(metric as i64)],
                count,
                &mut rng,
                20,
                5,
                &mut next_symbol,
            );
            emitted += count;
        }
    }
    // top up to the exact requested cardinality with extra stations
    let mut extra_station = stations as i64;
    while emitted < tuples {
        let count = (tuples - emitted).min(per_fact);
        let metric = (emitted % METRICS) as i64;
        push_fact_history(
            &mut rel,
            vec![Value::Int(extra_station), Value::Int(metric)],
            count,
            &mut rng,
            20,
            5,
            &mut next_symbol,
        );
        emitted += count;
        extra_station += 1;
    }
    rel
}

fn rename_keys(rel: TpRelation, name: &str) -> TpRelation {
    rel.renamed(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_storage::check_duplicate_free;

    #[test]
    fn uniform_generates_requested_cardinality() {
        let rel = uniform(&GeneratorConfig::new("u", 1000));
        assert_eq!(rel.len(), 1000);
        assert!(check_duplicate_free(&rel).is_empty());
        // probabilities are valid
        assert!(rel.iter().all(|t| (0.0..=1.0).contains(&t.probability())));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(&GeneratorConfig::new("u", 500).with_seed(7));
        let b = uniform(&GeneratorConfig::new("u", 500).with_seed(7));
        let c = uniform(&GeneratorConfig::new("u", 500).with_seed(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_distinct_keys() {
        let rel = uniform(&GeneratorConfig::new("u", 600).with_distinct_keys(30));
        assert_eq!(rel.distinct_values(0).len(), 30);
    }

    #[test]
    fn zipf_skews_key_frequencies() {
        let rel = zipf(&GeneratorConfig::new("z", 2000).with_distinct_keys(50), 1.2);
        assert_eq!(rel.len(), 2000);
        assert!(check_duplicate_free(&rel).is_empty());
        // key 0 must own far more tuples than key 49
        let count = |k: i64| rel.iter().filter(|t| t.fact(0) == &Value::Int(k)).count();
        assert!(count(0) > 5 * count(49).max(1));
    }

    #[test]
    fn webkit_like_has_many_distinct_selective_keys() {
        let (r, s) = webkit_like(2000, 1);
        assert_eq!(r.len(), 2000);
        assert_eq!(s.len(), 2000);
        assert!(check_duplicate_free(&r).is_empty());
        assert!(check_duplicate_free(&s).is_empty());
        // ≈ one key per 20 tuples
        assert!(r.distinct_values(0).len() >= 90);
        // lineage variable ranges of the two relations are disjoint
        let vars_r: std::collections::BTreeSet<_> =
            r.iter().flat_map(|t| t.lineage().vars()).collect();
        let vars_s: std::collections::BTreeSet<_> =
            s.iter().flat_map(|t| t.lineage().vars()).collect();
        assert!(vars_r.is_disjoint(&vars_s));
    }

    #[test]
    fn meteo_like_has_few_distinct_join_values() {
        let (r, s) = meteo_like(2000, 1);
        assert_eq!(r.len(), 2000);
        assert_eq!(s.len(), 2000);
        assert!(check_duplicate_free(&r).is_empty());
        assert!(check_duplicate_free(&s).is_empty());
        // the join column (Metric) has at most 40 distinct values
        assert!(r.distinct_values(1).len() <= 40);
        // ... which is much smaller than the relation size (non-selective θ)
        assert!(r.distinct_values(1).len() * 10 < r.len());
        let vars_r: std::collections::BTreeSet<_> =
            r.iter().flat_map(|t| t.lineage().vars()).collect();
        let vars_s: std::collections::BTreeSet<_> =
            s.iter().flat_map(|t| t.lineage().vars()).collect();
        assert!(vars_r.is_disjoint(&vars_s));
    }

    #[test]
    fn zero_tuples_is_fine() {
        assert_eq!(uniform(&GeneratorConfig::new("u", 0)).len(), 0);
        let (r, s) = meteo_like(0, 3);
        assert!(r.is_empty() && s.is_empty());
    }
}
