//! Coalescing sets of disjoint intervals.

use crate::{Interval, TimePoint};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of time points represented as a minimal, sorted sequence of
/// pairwise-disjoint, non-adjacent intervals.
///
/// `IntervalSet` is used to track coverage during the LAWAU sweep (the
/// sub-intervals of a positive tuple already covered by overlapping windows)
/// and to express point-wise semantics in tests: two temporal results are
/// equivalent iff they cover the same interval set per fact with the same
/// probability at each point.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSet {
    /// Sorted, coalesced intervals.
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from arbitrary intervals (they may overlap; the result
    /// is coalesced).
    #[must_use]
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut s = Self::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Is the set empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of maximal intervals in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Total number of chronons covered.
    #[must_use]
    pub fn total_duration(&self) -> i64 {
        self.intervals.iter().map(Interval::duration).sum()
    }

    /// The maximal intervals, sorted by start point.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Does the set contain the given time point?
    #[must_use]
    pub fn contains_point(&self, t: TimePoint) -> bool {
        // Binary search over sorted disjoint intervals.
        self.intervals
            .binary_search_by(|iv| {
                if iv.end() <= t {
                    std::cmp::Ordering::Less
                } else if iv.start() > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Inserts an interval, coalescing with overlapping or adjacent
    /// intervals already in the set.
    pub fn insert(&mut self, interval: Interval) {
        // Find insertion window of intervals that overlap or are adjacent.
        let mut merged = interval;
        let mut first = self.intervals.len();
        let mut last = first;
        for (idx, iv) in self.intervals.iter().enumerate() {
            if iv.overlaps(&merged) || iv.adjacent(&merged) {
                if idx < first {
                    first = idx;
                }
                last = idx + 1;
                merged = merged.hull(iv);
            } else if iv.start() > merged.end() {
                if first == self.intervals.len() {
                    first = idx;
                    last = idx;
                }
                break;
            }
        }
        if first == self.intervals.len() {
            // All existing intervals end before the new one starts.
            self.intervals.push(merged);
        } else {
            self.intervals.splice(first..last, std::iter::once(merged));
        }
    }

    /// Removes the given interval from the set.
    pub fn remove(&mut self, interval: Interval) {
        let mut next = Vec::with_capacity(self.intervals.len() + 1);
        for iv in &self.intervals {
            next.extend(iv.difference(&interval));
        }
        self.intervals = next;
    }

    /// The complement of the set within `domain`: the maximal sub-intervals
    /// of `domain` not covered by the set.
    ///
    /// This is exactly the "gap-filling" operation LAWAU performs when it
    /// derives the remaining unmatched windows of a tuple from its
    /// overlapping windows.
    #[must_use]
    pub fn gaps_within(&self, domain: Interval) -> Vec<Interval> {
        let mut gaps = Vec::new();
        let mut cursor = domain.start();
        for iv in &self.intervals {
            if iv.end() <= domain.start() {
                continue;
            }
            if iv.start() >= domain.end() {
                break;
            }
            if iv.start() > cursor {
                gaps.push(Interval::new(cursor, iv.start().min(domain.end())));
            }
            cursor = cursor.max(iv.end());
            if cursor >= domain.end() {
                break;
            }
        }
        if cursor < domain.end() {
            gaps.push(Interval::new(cursor, domain.end()));
        }
        gaps
    }

    /// Union of two sets.
    #[must_use]
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = self.clone();
        for iv in &other.intervals {
            out.insert(*iv);
        }
        out
    }

    /// Intersection of two sets.
    #[must_use]
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                if let Some(i) = a.intersect(b) {
                    out.push(i);
                }
            }
        }
        IntervalSet::from_intervals(out)
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        Self::from_intervals(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_coalesces_overlaps_and_adjacency() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(1, 3));
        s.insert(Interval::new(5, 8));
        assert_eq!(s.len(), 2);
        // overlapping with the first
        s.insert(Interval::new(2, 4));
        assert_eq!(s.intervals(), &[Interval::new(1, 4), Interval::new(5, 8)]);
        // adjacent bridges the gap
        s.insert(Interval::new(4, 5));
        assert_eq!(s.intervals(), &[Interval::new(1, 8)]);
    }

    #[test]
    fn insert_out_of_order_keeps_sorted() {
        let s = IntervalSet::from_intervals([
            Interval::new(10, 12),
            Interval::new(1, 2),
            Interval::new(5, 7),
        ]);
        assert_eq!(
            s.intervals(),
            &[
                Interval::new(1, 2),
                Interval::new(5, 7),
                Interval::new(10, 12)
            ]
        );
        assert_eq!(s.total_duration(), 1 + 2 + 2);
    }

    #[test]
    fn contains_point_binary_search() {
        let s = IntervalSet::from_intervals([Interval::new(1, 3), Interval::new(6, 9)]);
        assert!(s.contains_point(1));
        assert!(s.contains_point(2));
        assert!(!s.contains_point(3));
        assert!(!s.contains_point(5));
        assert!(s.contains_point(8));
        assert!(!s.contains_point(9));
    }

    #[test]
    fn gaps_within_matches_lawau_example() {
        // Tuple a1 is valid over [2,8); overlapping windows cover [4,6) and
        // [5,8). The remaining unmatched window must be [2,4).
        let covered = IntervalSet::from_intervals([Interval::new(4, 6), Interval::new(5, 8)]);
        assert_eq!(
            covered.gaps_within(Interval::new(2, 8)),
            vec![Interval::new(2, 4)]
        );
    }

    #[test]
    fn gaps_within_handles_holes_and_suffix() {
        let covered = IntervalSet::from_intervals([Interval::new(3, 4), Interval::new(6, 7)]);
        assert_eq!(
            covered.gaps_within(Interval::new(2, 9)),
            vec![
                Interval::new(2, 3),
                Interval::new(4, 6),
                Interval::new(7, 9)
            ]
        );
    }

    #[test]
    fn gaps_within_empty_set_is_whole_domain() {
        let s = IntervalSet::new();
        assert_eq!(
            s.gaps_within(Interval::new(2, 5)),
            vec![Interval::new(2, 5)]
        );
    }

    #[test]
    fn gaps_within_fully_covered_is_empty() {
        let s = IntervalSet::from_intervals([Interval::new(0, 100)]);
        assert!(s.gaps_within(Interval::new(2, 5)).is_empty());
    }

    #[test]
    fn remove_splits_intervals() {
        let mut s = IntervalSet::from_intervals([Interval::new(1, 10)]);
        s.remove(Interval::new(4, 6));
        assert_eq!(s.intervals(), &[Interval::new(1, 4), Interval::new(6, 10)]);
    }

    #[test]
    fn union_and_intersection() {
        let a = IntervalSet::from_intervals([Interval::new(1, 5), Interval::new(8, 10)]);
        let b = IntervalSet::from_intervals([Interval::new(3, 9)]);
        assert_eq!(a.union(&b).intervals(), &[Interval::new(1, 10)]);
        assert_eq!(
            a.intersection(&b).intervals(),
            &[Interval::new(3, 5), Interval::new(8, 9)]
        );
    }

    #[test]
    fn display_formats_sets() {
        let s = IntervalSet::from_intervals([Interval::new(1, 3), Interval::new(5, 6)]);
        assert_eq!(s.to_string(), "{[1,3), [5,6)}");
    }

    fn arb_intervals() -> impl Strategy<Value = Vec<Interval>> {
        proptest::collection::vec(
            (0i64..60, 1i64..10).prop_map(|(s, d)| Interval::new(s, s + d)),
            0..12,
        )
    }

    proptest! {
        #[test]
        fn prop_set_membership_matches_any_input(ivs in arb_intervals()) {
            let set = IntervalSet::from_intervals(ivs.clone());
            for t in -5i64..80 {
                let expected = ivs.iter().any(|iv| iv.contains_point(t));
                prop_assert_eq!(set.contains_point(t), expected);
            }
        }

        #[test]
        fn prop_set_is_sorted_disjoint_non_adjacent(ivs in arb_intervals()) {
            let set = IntervalSet::from_intervals(ivs);
            let v = set.intervals();
            for w in v.windows(2) {
                prop_assert!(w[0].end() < w[1].start(), "intervals must be disjoint and non-adjacent: {} {}", w[0], w[1]);
            }
        }

        #[test]
        fn prop_gaps_are_complement(ivs in arb_intervals(), ds in 0i64..40, dd in 1i64..40) {
            let domain = Interval::new(ds, ds + dd);
            let set = IntervalSet::from_intervals(ivs);
            let gaps = set.gaps_within(domain);
            for t in domain.points() {
                let in_gap = gaps.iter().any(|g| g.contains_point(t));
                prop_assert_eq!(in_gap, !set.contains_point(t));
            }
            // gaps lie within the domain
            for g in &gaps {
                prop_assert!(domain.contains(g));
            }
        }

        #[test]
        fn prop_remove_then_membership(ivs in arb_intervals(), rs in 0i64..60, rd in 1i64..10) {
            let removed = Interval::new(rs, rs + rd);
            let mut set = IntervalSet::from_intervals(ivs.clone());
            set.remove(removed);
            for t in -5i64..80 {
                let expected = ivs.iter().any(|iv| iv.contains_point(t)) && !removed.contains_point(t);
                prop_assert_eq!(set.contains_point(t), expected);
            }
        }
    }
}
