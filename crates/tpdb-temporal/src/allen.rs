//! Allen's interval relations.

use crate::Interval;
use serde::{Deserialize, Serialize};

/// The thirteen relations of Allen's interval algebra.
///
/// For two non-empty intervals `a` and `b`, exactly one relation holds. The
/// window algorithms only need overlap/containment tests, but the full
/// algebra is exposed because it is generally useful when reasoning about
/// temporal data and it makes tests and examples much easier to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllenRelation {
    /// `a` ends before `b` starts.
    Before,
    /// `a` ends exactly where `b` starts.
    Meets,
    /// `a` starts first and they overlap, `a` ends inside `b`.
    Overlaps,
    /// `a` starts first and they end together.
    FinishedBy,
    /// `a` strictly contains `b`.
    Contains,
    /// they start together and `a` ends first.
    Starts,
    /// the intervals are identical.
    Equals,
    /// they start together and `b` ends first.
    StartedBy,
    /// `b` strictly contains `a`.
    During,
    /// `b` starts first and they end together.
    Finishes,
    /// `b` starts first and they overlap, `b` ends inside `a`.
    OverlappedBy,
    /// `b` ends exactly where `a` starts.
    MetBy,
    /// `b` ends before `a` starts.
    After,
}

impl AllenRelation {
    /// The inverse relation (the relation of `b` to `a`).
    #[must_use]
    pub fn inverse(self) -> Self {
        use AllenRelation::*;
        match self {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            FinishedBy => Finishes,
            Contains => During,
            Starts => StartedBy,
            Equals => Equals,
            StartedBy => Starts,
            During => Contains,
            Finishes => FinishedBy,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        }
    }

    /// Whether the relation implies that the two intervals share at least one
    /// time point.
    #[must_use]
    pub fn implies_overlap(self) -> bool {
        use AllenRelation::*;
        !matches!(self, Before | Meets | MetBy | After)
    }
}

impl Interval {
    /// Computes the Allen relation of `self` with respect to `other`.
    #[must_use]
    pub fn allen_relation(&self, other: &Interval) -> AllenRelation {
        use std::cmp::Ordering::*;
        use AllenRelation::*;
        let (a_s, a_e, b_s, b_e) = (self.start(), self.end(), other.start(), other.end());
        match (a_s.cmp(&b_s), a_e.cmp(&b_e)) {
            (Equal, Equal) => Equals,
            (Equal, Less) => Starts,
            (Equal, Greater) => StartedBy,
            (Less, Equal) => FinishedBy,
            (Greater, Equal) => Finishes,
            (Less, Less) => {
                if a_e < b_s {
                    Before
                } else if a_e == b_s {
                    Meets
                } else {
                    Overlaps
                }
            }
            (Less, Greater) => Contains,
            (Greater, Less) => During,
            (Greater, Greater) => {
                if b_e < a_s {
                    After
                } else if b_e == a_s {
                    MetBy
                } else {
                    OverlappedBy
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(a: (i64, i64), b: (i64, i64)) -> AllenRelation {
        Interval::new(a.0, a.1).allen_relation(&Interval::new(b.0, b.1))
    }

    #[test]
    fn all_thirteen_relations() {
        use AllenRelation::*;
        assert_eq!(rel((1, 2), (3, 4)), Before);
        assert_eq!(rel((1, 3), (3, 4)), Meets);
        assert_eq!(rel((1, 4), (3, 6)), Overlaps);
        assert_eq!(rel((1, 6), (3, 6)), FinishedBy);
        assert_eq!(rel((1, 8), (3, 6)), Contains);
        assert_eq!(rel((3, 5), (3, 6)), Starts);
        assert_eq!(rel((3, 6), (3, 6)), Equals);
        assert_eq!(rel((3, 8), (3, 6)), StartedBy);
        assert_eq!(rel((4, 5), (3, 6)), During);
        assert_eq!(rel((4, 6), (3, 6)), Finishes);
        assert_eq!(rel((4, 8), (3, 6)), OverlappedBy);
        assert_eq!(rel((6, 8), (3, 6)), MetBy);
        assert_eq!(rel((8, 9), (3, 6)), After);
    }

    #[test]
    fn overlap_consistency_with_relation() {
        let a = Interval::new(1, 4);
        let b = Interval::new(3, 6);
        assert!(a.allen_relation(&b).implies_overlap());
        assert!(a.overlaps(&b));
        let c = Interval::new(4, 6);
        assert!(!a.allen_relation(&c).implies_overlap());
        assert!(!a.overlaps(&c));
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-50i64..50, 1i64..20).prop_map(|(s, d)| Interval::new(s, s + d))
    }

    proptest! {
        #[test]
        fn prop_inverse_is_involutive(a in arb_interval(), b in arb_interval()) {
            let r = a.allen_relation(&b);
            prop_assert_eq!(r.inverse(), b.allen_relation(&a));
            prop_assert_eq!(r.inverse().inverse(), r);
        }

        #[test]
        fn prop_relation_overlap_agrees_with_interval_overlap(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.allen_relation(&b).implies_overlap(), a.overlaps(&b));
        }

        #[test]
        fn prop_equals_iff_identical(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.allen_relation(&b) == AllenRelation::Equals, a == b);
        }
    }
}
