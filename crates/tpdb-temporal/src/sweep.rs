//! A generic sweep-line driver.
//!
//! Given a collection of intervals, [`sweep_segments`] partitions the covered
//! part of the timeline into *elementary segments*: maximal intervals over
//! which the set of valid items does not change. This is the primitive behind
//! the negating-window computation (LAWAN): within a group of overlapping
//! windows for the same positive tuple, each elementary segment yields one
//! negating window whose `λs` is the disjunction of the lineages of the items
//! active over that segment.

use crate::event::{events_of, EventKind};
use crate::{Interval, TimePoint};

/// A maximal interval over which the same set of items is valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// The elementary interval.
    pub interval: Interval,
    /// Indices (into the caller's collection) of the items valid throughout
    /// the segment, in ascending order.
    pub active: Vec<usize>,
}

/// The set of currently active items during a sweep, with O(1) membership
/// updates and ordered extraction.
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    members: std::collections::BTreeSet<usize>,
}

impl ActiveSet {
    /// Creates an empty active set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks an item as active.
    pub fn activate(&mut self, item: usize) {
        self.members.insert(item);
    }

    /// Marks an item as no longer active.
    pub fn deactivate(&mut self, item: usize) {
        self.members.remove(&item);
    }

    /// Is any item active?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of active items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Snapshot of the active item indices in ascending order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<usize> {
        self.members.iter().copied().collect()
    }

    /// Does the set contain `item`?
    #[must_use]
    pub fn contains(&self, item: usize) -> bool {
        self.members.contains(&item)
    }
}

/// Partitions the union of `intervals` into elementary segments.
///
/// Segments are emitted in chronological order; time points covered by no
/// interval produce no segment. Two consecutive segments always differ in
/// their active sets (boundaries only occur where some item starts or ends).
#[must_use]
pub fn sweep_segments(intervals: &[Interval]) -> Vec<Segment> {
    let events = events_of(intervals);
    let mut segments = Vec::new();
    let mut active = ActiveSet::new();
    let mut prev: Option<TimePoint> = None;

    let mut idx = 0;
    while idx < events.len() {
        let t = events[idx].time;
        // Close the running segment (if any items were active since `prev`).
        if let Some(p) = prev {
            if p < t && !active.is_empty() {
                segments.push(Segment {
                    interval: Interval::new(p, t),
                    active: active.snapshot(),
                });
            }
        }
        // Apply every event at time t (ends first, then starts — the event
        // order guarantees this).
        while idx < events.len() && events[idx].time == t {
            match events[idx].kind {
                EventKind::End => active.deactivate(events[idx].item),
                EventKind::Start => active.activate(events[idx].item),
            }
            idx += 1;
        }
        prev = Some(t);
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_segments() {
        // Overlapping windows of a1: with b3 over [4,6) and with b2 over [5,8).
        // Elementary segments: [4,5){b3}, [5,6){b3,b2}, [6,8){b2} — exactly the
        // intervals of the negating windows in Fig. 1b / Fig. 2.
        let ivs = vec![Interval::new(4, 6), Interval::new(5, 8)];
        let segs = sweep_segments(&ivs);
        assert_eq!(
            segs,
            vec![
                Segment {
                    interval: Interval::new(4, 5),
                    active: vec![0]
                },
                Segment {
                    interval: Interval::new(5, 6),
                    active: vec![0, 1]
                },
                Segment {
                    interval: Interval::new(6, 8),
                    active: vec![1]
                },
            ]
        );
    }

    #[test]
    fn disjoint_intervals_produce_disjoint_segments() {
        let ivs = vec![Interval::new(1, 3), Interval::new(5, 7)];
        let segs = sweep_segments(&ivs);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].interval, Interval::new(1, 3));
        assert_eq!(segs[0].active, vec![0]);
        assert_eq!(segs[1].interval, Interval::new(5, 7));
        assert_eq!(segs[1].active, vec![1]);
    }

    #[test]
    fn identical_intervals_form_one_segment() {
        let ivs = vec![
            Interval::new(2, 6),
            Interval::new(2, 6),
            Interval::new(2, 6),
        ];
        let segs = sweep_segments(&ivs);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].active, vec![0, 1, 2]);
    }

    #[test]
    fn meeting_intervals_do_not_coexist() {
        let ivs = vec![Interval::new(1, 4), Interval::new(4, 6)];
        let segs = sweep_segments(&ivs);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].active, vec![0]);
        assert_eq!(segs[1].active, vec![1]);
    }

    #[test]
    fn empty_input_yields_no_segments() {
        assert!(sweep_segments(&[]).is_empty());
    }

    #[test]
    fn active_set_operations() {
        let mut s = ActiveSet::new();
        assert!(s.is_empty());
        s.activate(3);
        s.activate(1);
        s.activate(3);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert_eq!(s.snapshot(), vec![1, 3]);
        s.deactivate(3);
        assert!(!s.contains(3));
        assert_eq!(s.snapshot(), vec![1]);
    }

    fn arb_intervals() -> impl Strategy<Value = Vec<Interval>> {
        proptest::collection::vec(
            (0i64..40, 1i64..12).prop_map(|(s, d)| Interval::new(s, s + d)),
            1..10,
        )
    }

    proptest! {
        #[test]
        fn prop_segments_cover_exactly_the_union(ivs in arb_intervals()) {
            let segs = sweep_segments(&ivs);
            for t in -2i64..60 {
                let covered = ivs.iter().any(|iv| iv.contains_point(t));
                let in_seg = segs.iter().any(|s| s.interval.contains_point(t));
                prop_assert_eq!(covered, in_seg);
            }
        }

        #[test]
        fn prop_segment_active_sets_are_correct(ivs in arb_intervals()) {
            let segs = sweep_segments(&ivs);
            for seg in &segs {
                for t in seg.interval.points() {
                    let expected: Vec<usize> = ivs
                        .iter()
                        .enumerate()
                        .filter(|(_, iv)| iv.contains_point(t))
                        .map(|(i, _)| i)
                        .collect();
                    prop_assert_eq!(&expected, &seg.active);
                }
            }
        }

        #[test]
        fn prop_segments_are_ordered_and_disjoint(ivs in arb_intervals()) {
            let segs = sweep_segments(&ivs);
            for w in segs.windows(2) {
                prop_assert!(w[0].interval.end() <= w[1].interval.start());
                // consecutive touching segments must differ in their active set
                if w[0].interval.end() == w[1].interval.start() {
                    prop_assert_ne!(&w[0].active, &w[1].active);
                }
            }
        }
    }
}
