//! Half-open time intervals `[start, end)`.

use crate::point::{TimePoint, MAX_TIME, MIN_TIME};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised when constructing an invalid interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntervalError {
    /// The start point was not strictly smaller than the end point.
    Empty {
        /// Offending start point.
        start: TimePoint,
        /// Offending end point.
        end: TimePoint,
    },
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::Empty { start, end } => {
                write!(f, "empty interval: start {start} must be < end {end}")
            }
        }
    }
}

impl std::error::Error for IntervalError {}

/// A half-open, non-empty time interval `[start, end)`.
///
/// Invariant: `start < end`. An interval is valid at every time point `t`
/// with `start <= t < end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    start: TimePoint,
    end: TimePoint,
}

impl Interval {
    /// Creates a new interval `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start >= end`. Use [`Interval::try_new`] for a fallible
    /// constructor.
    #[must_use]
    pub fn new(start: TimePoint, end: TimePoint) -> Self {
        Self::try_new(start, end).expect("interval start must be < end")
    }

    /// Creates a new interval `[start, end)`, returning an error when it
    /// would be empty.
    pub fn try_new(start: TimePoint, end: TimePoint) -> Result<Self, IntervalError> {
        if start < end {
            Ok(Self { start, end })
        } else {
            Err(IntervalError::Empty { start, end })
        }
    }

    /// The interval spanning the whole representable timeline.
    #[must_use]
    pub fn always() -> Self {
        Self {
            start: MIN_TIME,
            end: MAX_TIME,
        }
    }

    /// Inclusive start point.
    #[must_use]
    pub fn start(&self) -> TimePoint {
        self.start
    }

    /// Exclusive end point.
    #[must_use]
    pub fn end(&self) -> TimePoint {
        self.end
    }

    /// Number of chronons covered by the interval.
    #[must_use]
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }

    /// Does the interval contain time point `t`?
    #[must_use]
    pub fn contains_point(&self, t: TimePoint) -> bool {
        self.start <= t && t < self.end
    }

    /// Does `self` fully contain `other` (not necessarily strictly)?
    #[must_use]
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Do the two intervals share at least one time point?
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Are the two intervals adjacent (they meet without overlapping)?
    #[must_use]
    pub fn adjacent(&self, other: &Interval) -> bool {
        self.end == other.start || other.end == self.start
    }

    /// The intersection of the two intervals, or `None` when they are
    /// disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// The smallest interval containing both inputs (the temporal hull).
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The union of the two intervals when they overlap or are adjacent
    /// (i.e. when the union is itself an interval), otherwise `None`.
    #[must_use]
    pub fn union(&self, other: &Interval) -> Option<Interval> {
        (self.overlaps(other) || self.adjacent(other)).then(|| self.hull(other))
    }

    /// The parts of `self` not covered by `other`: zero, one or two
    /// intervals.
    #[must_use]
    pub fn difference(&self, other: &Interval) -> Vec<Interval> {
        match self.intersect(other) {
            None => vec![*self],
            Some(inter) => {
                let mut out = Vec::with_capacity(2);
                if self.start < inter.start {
                    out.push(Interval {
                        start: self.start,
                        end: inter.start,
                    });
                }
                if inter.end < self.end {
                    out.push(Interval {
                        start: inter.end,
                        end: self.end,
                    });
                }
                out
            }
        }
    }

    /// Splits the interval at `t`, returning the part before and the part
    /// from `t` on. If `t` lies outside the interval, one of the parts is
    /// `None`.
    #[must_use]
    pub fn split_at(&self, t: TimePoint) -> (Option<Interval>, Option<Interval>) {
        if t <= self.start {
            (None, Some(*self))
        } else if t >= self.end {
            (Some(*self), None)
        } else {
            (
                Some(Interval {
                    start: self.start,
                    end: t,
                }),
                Some(Interval {
                    start: t,
                    end: self.end,
                }),
            )
        }
    }

    /// Iterates over every time point covered by the interval. Intended for
    /// tests and semantic (point-wise) checks, not for production paths.
    pub fn points(&self) -> impl Iterator<Item = TimePoint> {
        self.start..self.end
    }

    /// Does `self` start strictly before `other` starts?
    #[must_use]
    pub fn starts_before(&self, other: &Interval) -> bool {
        self.start < other.start
    }

    /// Does `self` end strictly after `other` ends?
    #[must_use]
    pub fn ends_after(&self, other: &Interval) -> bool {
        self.end > other.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(2, 8);
        assert_eq!(i.start(), 2);
        assert_eq!(i.end(), 8);
        assert_eq!(i.duration(), 6);
        assert_eq!(i.to_string(), "[2,8)");
    }

    #[test]
    fn empty_interval_is_rejected() {
        assert!(Interval::try_new(5, 5).is_err());
        assert!(Interval::try_new(6, 5).is_err());
        let err = Interval::try_new(6, 5).unwrap_err();
        assert!(err.to_string().contains("empty interval"));
    }

    #[test]
    #[should_panic(expected = "interval start must be < end")]
    fn new_panics_on_empty() {
        let _ = Interval::new(3, 3);
    }

    #[test]
    fn point_containment_is_half_open() {
        let i = Interval::new(2, 8);
        assert!(i.contains_point(2));
        assert!(i.contains_point(7));
        assert!(!i.contains_point(8));
        assert!(!i.contains_point(1));
    }

    #[test]
    fn overlap_and_adjacency() {
        let a = Interval::new(2, 8);
        let b = Interval::new(5, 10);
        let c = Interval::new(8, 12);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.adjacent(&c));
        assert!(!a.adjacent(&b));
    }

    #[test]
    fn intersection_matches_paper_example() {
        // a1 [2,8) with b3 [4,6)  ->  [4,6)   (Fig. 1 of the paper)
        let a1 = Interval::new(2, 8);
        let b3 = Interval::new(4, 6);
        assert_eq!(a1.intersect(&b3), Some(Interval::new(4, 6)));
        // a1 [2,8) with b2 [5,8)  ->  [5,8)
        let b2 = Interval::new(5, 8);
        assert_eq!(a1.intersect(&b2), Some(Interval::new(5, 8)));
        // disjoint
        let b1 = Interval::new(1, 4);
        let a2 = Interval::new(7, 10);
        assert_eq!(a2.intersect(&b1), None);
    }

    #[test]
    fn union_and_hull() {
        let a = Interval::new(2, 5);
        let b = Interval::new(4, 8);
        let c = Interval::new(9, 12);
        assert_eq!(a.union(&b), Some(Interval::new(2, 8)));
        assert_eq!(a.union(&c), None);
        assert_eq!(a.hull(&c), Interval::new(2, 12));
        // adjacency unions
        let d = Interval::new(5, 9);
        assert_eq!(a.union(&d), Some(Interval::new(2, 9)));
    }

    #[test]
    fn difference_cases() {
        let a = Interval::new(2, 10);
        // hole in the middle -> two pieces
        assert_eq!(
            a.difference(&Interval::new(4, 6)),
            vec![Interval::new(2, 4), Interval::new(6, 10)]
        );
        // prefix removed
        assert_eq!(
            a.difference(&Interval::new(0, 4)),
            vec![Interval::new(4, 10)]
        );
        // suffix removed
        assert_eq!(
            a.difference(&Interval::new(8, 12)),
            vec![Interval::new(2, 8)]
        );
        // fully covered
        assert_eq!(a.difference(&Interval::new(0, 12)), vec![]);
        // disjoint
        assert_eq!(a.difference(&Interval::new(20, 22)), vec![a]);
    }

    #[test]
    fn split_at_cases() {
        let a = Interval::new(2, 10);
        assert_eq!(
            a.split_at(5),
            (Some(Interval::new(2, 5)), Some(Interval::new(5, 10)))
        );
        assert_eq!(a.split_at(2), (None, Some(a)));
        assert_eq!(a.split_at(1), (None, Some(a)));
        assert_eq!(a.split_at(10), (Some(a), None));
        assert_eq!(a.split_at(15), (Some(a), None));
    }

    #[test]
    fn contains_interval() {
        let a = Interval::new(2, 10);
        assert!(a.contains(&Interval::new(2, 10)));
        assert!(a.contains(&Interval::new(3, 9)));
        assert!(!a.contains(&Interval::new(1, 9)));
        assert!(!a.contains(&Interval::new(3, 11)));
    }

    #[test]
    fn always_spans_everything() {
        let a = Interval::always();
        assert!(a.contains(&Interval::new(-1_000_000, 1_000_000)));
    }

    #[test]
    fn points_iterator_enumerates_chronons() {
        let pts: Vec<_> = Interval::new(3, 7).points().collect();
        assert_eq!(pts, vec![3, 4, 5, 6]);
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-1000i64..1000, 1i64..100).prop_map(|(s, d)| Interval::new(s, s + d))
    }

    proptest! {
        #[test]
        fn prop_intersection_is_commutative(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        }

        #[test]
        fn prop_intersection_contained_in_both(a in arb_interval(), b in arb_interval()) {
            if let Some(i) = a.intersect(&b) {
                prop_assert!(a.contains(&i));
                prop_assert!(b.contains(&i));
            }
        }

        #[test]
        fn prop_overlap_iff_nonempty_intersection(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(a.overlaps(&b), a.intersect(&b).is_some());
        }

        #[test]
        fn prop_difference_plus_intersection_covers_self(a in arb_interval(), b in arb_interval()) {
            // Every point of `a` is either in a.difference(b) or in a∩b, never both.
            let diff = a.difference(&b);
            let inter = a.intersect(&b);
            for t in a.points() {
                let in_diff = diff.iter().any(|d| d.contains_point(t));
                let in_inter = inter.map(|i| i.contains_point(t)).unwrap_or(false);
                prop_assert!(in_diff ^ in_inter);
            }
        }

        #[test]
        fn prop_split_reassembles(a in arb_interval(), t in -1200i64..1200) {
            let (l, r) = a.split_at(t);
            let total: i64 = l.map(|i| i.duration()).unwrap_or(0) + r.map(|i| i.duration()).unwrap_or(0);
            prop_assert_eq!(total, a.duration());
            if let (Some(l), Some(r)) = (l, r) {
                prop_assert_eq!(l.end(), r.start());
                prop_assert_eq!(l.start(), a.start());
                prop_assert_eq!(r.end(), a.end());
            }
        }

        #[test]
        fn prop_hull_contains_both(a in arb_interval(), b in arb_interval()) {
            let h = a.hull(&b);
            prop_assert!(h.contains(&a));
            prop_assert!(h.contains(&b));
        }
    }
}
