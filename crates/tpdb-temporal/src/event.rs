//! Boundary events used by sweep-line algorithms.

use crate::{Interval, TimePoint};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// The kind of boundary an event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A tuple/window starts being valid at the event's time point.
    Start,
    /// A tuple/window stops being valid at the event's time point
    /// (exclusive end of its interval).
    End,
}

/// A time-point boundary of some interval, tagged with the index of the item
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// Time point at which the boundary occurs.
    pub time: TimePoint,
    /// Whether the item starts or ends here.
    pub kind: EventKind,
    /// Index of the originating item in the caller's collection.
    pub item: usize,
}

/// A single boundary (start or end point) without item attribution; used by
/// the LAWAN sweep to reason about "the next point at which the set of valid
/// negative tuples changes".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Boundary(pub TimePoint);

/// Generates the start/end events of a sequence of intervals, sorted by time
/// with `End` events ordered before `Start` events at equal time points.
///
/// Ordering ends before starts at the same point matters: with half-open
/// intervals an item ending at `t` and another starting at `t` do not
/// co-exist at `t`.
#[must_use]
pub fn events_of<'a, I>(intervals: I) -> Vec<Event>
where
    I: IntoIterator<Item = &'a Interval>,
{
    let mut events = Vec::new();
    for (item, iv) in intervals.into_iter().enumerate() {
        events.push(Event {
            time: iv.start(),
            kind: EventKind::Start,
            item,
        });
        events.push(Event {
            time: iv.end(),
            kind: EventKind::End,
            item,
        });
    }
    sort_events(&mut events);
    events
}

/// Sorts events by `(time, End-before-Start, item)`.
pub fn sort_events(events: &mut [Event]) {
    events.sort_by_key(|e| (e.time, matches!(e.kind, EventKind::Start), e.item));
}

/// A min-heap of upcoming ending points.
///
/// LAWAN keeps "the ending points ... of the tuples of relation s in the
/// overlapping windows ... in a priority queue" (Section III-C); this is that
/// queue. It stores `(end_point, item_index)` pairs and pops the smallest end
/// point first.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<(TimePoint, usize)>>,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes an ending point for `item`.
    pub fn push(&mut self, end: TimePoint, item: usize) {
        self.heap.push(std::cmp::Reverse((end, item)));
    }

    /// The smallest ending point currently queued.
    #[must_use]
    pub fn peek(&self) -> Option<(TimePoint, usize)> {
        self.heap.peek().map(|r| r.0)
    }

    /// Removes and returns the smallest ending point.
    pub fn pop(&mut self) -> Option<(TimePoint, usize)> {
        self.heap.pop().map(|r| r.0)
    }

    /// Removes every queued ending point that is `<= t` and returns the item
    /// indices whose intervals have expired.
    pub fn pop_expired(&mut self, t: TimePoint) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some((end, item)) = self.peek() {
            if end <= t {
                self.pop();
                out.push(item);
            } else {
                break;
            }
        }
        out
    }

    /// Number of queued ending points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all queued entries.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sorted_ends_before_starts() {
        let ivs = vec![Interval::new(1, 4), Interval::new(4, 6)];
        let ev = events_of(&ivs);
        assert_eq!(ev.len(), 4);
        // at t=4 the End of item 0 must come before the Start of item 1
        assert_eq!(
            ev[1],
            Event {
                time: 4,
                kind: EventKind::End,
                item: 0
            }
        );
        assert_eq!(
            ev[2],
            Event {
                time: 4,
                kind: EventKind::Start,
                item: 1
            }
        );
    }

    #[test]
    fn event_queue_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(8, 0);
        q.push(6, 1);
        q.push(10, 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek(), Some((6, 1)));
        assert_eq!(q.pop(), Some((6, 1)));
        assert_eq!(q.pop(), Some((8, 0)));
        assert_eq!(q.pop(), Some((10, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_expired_removes_all_past_entries() {
        let mut q = EventQueue::new();
        q.push(3, 0);
        q.push(5, 1);
        q.push(5, 2);
        q.push(9, 3);
        let expired = q.pop_expired(5);
        assert_eq!(expired, vec![0, 1, 2]);
        assert_eq!(q.len(), 1);
        assert!(q.pop_expired(4).is_empty());
        assert_eq!(q.pop_expired(100), vec![3]);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = EventQueue::new();
        q.push(1, 0);
        q.clear();
        assert!(q.is_empty());
    }
}
