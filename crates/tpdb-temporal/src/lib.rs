//! # tpdb-temporal
//!
//! Interval algebra, timelines and sweep-line primitives for temporal databases.
//!
//! This crate provides the temporal substrate of the TPDB system: half-open
//! validity intervals `[start, end)` over a discrete integer timeline, the
//! classic Allen relations between intervals, coalescing interval sets, and a
//! generic sweep-line driver that the lineage-aware window algorithms
//! (LAWAU / LAWAN) and the Temporal Alignment baseline are built on.
//!
//! The time domain is a discrete, totally ordered set of [`TimePoint`]s
//! (chronons). All intervals are half-open: a tuple with interval `[2, 8)` is
//! valid at time points 2, 3, ..., 7 but not at 8. This matches the convention
//! of the paper *"Outer and Anti Joins in Temporal-Probabilistic Databases"*
//! (Papaioannou, Theobald, Böhlen — ICDE 2019).
//!
//! ## Quick example
//!
//! ```
//! use tpdb_temporal::{Interval, AllenRelation};
//!
//! let a = Interval::new(2, 8);
//! let b = Interval::new(4, 6);
//! assert!(a.overlaps(&b));
//! assert_eq!(a.intersect(&b), Some(Interval::new(4, 6)));
//! assert_eq!(a.allen_relation(&b), AllenRelation::Contains);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allen;
mod event;
mod interval;
mod point;
mod set;
mod sorted;
mod sweep;

pub use allen::AllenRelation;
pub use event::{events_of, sort_events, Boundary, Event, EventKind, EventQueue};
pub use interval::{Interval, IntervalError};
pub use point::{TimePoint, MAX_TIME, MIN_TIME};
pub use set::IntervalSet;
pub use sorted::{SortedIntervalIndex, SortedIntervalIndexBuilder};
pub use sweep::{sweep_segments, ActiveSet, Segment};
