//! Endpoint-sorted interval partitions for sweep-based overlap joins.
//!
//! [`SortedIntervalIndex`] is the build-side structure of the sweep overlap
//! join: the intervals of one join-key partition sorted by starting point,
//! together with the largest interval duration of the partition. An overlap
//! probe then needs a single binary search plus a bounded forward scan:
//!
//! * every interval with `start <= query.start - max_duration` has
//!   `end <= query.start` and can be skipped wholesale (the binary search),
//! * every interval with `start >= query.end` lies entirely after the query
//!   (the scan stops there),
//! * the survivors are checked with one comparison (`end > query.start`).
//!
//! Crucially, candidates come out in ascending `start` order, so the
//! intersections with the probe interval are produced with non-decreasing
//! starting points — the order the lineage-aware window algorithms (LAWAU /
//! LAWAN) expect — without any re-sorting of the join output.

use crate::{Interval, TimePoint};

/// The intervals of one build-side partition, sorted by
/// `(start, end, payload)`, with the partition's maximum duration.
///
/// `payload` is an opaque index into the caller's collection (e.g. the tuple
/// index of the negative relation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedIntervalIndex {
    items: Vec<(Interval, usize)>,
    /// Widened to `i128`: an interval spanning (almost) the whole `i64`
    /// domain has a duration that overflows `i64`, and a wrapped or clamped
    /// value would make [`Self::overlapping`] skip genuine matches.
    max_duration: i128,
}

impl SortedIntervalIndex {
    /// Builds the index from an unsorted `(interval, payload)` list.
    #[must_use]
    pub fn new(mut items: Vec<(Interval, usize)>) -> Self {
        items.sort_unstable_by_key(|(iv, payload)| (iv.start(), iv.end(), *payload));
        let max_duration = items
            .iter()
            .map(|(iv, _)| i128::from(iv.end()) - i128::from(iv.start()))
            .max()
            .unwrap_or(0);
        Self {
            items,
            max_duration,
        }
    }

    /// Starts an incremental build of an index. This is the shard-aware
    /// construction path of the partitioned overlap join: every worker owns
    /// the builders of the join-key partitions assigned to its shard and
    /// streams its build-side tuples into them, so the (sorting) build work
    /// is distributed across workers instead of happening once up front.
    ///
    /// ```
    /// use tpdb_temporal::{Interval, SortedIntervalIndex};
    ///
    /// let mut builder = SortedIntervalIndex::builder();
    /// builder.push(Interval::new(5, 8), 0);
    /// builder.push(Interval::new(1, 4), 1);
    /// let index = builder.finish();
    /// assert_eq!(index.items()[0], (Interval::new(1, 4), 1));
    /// assert_eq!(index.max_duration(), 3);
    /// ```
    #[must_use]
    pub fn builder() -> SortedIntervalIndexBuilder {
        SortedIntervalIndexBuilder { items: Vec::new() }
    }

    /// Number of indexed intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the index empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The indexed `(interval, payload)` pairs in `(start, end, payload)`
    /// order.
    #[must_use]
    pub fn items(&self) -> &[(Interval, usize)] {
        &self.items
    }

    /// The largest duration of any indexed interval (0 when empty). `i128`
    /// because an interval may span (almost) the whole `i64` time domain.
    #[must_use]
    pub fn max_duration(&self) -> i128 {
        self.max_duration
    }

    /// All `(interval, payload)` pairs overlapping `query`, in ascending
    /// `(start, end, payload)` order.
    pub fn overlapping(&self, query: Interval) -> impl Iterator<Item = (Interval, usize)> + '_ {
        let qs: TimePoint = query.start();
        let qe: TimePoint = query.end();
        // Intervals starting at or before this cutoff ended at or before
        // `query.start` (their duration is bounded by `max_duration`), so the
        // scan may begin past them. Computed in i128 — see `max_duration`.
        let cutoff = i128::from(qs) - self.max_duration;
        let lo = self
            .items
            .partition_point(|(iv, _)| i128::from(iv.start()) <= cutoff);
        self.items[lo..]
            .iter()
            .take_while(move |(iv, _)| iv.start() < qe)
            .filter(move |(iv, _)| iv.end() > qs)
            .copied()
    }
}

/// Incremental construction of a [`SortedIntervalIndex`] (see
/// [`SortedIntervalIndex::builder`]). Intervals are pushed in any order; the
/// sort and the maximum-duration computation happen once in
/// [`finish`](Self::finish).
#[derive(Debug, Clone, Default)]
pub struct SortedIntervalIndexBuilder {
    items: Vec<(Interval, usize)>,
}

impl SortedIntervalIndexBuilder {
    /// Adds one `(interval, payload)` pair to the index under construction.
    pub fn push(&mut self, interval: Interval, payload: usize) {
        self.items.push((interval, payload));
    }

    /// Number of pairs pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Has nothing been pushed yet?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorts the accumulated pairs and produces the finished index.
    #[must_use]
    pub fn finish(self) -> SortedIntervalIndex {
        SortedIntervalIndex::new(self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn idx(ivs: &[(i64, i64)]) -> SortedIntervalIndex {
        SortedIntervalIndex::new(
            ivs.iter()
                .enumerate()
                .map(|(i, (s, e))| (Interval::new(*s, *e), i))
                .collect(),
        )
    }

    #[test]
    fn builder_matches_batch_construction() {
        let ivs = [(5i64, 8i64), (1, 4), (3, 9), (7, 12)];
        let batch = idx(&ivs);
        let mut builder = SortedIntervalIndex::builder();
        assert!(builder.is_empty());
        for (i, (s, e)) in ivs.iter().enumerate() {
            builder.push(Interval::new(*s, *e), i);
        }
        assert_eq!(builder.len(), 4);
        assert_eq!(builder.finish(), batch);
        assert!(SortedIntervalIndex::builder().finish().is_empty());
    }

    #[test]
    fn empty_index_yields_nothing() {
        let index = SortedIntervalIndex::new(Vec::new());
        assert!(index.is_empty());
        assert_eq!(index.max_duration(), 0);
        assert_eq!(index.overlapping(Interval::new(0, 10)).count(), 0);
    }

    #[test]
    fn candidates_come_out_in_start_order() {
        let index = idx(&[(5, 8), (1, 4), (3, 9), (7, 12)]);
        let hits: Vec<i64> = index
            .overlapping(Interval::new(0, 100))
            .map(|(iv, _)| iv.start())
            .collect();
        assert_eq!(hits, vec![1, 3, 5, 7]);
    }

    #[test]
    fn long_interval_before_the_probe_is_found() {
        // The binary search must not skip an early-starting interval whose
        // end reaches into the probe.
        let index = idx(&[(0, 100), (40, 42), (90, 95)]);
        let hits: Vec<usize> = index
            .overlapping(Interval::new(50, 60))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn meeting_intervals_do_not_overlap() {
        // Half-open semantics: [1,5) and [5,9) share no time point.
        let index = idx(&[(1, 5), (5, 9)]);
        let hits: Vec<usize> = index
            .overlapping(Interval::new(5, 9))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn single_point_intervals() {
        let index = idx(&[(3, 4), (4, 5), (5, 6)]);
        let hits: Vec<usize> = index
            .overlapping(Interval::new(4, 5))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn extreme_endpoint_interval_does_not_overflow() {
        // An interval spanning (almost) the whole i64 domain must clamp its
        // duration instead of wrapping negative and skipping matches.
        let index = idx(&[(i64::MIN + 1, i64::MAX - 1), (10, 20)]);
        assert!(index.max_duration() > 0);
        let hits: Vec<usize> = index
            .overlapping(Interval::new(12, 15))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(hits, vec![0, 1]);
    }

    fn arb_intervals() -> impl Strategy<Value = Vec<(i64, i64)>> {
        proptest::collection::vec((-20i64..40, 1i64..15).prop_map(|(s, d)| (s, s + d)), 0..24)
    }

    proptest! {
        #[test]
        fn prop_overlap_query_matches_naive_scan(
            ivs in arb_intervals(),
            qs in -25i64..45,
            qd in 1i64..12,
        ) {
            let query = Interval::new(qs, qs + qd);
            let index = idx(&ivs);
            let mut expected: Vec<usize> = ivs
                .iter()
                .enumerate()
                .filter(|(_, (s, e))| Interval::new(*s, *e).overlaps(&query))
                .map(|(i, _)| i)
                .collect();
            let mut actual: Vec<usize> = index.overlapping(query).map(|(_, p)| p).collect();
            expected.sort_unstable();
            actual.sort_unstable();
            prop_assert_eq!(actual, expected);
        }

        #[test]
        fn prop_candidates_are_start_ordered(ivs in arb_intervals(), qs in -25i64..45) {
            let query = Interval::new(qs, qs + 8);
            let index = idx(&ivs);
            let starts: Vec<i64> = index.overlapping(query).map(|(iv, _)| iv.start()).collect();
            for pair in starts.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
        }
    }
}
