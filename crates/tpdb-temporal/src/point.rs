//! The discrete time domain.

/// A discrete time point (chronon).
///
/// The TP data model uses a discrete, totally ordered, finite time domain.
/// We represent it as a signed 64-bit integer, which is wide enough for
/// second-granularity timestamps for hundreds of billions of years and keeps
/// the arithmetic in the sweep algorithms trivially cheap.
pub type TimePoint = i64;

/// Smallest representable time point. Used as "beginning of time" when a
/// relation-wide timeline needs a lower bound.
pub const MIN_TIME: TimePoint = TimePoint::MIN / 4;

/// Largest representable time point. Used as "end of time" / "until changed"
/// when a relation-wide timeline needs an upper bound.
pub const MAX_TIME: TimePoint = TimePoint::MAX / 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_do_not_overflow_on_width_arithmetic() {
        // The sweep algorithms compute `end - start`; the sentinels must be
        // safe to subtract without overflow.
        let width = MAX_TIME - MIN_TIME;
        assert!(width > 0);
        const { assert!(MIN_TIME < 0 && MAX_TIME > 0) };
    }
}
