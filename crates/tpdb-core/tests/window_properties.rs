//! Property-based tests of the window algebra invariants from Definition 1
//! and Table I of the paper, on randomized duplicate-free inputs.

use proptest::prelude::*;
use tpdb_core::{lawan, lawau, overlapping_windows, ThetaCondition, Window, WindowKind};
use tpdb_lineage::{Lineage, VarId};
use tpdb_storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb_temporal::Interval;

/// Builds a duplicate-free single-key relation from raw rows, skipping rows
/// that would overlap an existing same-key interval.
fn build(name: &str, var_offset: u32, rows: &[(i64, i64, i64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
    let mut var = var_offset;
    for (key, start, duration) in rows {
        let interval = Interval::new(*start, *start + *duration);
        if rel
            .iter()
            .any(|t| t.fact(0) == &Value::Int(*key) && t.interval().overlaps(&interval))
        {
            continue;
        }
        rel.push(TpTuple::new(
            vec![Value::Int(*key)],
            Lineage::var(VarId(var)),
            interval,
            0.5,
        ))
        .unwrap();
        var += 1;
    }
    rel
}

fn rows() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..5, 0i64..40, 1i64..10), 1..15)
}

fn all_windows(r: &TpRelation, s: &TpRelation) -> Vec<Window> {
    let theta = ThetaCondition::column_equals("k", "k");
    lawan(&lawau(&overlapping_windows(r, s, &theta).unwrap(), r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Unmatched and negating windows of one r tuple partition its interval:
    /// every time point of the tuple is covered by exactly one of them.
    #[test]
    fn unmatched_and_negating_partition_each_positive_tuple(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let windows = all_windows(&r, &s);
        for (ri, rt) in r.iter().enumerate() {
            for t in rt.interval().points() {
                let covering = windows
                    .iter()
                    .filter(|w| w.r_idx == ri && w.kind != WindowKind::Overlapping && w.interval.contains_point(t))
                    .count();
                prop_assert_eq!(covering, 1, "time point {} of r tuple {} covered {} times", t, ri, covering);
            }
        }
    }

    /// A time point lies in a negating window of an r tuple iff some
    /// θ-matching s tuple is valid there; it lies in an unmatched window iff
    /// none is (Table I).
    #[test]
    fn window_kinds_reflect_matching_validity(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let windows = all_windows(&r, &s);
        for (ri, rt) in r.iter().enumerate() {
            for t in rt.interval().points() {
                let any_match = s
                    .iter()
                    .any(|st| st.valid_at(t) && st.fact(0) == rt.fact(0));
                let in_negating = windows.iter().any(|w| {
                    w.r_idx == ri && w.kind == WindowKind::Negating && w.interval.contains_point(t)
                });
                let in_unmatched = windows.iter().any(|w| {
                    w.r_idx == ri && w.kind == WindowKind::Unmatched && w.interval.contains_point(t)
                });
                prop_assert_eq!(any_match, in_negating);
                prop_assert_eq!(!any_match, in_unmatched);
            }
        }
    }

    /// λs of a negating window is exactly the disjunction of the lineages of
    /// the θ-matching s tuples valid over the window (checked at every
    /// point: the set of variables never changes within the window, which is
    /// the maximality condition of Definition 1).
    #[test]
    fn negating_lambda_s_is_the_disjunction_of_valid_matches(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let windows = all_windows(&r, &s);
        for w in windows.iter().filter(|w| w.kind == WindowKind::Negating) {
            let rt = r.tuple(w.r_idx);
            let expected_vars: std::collections::BTreeSet<_> = s
                .iter()
                .filter(|st| st.fact(0) == rt.fact(0) && st.interval().contains(&w.interval))
                .flat_map(|st| st.lineage().vars())
                .collect();
            prop_assert_eq!(w.lambda_s.as_ref().unwrap().vars(), expected_vars);
            for t in w.interval.points() {
                let vars_at_t: std::collections::BTreeSet<_> = s
                    .iter()
                    .filter(|st| st.fact(0) == rt.fact(0) && st.valid_at(t))
                    .flat_map(|st| st.lineage().vars())
                    .collect();
                prop_assert_eq!(&vars_at_t, &w.lambda_s.as_ref().unwrap().vars());
            }
        }
    }

    /// Overlapping windows are exactly the pairwise intersections of
    /// θ-matching tuples.
    #[test]
    fn overlapping_windows_enumerate_matching_pairs(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let windows = all_windows(&r, &s);
        let mut expected = 0usize;
        for rt in r.iter() {
            for st in s.iter() {
                if rt.fact(0) == st.fact(0) && rt.interval().overlaps(&st.interval()) {
                    expected += 1;
                }
            }
        }
        let actual = windows.iter().filter(|w| w.kind == WindowKind::Overlapping).count();
        prop_assert_eq!(actual, expected);
    }

    /// Windows never extend past the validity interval of their positive
    /// tuple, and negating/unmatched windows of the same tuple never overlap
    /// each other (maximality ⇒ disjointness).
    #[test]
    fn windows_are_bounded_and_disjoint_per_tuple(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let windows = all_windows(&r, &s);
        for w in &windows {
            prop_assert!(r.tuple(w.r_idx).interval().contains(&w.interval));
        }
        for kind in [WindowKind::Unmatched, WindowKind::Negating] {
            for (ri, _) in r.iter().enumerate() {
                let of_kind: Vec<&Window> = windows
                    .iter()
                    .filter(|w| w.r_idx == ri && w.kind == kind)
                    .collect();
                for (i, w1) in of_kind.iter().enumerate() {
                    for w2 in of_kind.iter().skip(i + 1) {
                        prop_assert!(!w1.interval.overlaps(&w2.interval));
                    }
                }
            }
        }
    }
}
