//! Property tests of the interned lineage layer: the hash-consed arena must
//! be an *invisible* representation change. Interned probabilities agree
//! with exact enumeration over the legacy trees, and the interned streaming
//! join/set-op pipelines produce byte-identical relations to the legacy
//! tree-based window path — for every join kind, serial and partitioned.

use proptest::prelude::*;
use tpdb_core::{
    assemble_join_result, lawan, lawau, overlapping_windows, tp_join, tp_join_parallel, tp_union,
    tp_union_materialized, ThetaCondition, TpJoinKind, Window,
};
use tpdb_lineage::{Lineage, LineageInterner, ProbabilityEngine, VarId};
use tpdb_storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb_temporal::Interval;

const ALL_KINDS: [TpJoinKind; 5] = [
    TpJoinKind::Inner,
    TpJoinKind::LeftOuter,
    TpJoinKind::RightOuter,
    TpJoinKind::FullOuter,
    TpJoinKind::Anti,
];

/// A deterministic, var-dependent marginal probability in (0, 1).
fn prob_of(var: u32) -> f64 {
    0.15 + 0.07 * f64::from(var % 11)
}

/// Builds a duplicate-free single-key relation from raw rows, skipping rows
/// that would overlap an existing same-key interval (same construction as
/// `window_properties.rs`, but with distinct per-tuple probabilities so
/// probability mistakes cannot hide behind symmetry).
fn build(name: &str, var_offset: u32, rows: &[(i64, i64, i64)]) -> TpRelation {
    let mut rel = TpRelation::new(name, Schema::tp(&[("k", DataType::Int)]));
    let mut var = var_offset;
    for (key, start, duration) in rows {
        let interval = Interval::new(*start, *start + *duration);
        if rel
            .iter()
            .any(|t| t.fact(0) == &Value::Int(*key) && t.interval().overlaps(&interval))
        {
            continue;
        }
        rel.push(TpTuple::new(
            vec![Value::Int(*key)],
            Lineage::var(VarId(var)),
            interval,
            prob_of(var),
        ))
        .unwrap();
        var += 1;
    }
    rel
}

fn rows() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..5, 0i64..40, 1i64..10), 1..15)
}

/// The legacy reference join: materialized tree-lineage windows fed through
/// [`assemble_join_result`] / `form_output_tuple` — the pre-interning code
/// path (still exercised by the TA baseline), with the same per-kind window
/// participation as the streaming pipeline.
fn legacy_join(r: &TpRelation, s: &TpRelation, kind: TpJoinKind) -> TpRelation {
    let theta = ThetaCondition::column_equals("k", "k");
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);
    let wo = overlapping_windows(r, s, &theta).unwrap();
    let left: Vec<Window> = match kind {
        TpJoinKind::Inner | TpJoinKind::RightOuter => wo,
        TpJoinKind::Anti | TpJoinKind::LeftOuter | TpJoinKind::FullOuter => lawan(&lawau(&wo, r)),
    };
    let right: Vec<Window> = match kind {
        TpJoinKind::RightOuter | TpJoinKind::FullOuter => {
            let wo = overlapping_windows(s, r, &theta.flipped()).unwrap();
            lawan(&lawau(&wo, s))
        }
        _ => Vec::new(),
    };
    assemble_join_result(r, s, kind, &left, &right, &mut engine)
}

/// A random lineage formula over the variables `0..8` (small enough that
/// exact enumeration over all 2^8 assignments stays cheap).
fn formula() -> impl Strategy<Value = Lineage> {
    // Constants are rare leaves: a 0..10 draw picks a variable 8 times in 10.
    let leaf = (0u32..10).prop_map(|v| match v {
        8 => Lineage::tru(),
        9 => Lineage::fls(),
        v => Lineage::var(VarId(v)),
    });
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Lineage::not),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Lineage::and),
            proptest::collection::vec(inner, 1..4).prop_map(Lineage::or),
        ]
    })
}

fn engine_over_formula_vars() -> ProbabilityEngine {
    let mut engine = ProbabilityEngine::new();
    engine.set_all((0..8).map(|v| (VarId(v), prob_of(v))));
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The id-keyed memo path computes the same probability as exact
    /// enumeration over the legacy tree (the representation-independent
    /// ground truth).
    #[test]
    fn interned_probability_matches_enumeration(f in formula()) {
        let mut engine = engine_over_formula_vars();
        let exact = engine.probability_by_enumeration(&f).unwrap();
        let interned = engine.probability(&f);
        prop_assert!(
            (interned - exact).abs() < 1e-9,
            "interned {} vs enumerated {} for {:?}",
            interned,
            exact,
            f
        );
        // Asking through the ref-keyed API is the same computation.
        let r = engine.intern(&f);
        prop_assert_eq!(interned.to_bits(), engine.probability_ref(r).to_bits());
        // The engine's arena and memo invariants survive the computation.
        prop_assert_eq!(engine.verify_arena(), Ok(()));
    }

    /// Hash-consing: interning a structurally equal tree twice yields the
    /// same id and allocates nothing new, and the tree ↔ ref round trip is
    /// stable.
    #[test]
    fn interning_is_idempotent_and_round_trips(f in formula()) {
        let mut interner = LineageInterner::new();
        let a = interner.intern(&f);
        let len = interner.len();
        prop_assert_eq!(a, interner.intern(&f.clone()));
        prop_assert_eq!(interner.len(), len);
        let round_tripped = interner.to_lineage(a);
        prop_assert_eq!(a, interner.intern(&round_tripped));
        prop_assert_eq!(interner.len(), len);
        // No dangling refs, canonical normal forms, consistent cons table.
        prop_assert_eq!(interner.verify_arena(), Ok(()));
    }

    /// The arena invariants hold through Shannon conditioning — the one
    /// operation that rewrites formulas instead of only composing them
    /// (every cofactor is re-normalized through the interned constructors).
    #[test]
    fn arena_invariants_hold_under_conditioning(f in formula()) {
        let mut engine = engine_over_formula_vars();
        let root = engine.intern(&f);
        let _ = engine.probability_ref(root);
        let interner = engine.interner_mut();
        for v in 0..8 {
            let t = interner.condition(root, VarId(v), true);
            let e = interner.condition(root, VarId(v), false);
            // Cofactors are valid refs into the same arena.
            prop_assert!(t.index() < interner.len());
            prop_assert!(e.index() < interner.len());
        }
        prop_assert_eq!(engine.verify_arena(), Ok(()));
    }

    /// The interned streaming join equals the legacy materialized tree path
    /// byte for byte — facts, intervals, lineage trees and probabilities —
    /// for all five join kinds.
    #[test]
    fn interned_join_matches_legacy_tree_join(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let theta = ThetaCondition::column_equals("k", "k");
        for kind in ALL_KINDS {
            let interned = tp_join(&r, &s, &theta, kind).unwrap();
            let legacy = legacy_join(&r, &s, kind);
            prop_assert_eq!(&interned, &legacy, "kind {:?}", kind);
        }
    }

    /// Partitioned parallel execution (interned per-worker pipelines) is
    /// indistinguishable from the serial join at 2 and 4 workers.
    #[test]
    fn parallel_interned_join_matches_serial(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let theta = ThetaCondition::column_equals("k", "k");
        for kind in ALL_KINDS {
            let serial = tp_join(&r, &s, &theta, kind).unwrap();
            for workers in [2, 4] {
                let parallel = tp_join_parallel(&r, &s, &theta, kind, workers).unwrap();
                prop_assert_eq!(&parallel, &serial, "kind {:?}, {} workers", kind, workers);
            }
        }
    }

    /// The interned streaming TP union equals the legacy materializing union
    /// (which still builds `Lineage::or2` trees directly) tuple for tuple.
    #[test]
    fn interned_union_matches_materializing_union(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let streamed = tp_union(&r, &s).unwrap();
        let materialized = tp_union_materialized(&r, &s).unwrap();
        prop_assert_eq!(streamed.tuples(), materialized.tuples());
    }

    /// Every output tuple of every interned join carries the probability of
    /// its own lineage tree, verified by exact enumeration.
    #[test]
    fn output_probabilities_match_enumeration(rr in rows(), ss in rows()) {
        let r = build("r", 0, &rr);
        let s = build("s", 1000, &ss);
        let theta = ThetaCondition::column_equals("k", "k");
        let mut engine = ProbabilityEngine::new();
        r.register_probabilities(&mut engine);
        s.register_probabilities(&mut engine);
        for kind in ALL_KINDS {
            let out = tp_join(&r, &s, &theta, kind).unwrap();
            for t in out.iter() {
                let exact = engine.probability_by_enumeration(t.lineage()).unwrap();
                prop_assert!(
                    (t.probability() - exact).abs() < 1e-9,
                    "kind {:?}: tuple probability {} vs enumerated {}",
                    kind,
                    t.probability(),
                    exact
                );
            }
        }
    }
}
