//! Shared test fixtures for the core crate (test builds only).

use tpdb_lineage::{Lineage, SymbolTable};
use tpdb_storage::{DataType, Schema, TpRelation, TpTuple, Value};
use tpdb_temporal::Interval;

/// Builds the running example of the paper (Fig. 1): the booking-website
/// relations `a` (wantsToVisit) and `b` (hotelAvailability), with the base
/// lineage symbols `a1, a2, b1, b2, b3`.
pub(crate) fn booking_relations() -> (TpRelation, TpRelation, SymbolTable) {
    let mut syms = SymbolTable::new();
    let a1 = syms.intern("a1");
    let a2 = syms.intern("a2");
    let b1 = syms.intern("b1");
    let b2 = syms.intern("b2");
    let b3 = syms.intern("b3");

    let mut a = TpRelation::new(
        "a",
        Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]),
    );
    a.push(TpTuple::new(
        vec![Value::str("Ann"), Value::str("ZAK")],
        Lineage::var(a1),
        Interval::new(2, 8),
        0.7,
    ))
    .unwrap();
    a.push(TpTuple::new(
        vec![Value::str("Jim"), Value::str("WEN")],
        Lineage::var(a2),
        Interval::new(7, 10),
        0.8,
    ))
    .unwrap();

    let mut b = TpRelation::new(
        "b",
        Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]),
    );
    b.push(TpTuple::new(
        vec![Value::str("hotel3"), Value::str("SOR")],
        Lineage::var(b1),
        Interval::new(1, 4),
        0.9,
    ))
    .unwrap();
    b.push(TpTuple::new(
        vec![Value::str("hotel2"), Value::str("ZAK")],
        Lineage::var(b2),
        Interval::new(5, 8),
        0.6,
    ))
    .unwrap();
    b.push(TpTuple::new(
        vec![Value::str("hotel1"), Value::str("ZAK")],
        Lineage::var(b3),
        Interval::new(4, 6),
        0.7,
    ))
    .unwrap();
    (a, b, syms)
}
