//! The overlap join `r ⟕_{θo ∧ θ} s` (Section III-A).
//!
//! The first phase of the NJ approach is a conventional left outer join with
//! the overlap predicate `θo : r.T ∩ s.T ≠ ∅` conjoined with the θ condition
//! on the non-temporal attributes. It produces
//!
//! * one **overlapping window** per qualifying pair, spanning `r.T ∩ s.T`,
//!   and
//! * one **unmatched window** spanning the full interval of every `r` tuple
//!   that overlaps with no θ-matching `s` tuple at all (the "outer" part of
//!   the join).
//!
//! The remaining unmatched windows — sub-intervals of partially covered `r`
//! tuples — are added afterwards by [`lawau`](crate::lawau::lawau).

use crate::theta::{BoundTheta, ThetaCondition};
use crate::window::Window;
use std::collections::HashMap;
use tpdb_storage::{StorageError, TpRelation, Value};

/// Which physical plan the overlap join uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapJoinPlan {
    /// Hash-partition `s` on the equi-join key, probe with `r`.
    /// Only applicable when θ is a pure conjunction of equalities.
    Hash,
    /// Compare every pair of tuples. Always applicable.
    NestedLoop,
}

/// Computes the overlapping windows of `r` with respect to `s` under θ,
/// together with the whole-interval unmatched windows of `r` tuples that
/// match nothing. The plan is chosen automatically (hash when θ is an
/// equi-join, nested loop otherwise).
pub fn overlapping_windows(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<Vec<Window>, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    let plan = if bound.is_equi_join() {
        OverlapJoinPlan::Hash
    } else {
        OverlapJoinPlan::NestedLoop
    };
    Ok(overlapping_windows_with_plan(r, s, &bound, plan))
}

/// Computes the overlapping + whole-interval unmatched windows with an
/// explicitly chosen plan (exposed for the planner and the ablation
/// benchmarks).
#[must_use]
pub fn overlapping_windows_with_plan(
    r: &TpRelation,
    s: &TpRelation,
    bound: &BoundTheta,
    plan: OverlapJoinPlan,
) -> Vec<Window> {
    let mut windows = match plan {
        OverlapJoinPlan::Hash if bound.is_equi_join() => hash_overlap(r, s, bound),
        _ => nested_loop_overlap(r, s, bound),
    };
    // Group per originating r tuple, ordered by window start — the order
    // LAWAU and LAWAN expect.
    windows.sort_by_key(|w| (w.r_idx, w.interval.start(), w.interval.end()));
    windows
}

fn nested_loop_overlap(r: &TpRelation, s: &TpRelation, bound: &BoundTheta) -> Vec<Window> {
    let mut out = Vec::new();
    for (ri, rt) in r.iter().enumerate() {
        let mut matched = false;
        for (si, st) in s.iter().enumerate() {
            if !bound.matches(rt, st) {
                continue;
            }
            if let Some(inter) = rt.interval().intersect(&st.interval()) {
                matched = true;
                out.push(Window::overlapping(
                    inter,
                    ri,
                    si,
                    rt.lineage().clone(),
                    st.lineage().clone(),
                ));
            }
        }
        if !matched {
            out.push(Window::unmatched(rt.interval(), ri, rt.lineage().clone()));
        }
    }
    out
}

fn hash_overlap(r: &TpRelation, s: &TpRelation, bound: &BoundTheta) -> Vec<Window> {
    // Build side: partition s by its equi-join key.
    let mut partitions: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (si, st) in s.iter().enumerate() {
        partitions.entry(bound.right_key(st)).or_default().push(si);
    }
    let mut out = Vec::new();
    for (ri, rt) in r.iter().enumerate() {
        let mut matched = false;
        if let Some(candidates) = partitions.get(&bound.left_key(rt)) {
            for &si in candidates {
                let st = s.tuple(si);
                // The hash key only covers the equality part of θ; re-check
                // the full condition for mixed conditions.
                if !bound.matches(rt, st) {
                    continue;
                }
                if let Some(inter) = rt.interval().intersect(&st.interval()) {
                    matched = true;
                    out.push(Window::overlapping(
                        inter,
                        ri,
                        si,
                        rt.lineage().clone(),
                        st.lineage().clone(),
                    ));
                }
            }
        }
        if !matched {
            out.push(Window::unmatched(rt.interval(), ri, rt.lineage().clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::booking_relations;
    use tpdb_storage::{DataType, Schema};
    use tpdb_temporal::Interval;

    #[test]
    fn paper_example_overlapping_and_whole_unmatched_windows() {
        let (a, b, syms) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let windows = overlapping_windows(&a, &b, &theta).unwrap();

        // Expected (Fig. 2): overlapping windows w3 = (a1, b3, [4,6)) and
        // w4 = (a1, b2, [5,8)); unmatched window w2 = (a2, null, [7,10)).
        // (The remaining unmatched window [2,4) of a1 is produced by LAWAU.)
        assert_eq!(windows.len(), 3);
        let overlapping: Vec<&Window> = windows.iter().filter(|w| w.is_overlapping()).collect();
        assert_eq!(overlapping.len(), 2);
        assert_eq!(overlapping[0].interval, Interval::new(4, 6));
        assert_eq!(
            overlapping[0]
                .lambda_s
                .as_ref()
                .unwrap()
                .display_with(&syms),
            "b3"
        );
        assert_eq!(overlapping[1].interval, Interval::new(5, 8));
        assert_eq!(
            overlapping[1]
                .lambda_s
                .as_ref()
                .unwrap()
                .display_with(&syms),
            "b2"
        );

        let unmatched: Vec<&Window> = windows.iter().filter(|w| w.is_unmatched()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0].r_idx, 1); // Jim
        assert_eq!(unmatched[0].interval, Interval::new(7, 10));
    }

    #[test]
    fn hash_and_nested_loop_plans_agree() {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let bound = theta.bind(a.schema(), b.schema()).unwrap();
        let hash = overlapping_windows_with_plan(&a, &b, &bound, OverlapJoinPlan::Hash);
        let nl = overlapping_windows_with_plan(&a, &b, &bound, OverlapJoinPlan::NestedLoop);
        assert_eq!(hash, nl);
    }

    #[test]
    fn non_selective_theta_produces_cross_product_windows() {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::always();
        let windows = overlapping_windows(&a, &b, &theta).unwrap();
        // every temporally overlapping pair qualifies:
        // a1[2,8) x b1[1,4), b2[5,8), b3[4,6)  -> 3 overlapping
        // a2[7,10) x b2[5,8)                   -> 1 overlapping
        assert_eq!(windows.iter().filter(|w| w.is_overlapping()).count(), 4);
        assert_eq!(windows.iter().filter(|w| w.is_unmatched()).count(), 0);
    }

    #[test]
    fn temporally_disjoint_tuples_do_not_match() {
        let (a, b, _) = booking_relations();
        // Jim [7,10) and hotel3 [1,4) share no time point even under θ=true;
        // restrict to those two via a condition that only they satisfy.
        let theta = ThetaCondition::column_equals("Name", "Hotel");
        let windows = overlapping_windows(&a, &b, &theta).unwrap();
        assert!(windows.iter().all(|w| w.is_unmatched()));
        assert_eq!(windows.len(), 2);
    }

    #[test]
    fn empty_negative_relation_yields_only_unmatched() {
        let (a, _, _) = booking_relations();
        let empty = TpRelation::new(
            "b",
            Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]),
        );
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let windows = overlapping_windows(&a, &empty, &theta).unwrap();
        assert_eq!(windows.len(), 2);
        assert!(windows.iter().all(|w| w.is_unmatched()));
    }

    #[test]
    fn empty_positive_relation_yields_nothing() {
        let (_, b, _) = booking_relations();
        let empty = TpRelation::new(
            "a",
            Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]),
        );
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let windows = overlapping_windows(&empty, &b, &theta).unwrap();
        assert!(windows.is_empty());
    }

    #[test]
    fn windows_are_grouped_by_r_tuple_and_sorted_by_start() {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let windows = overlapping_windows(&a, &b, &theta).unwrap();
        let keys: Vec<(usize, i64)> = windows
            .iter()
            .map(|w| (w.r_idx, w.interval.start()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
