//! The overlap join `r ⟕_{θo ∧ θ} s` (Section III-A).
//!
//! The first phase of the NJ approach is a conventional left outer join with
//! the overlap predicate `θo : r.T ∩ s.T ≠ ∅` conjoined with the θ condition
//! on the non-temporal attributes. It produces
//!
//! * one **overlapping window** per qualifying pair, spanning `r.T ∩ s.T`,
//!   and
//! * one **unmatched window** spanning the full interval of every `r` tuple
//!   that overlaps with no θ-matching `s` tuple at all (the "outer" part of
//!   the join).
//!
//! The remaining unmatched windows — sub-intervals of partially covered `r`
//! tuples — are added afterwards by [`lawau`](crate::lawau::lawau).
//!
//! ## Physical plans and output order
//!
//! All three plans probe the `r` tuples in index order and emit each probe's
//! windows sorted by `(start, end)`, so the join output is always **grouped
//! by `r_idx` and ordered by window start within each group** — the order
//! LAWAU and LAWAN consume — without any global re-sort of the joined
//! windows:
//!
//! * [`OverlapJoinPlan::Sweep`] (the default for equi-joins) partitions `s`
//!   on the equi-join key and sorts each partition by interval start once
//!   ([`SortedIntervalIndex`]); a probe binary-searches the first possibly
//!   overlapping candidate and scans forward until the candidates start past
//!   the probe interval, yielding intersections with non-decreasing starts.
//! * [`OverlapJoinPlan::Hash`] partitions `s` on the equi-join key and scans
//!   the whole partition per probe (the plan the TA baseline's DBMS picks).
//! * [`OverlapJoinPlan::NestedLoop`] compares every pair; the only plan
//!   applicable to non-equi θ conditions.
//!
//! [`OverlapWindowStream`] exposes the same join as an iterator producing
//! one `r`-tuple group at a time, which is what lets the full window
//! pipeline (overlap join → LAWAU → LAWAN → output formation) run without
//! materializing any intermediate window vector.

use crate::theta::{BoundTheta, ThetaCondition};
use crate::window::Window;
use std::borrow::Borrow;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use tpdb_lineage::{Lineage, LineageInterner, LineageRef};
use tpdb_storage::{StorageError, TpRelation, TpTuple, Value};
use tpdb_temporal::{SortedIntervalIndex, SortedIntervalIndexBuilder};

/// The lineage column of a relation as one pre-cloned vector (cheap `Arc`
/// bumps), indexed by tuple position. This is the legacy tree path's single
/// sanctioned cloning point: every window downstream shares these columns.
pub(crate) fn lineage_column(rel: &TpRelation) -> Arc<Vec<Lineage>> {
    // tpdb-lint: allow(no-lineage-clone-in-streams)
    Arc::new(rel.iter().map(|t| t.lineage().clone()).collect())
}

/// The lineage column of a relation interned into `interner`, indexed by
/// tuple position. Every window the stream emits then carries `Copy` ids
/// instead of cloned trees.
pub(crate) fn interned_lineages(
    rel: &TpRelation,
    interner: &mut LineageInterner,
) -> Arc<Vec<LineageRef>> {
    Arc::new(rel.iter().map(|t| interner.intern(t.lineage())).collect())
}

/// Which physical plan the overlap join uses.
///
/// The keyed plans (sweep, hash) require a pure equi-join θ and are
/// shardable — they are what the morsel-driven parallel driver
/// ([`crate::tp_join_parallel`]) distributes across stealing workers.
/// Forcing a keyed plan on a non-equi θ is a loud error, never a silent
/// downgrade:
///
/// ```
/// use tpdb_core::{overlapping_windows_with_plan, OverlapJoinPlan, ThetaCondition};
///
/// let (a, b) = tpdb_datagen::booking_example();
/// let equi = ThetaCondition::column_equals("Loc", "Loc")
///     .bind(a.schema(), b.schema())
///     .unwrap();
/// let non_equi = ThetaCondition::always().bind(a.schema(), b.schema()).unwrap();
///
/// assert!(OverlapJoinPlan::Sweep.is_shardable());
/// assert!(!OverlapJoinPlan::NestedLoop.is_shardable());
///
/// // the sweep runs on the equi-join ...
/// assert!(overlapping_windows_with_plan(&a, &b, &equi, OverlapJoinPlan::Sweep).is_ok());
/// // ... and refuses the non-equi θ instead of silently degrading
/// assert!(overlapping_windows_with_plan(&a, &b, &non_equi, OverlapJoinPlan::Sweep).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlapJoinPlan {
    /// Hash-partition `s` on the equi-join key, scan the whole partition per
    /// probe. Only applicable when θ is a pure conjunction of equalities.
    Hash,
    /// Compare every pair of tuples. Always applicable.
    NestedLoop,
    /// Hash-partition `s` on the equi-join key and sort each partition by
    /// interval start; probe with a binary search plus bounded forward scan.
    /// Only applicable when θ is a pure conjunction of equalities. This is
    /// the default plan for equi-joins.
    Sweep,
}

impl OverlapJoinPlan {
    /// Short lower-case plan name (used in `EXPLAIN` output and benchmark
    /// series labels).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            OverlapJoinPlan::Hash => "hash",
            OverlapJoinPlan::NestedLoop => "nested-loop",
            OverlapJoinPlan::Sweep => "sweep",
        }
    }

    /// Does the plan require θ to be a pure equi-join?
    #[must_use]
    pub fn requires_equi_join(&self) -> bool {
        !matches!(self, OverlapJoinPlan::NestedLoop)
    }

    /// Can the plan execute as independent probe morsels? The
    /// key-partitioned plans (hash, sweep) can: each probe tuple's window
    /// group depends only on its own key partition of the shared build
    /// index, so any chunk of probe indices is a valid unit of parallel
    /// work. The nested loop compares every pair and cannot shard — the
    /// parallel driver falls back to serial execution for it (and `EXPLAIN`
    /// says so).
    #[must_use]
    pub fn is_shardable(&self) -> bool {
        self.requires_equi_join()
    }

    /// The error returned when this plan is forced on a θ it cannot execute.
    fn not_applicable(self) -> StorageError {
        StorageError::PlanNotApplicable {
            plan: self.label().to_owned(),
            reason: "the overlap-join plan requires a pure equi-join θ condition; \
                     use the nested-loop plan for general θ"
                .to_owned(),
        }
    }
}

impl fmt::Display for OverlapJoinPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The plan [`overlapping_windows`] picks automatically: sweep when θ is a
/// pure equi-join, nested loop otherwise.
#[must_use]
pub fn auto_plan(bound: &BoundTheta) -> OverlapJoinPlan {
    if bound.is_equi_join() {
        OverlapJoinPlan::Sweep
    } else {
        OverlapJoinPlan::NestedLoop
    }
}

/// Computes the overlapping windows of `r` with respect to `s` under θ,
/// together with the whole-interval unmatched windows of `r` tuples that
/// match nothing. The plan is chosen automatically ([`auto_plan`]).
pub fn overlapping_windows(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<Vec<Window>, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    overlapping_windows_with_plan(r, s, &bound, auto_plan(&bound))
}

/// Computes the overlapping + whole-interval unmatched windows with an
/// explicitly chosen plan (exposed for the planner and the ablation
/// benchmarks).
///
/// # Errors
///
/// Returns [`StorageError::PlanNotApplicable`] when a hash or sweep plan is
/// forced but θ is not a pure equi-join. A forced plan never silently
/// downgrades to a nested loop — callers that report which plan ran can
/// trust that it actually did.
pub fn overlapping_windows_with_plan(
    r: &TpRelation,
    s: &TpRelation,
    bound: &BoundTheta,
    plan: OverlapJoinPlan,
) -> Result<Vec<Window>, StorageError> {
    let index = ProbeIndex::build(s, bound, plan)?;
    let s_lins = lineage_column(s);
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    for (ri, rt) in r.iter().enumerate() {
        index.probe_into(ri, rt, s, bound, rt.lineage(), &s_lins, &mut scratch);
        out.append(&mut scratch);
    }
    Ok(out)
}

/// The build-side structure of the overlap join, probed once per `r` tuple.
///
/// The index is immutable after construction, so the morsel-driven parallel
/// driver builds it **once** over the full build side and shares it
/// read-only (`Arc`) across all stealing workers — no per-shard rebuild.
pub(crate) enum ProbeIndex {
    /// Per-key partitions sorted by interval start.
    Sweep(HashMap<Vec<Value>, SortedIntervalIndex>),
    /// Per-key partitions in `s` index order.
    Hash(HashMap<Vec<Value>, Vec<usize>>),
    /// No index: every probe scans all of `s`.
    NestedLoop,
}

impl ProbeIndex {
    pub(crate) fn build(
        s: &TpRelation,
        bound: &BoundTheta,
        plan: OverlapJoinPlan,
    ) -> Result<Self, StorageError> {
        if plan.requires_equi_join() && !bound.is_equi_join() {
            return Err(plan.not_applicable());
        }
        Ok(match plan {
            OverlapJoinPlan::Sweep => {
                let mut builders: HashMap<Vec<Value>, SortedIntervalIndexBuilder> = HashMap::new();
                for (si, st) in s.iter().enumerate() {
                    builders
                        .entry(bound.right_key(st))
                        .or_default()
                        .push(st.interval(), si);
                }
                ProbeIndex::Sweep(builders.into_iter().map(|(k, b)| (k, b.finish())).collect())
            }
            OverlapJoinPlan::Hash => {
                let mut partitions: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (si, st) in s.iter().enumerate() {
                    partitions.entry(bound.right_key(st)).or_default().push(si);
                }
                ProbeIndex::Hash(partitions)
            }
            OverlapJoinPlan::NestedLoop => ProbeIndex::NestedLoop,
        })
    }

    /// Appends the windows of the probe tuple `r[ri]` to `out`, sorted by
    /// `(start, end)`: its overlapping windows, or one whole-interval
    /// unmatched window when nothing matches. Generic over the lineage
    /// representation: `r_lambda` is the probe tuple's lineage and `s_lins`
    /// the build side's lineage column (indexed by global `s` position).
    // The generic lineage plumbing (the probe tuple's λ plus the build
    // side's lineage column) pushes this private helper past clippy's
    // argument budget; bundling the two into a struct would only rename
    // the call sites.
    #[allow(clippy::too_many_arguments)]
    fn probe_into<L: Clone>(
        &self,
        ri: usize,
        rt: &TpTuple,
        s: &TpRelation,
        bound: &BoundTheta,
        r_lambda: &L,
        s_lins: &[L],
        out: &mut Vec<Window<L>>,
    ) {
        debug_assert!(out.is_empty(), "probe scratch must be drained");
        let r_iv = rt.interval();
        match self {
            ProbeIndex::Sweep(partitions) => {
                if let Some(partition) = partitions.get(&bound.left_key(rt)) {
                    for (s_iv, si) in partition.overlapping(r_iv) {
                        let st = s.tuple(si);
                        // The sorted partition covers the equality part of θ
                        // and the temporal overlap; re-check the bound
                        // condition for its NULL semantics (NULL keys hash
                        // together but never satisfy θ).
                        if !bound.matches(rt, st) {
                            continue;
                        }
                        let inter = r_iv
                            .intersect(&s_iv)
                            // Index invariant. tpdb-lint: allow(no-panic-in-lib)
                            .expect("sorted-partition candidates overlap the probe");
                        out.push(Window::overlapping(
                            inter,
                            ri,
                            si,
                            // Generic window formation: `u32` copies on the
                            // interned path, column clones on the legacy one.
                            // tpdb-lint: allow(no-lineage-clone-in-streams)
                            r_lambda.clone(),
                            s_lins[si].clone(), // tpdb-lint: allow(no-lineage-clone-in-streams)
                        ));
                    }
                }
            }
            ProbeIndex::Hash(partitions) => {
                if let Some(candidates) = partitions.get(&bound.left_key(rt)) {
                    for &si in candidates {
                        let st = s.tuple(si);
                        if !bound.matches(rt, st) {
                            continue;
                        }
                        if let Some(inter) = r_iv.intersect(&st.interval()) {
                            out.push(Window::overlapping(
                                inter,
                                ri,
                                si,
                                // Generic window formation (see the sweep arm).
                                // tpdb-lint: allow(no-lineage-clone-in-streams)
                                r_lambda.clone(),
                                s_lins[si].clone(), // tpdb-lint: allow(no-lineage-clone-in-streams)
                            ));
                        }
                    }
                }
            }
            ProbeIndex::NestedLoop => {
                for (si, st) in s.iter().enumerate() {
                    if !bound.matches(rt, st) {
                        continue;
                    }
                    if let Some(inter) = r_iv.intersect(&st.interval()) {
                        out.push(Window::overlapping(
                            inter,
                            ri,
                            si,
                            // Generic window formation (see the sweep arm).
                            // tpdb-lint: allow(no-lineage-clone-in-streams)
                            r_lambda.clone(),
                            s_lins[si].clone(), // tpdb-lint: allow(no-lineage-clone-in-streams)
                        ));
                    }
                }
            }
        }
        if out.is_empty() {
            // tpdb-lint: allow(no-lineage-clone-in-streams)
            out.push(Window::unmatched(r_iv, ri, r_lambda.clone()));
        } else {
            // The sweep plan already yields non-decreasing intersection
            // starts, so this is a near-no-op run detection; the hash and
            // nested-loop plans emit in s-index order and genuinely sort
            // here. Either way the sort is per probe group — the global
            // re-sort of the whole join output is gone.
            out.sort_by_key(|w| (w.interval.start(), w.interval.end()));
        }
    }
}

/// The overlap join as a streaming iterator: windows come out grouped by
/// `r_idx` (in `r` index order) and sorted by `(start, end)` within each
/// group, one probe at a time. Feeding this into
/// [`LawauStream`](crate::pipeline::LawauStream) and
/// [`LawanStream`](crate::pipeline::LawanStream) pipelines the entire window
/// computation without materializing any window vector.
///
/// The two relations are held through any [`Borrow`]`<TpRelation>`: plain
/// references inside a join operator, `Arc<TpRelation>` in long-lived
/// cursors ([`crate::TpJoinStream`]) that must own their inputs. The probe
/// list `P` is likewise generic (`AsRef<[usize]>`), so the morsel-driven
/// parallel driver hands each stolen morsel's probe indices to a short-lived
/// stream without copying the whole probe order.
///
/// Like [`Window`], the stream is generic over the lineage representation
/// `L`: the default emits [`Lineage`] trees, while the executing join and
/// set-operation pipelines construct it through the crate-internal
/// `interned` constructor to emit `Copy`
/// [`LineageRef`] ids. Both input lineage columns are materialized once at
/// construction (`Arc`-shared with the downstream LAWAU adaptor), so no
/// per-window tree clone happens on either path.
pub struct OverlapWindowStream<
    R: Borrow<TpRelation>,
    S: Borrow<TpRelation>,
    P = Vec<usize>,
    L = Lineage,
> where
    P: AsRef<[usize]>,
    L: Clone,
{
    r: R,
    s: S,
    bound: BoundTheta,
    /// The build-side index, `Arc`-shared so the morsel workers of the
    /// parallel driver probe one index instead of rebuilding it per shard.
    index: Arc<ProbeIndex>,
    /// The positive side's lineage column, indexed by global `r` position.
    r_lins: Arc<Vec<L>>,
    /// The build side's lineage column, indexed by global `s` position.
    s_lins: Arc<Vec<L>>,
    /// Probe cursor: the next position in `probes` (morsel execution) or
    /// the next `r` index (whole-relation execution).
    pos: usize,
    /// The `r` indices this stream probes (`None` = all of `r`). Morsel
    /// workers of the parallel driver receive one stolen morsel's probe
    /// indices here; emitted windows carry the *global* `r_idx`, so the
    /// downstream adaptors and the merge step never need to translate
    /// indices.
    probes: Option<P>,
    ready: VecDeque<Window<L>>,
    scratch: Vec<Window<L>>,
}

impl<R: Borrow<TpRelation>, S: Borrow<TpRelation>> OverlapWindowStream<R, S> {
    /// Creates the stream with the automatically chosen plan
    /// ([`auto_plan`]).
    pub fn new(r: R, s: S, theta: &ThetaCondition) -> Result<Self, StorageError> {
        let bound = theta.bind(r.borrow().schema(), s.borrow().schema())?;
        let plan = auto_plan(&bound);
        Self::with_plan(r, s, bound, plan)
    }

    /// Creates the stream with an explicitly chosen plan.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::PlanNotApplicable`] when a hash or sweep plan
    /// is forced but θ is not a pure equi-join.
    pub fn with_plan(
        r: R,
        s: S,
        bound: BoundTheta,
        plan: OverlapJoinPlan,
    ) -> Result<Self, StorageError> {
        let index = Arc::new(ProbeIndex::build(s.borrow(), &bound, plan)?);
        let r_lins = lineage_column(r.borrow());
        let s_lins = lineage_column(s.borrow());
        Ok(Self {
            r,
            s,
            bound,
            index,
            r_lins,
            s_lins,
            pos: 0,
            probes: None,
            ready: VecDeque::new(),
            scratch: Vec::new(),
        })
    }
}

impl<R: Borrow<TpRelation>, S: Borrow<TpRelation>>
    OverlapWindowStream<R, S, Vec<usize>, LineageRef>
{
    /// Creates the interned stream: both lineage columns are interned into
    /// `interner` up front and every emitted window carries `Copy`
    /// [`LineageRef`] ids. This is the construction path of the executing
    /// join/set-operation pipelines.
    pub(crate) fn interned(
        r: R,
        s: S,
        bound: BoundTheta,
        plan: OverlapJoinPlan,
        interner: &mut LineageInterner,
    ) -> Result<Self, StorageError> {
        let index = Arc::new(ProbeIndex::build(s.borrow(), &bound, plan)?);
        let r_lins = interned_lineages(r.borrow(), interner);
        let s_lins = interned_lineages(s.borrow(), interner);
        Ok(Self {
            r,
            s,
            bound,
            index,
            r_lins,
            s_lins,
            pos: 0,
            probes: None,
            ready: VecDeque::new(),
            scratch: Vec::new(),
        })
    }
}

impl<R, S, P, L> OverlapWindowStream<R, S, P, L>
where
    R: Borrow<TpRelation>,
    S: Borrow<TpRelation>,
    P: AsRef<[usize]>,
    L: Clone,
{
    /// Creates a morsel-local stream over a **prebuilt shared** build-side
    /// index and pre-materialized lineage columns: only the `r` indices in
    /// `probes` are probed. This is the morsel workers' constructor — the
    /// expensive parts (index build, column materialization/interning) are
    /// paid once per pass or per worker and `Arc`-shared, so creating a
    /// stream per stolen morsel costs a few pointer bumps.
    pub(crate) fn over_index(
        r: R,
        s: S,
        bound: BoundTheta,
        index: Arc<ProbeIndex>,
        probes: P,
        r_lins: Arc<Vec<L>>,
        s_lins: Arc<Vec<L>>,
    ) -> Self {
        Self {
            r,
            s,
            bound,
            index,
            r_lins,
            s_lins,
            pos: 0,
            probes: Some(probes),
            ready: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// The positive side's lineage column (`Arc`-shared with the LAWAU
    /// adaptor so the sweep reuses the exact values this stream emits).
    pub(crate) fn positive_lineages(&self) -> Arc<Vec<L>> {
        Arc::clone(&self.r_lins)
    }

    /// The next `r` index to probe, advancing the cursor.
    fn next_probe(&mut self) -> Option<usize> {
        let ri = match &self.probes {
            Some(list) => *list.as_ref().get(self.pos)?,
            None if self.pos < self.r.borrow().len() => self.pos,
            None => return None,
        };
        self.pos += 1;
        Some(ri)
    }
}

impl<R, S, P, L> Iterator for OverlapWindowStream<R, S, P, L>
where
    R: Borrow<TpRelation>,
    S: Borrow<TpRelation>,
    P: AsRef<[usize]>,
    L: Clone,
{
    type Item = Window<L>;

    fn next(&mut self) -> Option<Window<L>> {
        while self.ready.is_empty() {
            let Some(ri) = self.next_probe() else { break };
            let r = self.r.borrow();
            self.index.probe_into(
                ri,
                r.tuple(ri),
                self.s.borrow(),
                &self.bound,
                &self.r_lins[ri],
                &self.s_lins,
                &mut self.scratch,
            );
            self.ready.extend(self.scratch.drain(..));
        }
        self.ready.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::booking_relations;
    use crate::theta::CompareOp;
    use tpdb_storage::{DataType, Schema};
    use tpdb_temporal::Interval;

    #[test]
    fn paper_example_overlapping_and_whole_unmatched_windows() {
        let (a, b, syms) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let windows = overlapping_windows(&a, &b, &theta).unwrap();

        // Expected (Fig. 2): overlapping windows w3 = (a1, b3, [4,6)) and
        // w4 = (a1, b2, [5,8)); unmatched window w2 = (a2, null, [7,10)).
        // (The remaining unmatched window [2,4) of a1 is produced by LAWAU.)
        assert_eq!(windows.len(), 3);
        let overlapping: Vec<&Window> = windows.iter().filter(|w| w.is_overlapping()).collect();
        assert_eq!(overlapping.len(), 2);
        assert_eq!(overlapping[0].interval, Interval::new(4, 6));
        assert_eq!(
            overlapping[0]
                .lambda_s
                .as_ref()
                .unwrap()
                .display_with(&syms),
            "b3"
        );
        assert_eq!(overlapping[1].interval, Interval::new(5, 8));
        assert_eq!(
            overlapping[1]
                .lambda_s
                .as_ref()
                .unwrap()
                .display_with(&syms),
            "b2"
        );

        let unmatched: Vec<&Window> = windows.iter().filter(|w| w.is_unmatched()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0].r_idx, 1); // Jim
        assert_eq!(unmatched[0].interval, Interval::new(7, 10));
    }

    /// Canonical window order for plan-agreement comparisons (plans may
    /// legitimately order windows with identical intervals differently).
    fn canon(mut ws: Vec<Window>) -> Vec<Window> {
        ws.sort_by_key(|w| (w.r_idx, w.interval.start(), w.interval.end(), w.s_idx));
        ws
    }

    #[test]
    fn all_plans_agree() {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let bound = theta.bind(a.schema(), b.schema()).unwrap();
        let hash = overlapping_windows_with_plan(&a, &b, &bound, OverlapJoinPlan::Hash).unwrap();
        let nl =
            overlapping_windows_with_plan(&a, &b, &bound, OverlapJoinPlan::NestedLoop).unwrap();
        let sweep = overlapping_windows_with_plan(&a, &b, &bound, OverlapJoinPlan::Sweep).unwrap();
        assert_eq!(hash, nl);
        assert_eq!(canon(sweep), canon(hash));
    }

    #[test]
    fn forced_hash_or_sweep_on_non_equi_theta_is_an_error() {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::always().and_compare("Loc", CompareOp::Lt, "Loc");
        let bound = theta.bind(a.schema(), b.schema()).unwrap();
        for plan in [OverlapJoinPlan::Hash, OverlapJoinPlan::Sweep] {
            let err = overlapping_windows_with_plan(&a, &b, &bound, plan).unwrap_err();
            match err {
                StorageError::PlanNotApplicable { plan: p, .. } => assert_eq!(p, plan.label()),
                other => panic!("expected PlanNotApplicable, got {other:?}"),
            }
        }
        // the nested loop still runs
        assert!(overlapping_windows_with_plan(&a, &b, &bound, OverlapJoinPlan::NestedLoop).is_ok());
    }

    #[test]
    fn streaming_overlap_join_matches_materializing() {
        let (a, b, _) = booking_relations();
        for theta in [
            ThetaCondition::column_equals("Loc", "Loc"),
            ThetaCondition::always(),
        ] {
            let materialized = overlapping_windows(&a, &b, &theta).unwrap();
            let streamed: Vec<Window> = OverlapWindowStream::new(&a, &b, &theta).unwrap().collect();
            assert_eq!(streamed, materialized, "θ = {theta}");
        }
    }

    #[test]
    fn non_selective_theta_produces_cross_product_windows() {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::always();
        let windows = overlapping_windows(&a, &b, &theta).unwrap();
        // every temporally overlapping pair qualifies:
        // a1[2,8) x b1[1,4), b2[5,8), b3[4,6)  -> 3 overlapping
        // a2[7,10) x b2[5,8)                   -> 1 overlapping
        assert_eq!(windows.iter().filter(|w| w.is_overlapping()).count(), 4);
        assert_eq!(windows.iter().filter(|w| w.is_unmatched()).count(), 0);
    }

    #[test]
    fn temporally_disjoint_tuples_do_not_match() {
        let (a, b, _) = booking_relations();
        // Jim [7,10) and hotel3 [1,4) share no time point even under θ=true;
        // restrict to those two via a condition that only they satisfy.
        let theta = ThetaCondition::column_equals("Name", "Hotel");
        let windows = overlapping_windows(&a, &b, &theta).unwrap();
        assert!(windows.iter().all(|w| w.is_unmatched()));
        assert_eq!(windows.len(), 2);
    }

    #[test]
    fn empty_negative_relation_yields_only_unmatched() {
        let (a, _, _) = booking_relations();
        let empty = TpRelation::new(
            "b",
            Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]),
        );
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let windows = overlapping_windows(&a, &empty, &theta).unwrap();
        assert_eq!(windows.len(), 2);
        assert!(windows.iter().all(|w| w.is_unmatched()));
    }

    #[test]
    fn empty_positive_relation_yields_nothing() {
        let (_, b, _) = booking_relations();
        let empty = TpRelation::new(
            "a",
            Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]),
        );
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let windows = overlapping_windows(&empty, &b, &theta).unwrap();
        assert!(windows.is_empty());
        assert_eq!(
            OverlapWindowStream::new(&empty, &b, &theta)
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    fn windows_are_grouped_by_r_tuple_and_sorted_by_start() {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let windows = overlapping_windows(&a, &b, &theta).unwrap();
        let keys: Vec<(usize, i64)> = windows
            .iter()
            .map(|w| (w.r_idx, w.interval.start()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn plan_labels_and_applicability() {
        assert_eq!(OverlapJoinPlan::Sweep.to_string(), "sweep");
        assert_eq!(OverlapJoinPlan::Hash.to_string(), "hash");
        assert_eq!(OverlapJoinPlan::NestedLoop.to_string(), "nested-loop");
        assert!(OverlapJoinPlan::Sweep.requires_equi_join());
        assert!(OverlapJoinPlan::Hash.requires_equi_join());
        assert!(!OverlapJoinPlan::NestedLoop.requires_equi_join());
    }
}
