//! Join conditions θ on the non-temporal attributes of two TP relations.

use serde::{Deserialize, Serialize};
use std::fmt;
use tpdb_storage::{Schema, StorageError, TpTuple, Value};

/// A comparison operator between two fact attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    fn eval(self, l: &Value, r: &Value) -> bool {
        use std::cmp::Ordering::*;
        // NULL never satisfies a comparison (SQL three-valued logic collapsed
        // to false, which is what a join predicate needs).
        if l.is_null() || r.is_null() {
            return false;
        }
        let ord = l.cmp(r);
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        }
    }

    fn flip(self) -> Self {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A join condition θ over the non-temporal attributes of a left (positive)
/// and a right (negative) relation.
///
/// θ is a conjunction of column-to-column comparisons. The common case in
/// the paper — and the only case its datasets use — is a single equality
/// (`a.Loc = b.Loc`), for which the overlap join uses a hash-partitioned
/// plan; general θ conditions fall back to a nested-loop plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThetaCondition {
    comparisons: Vec<(String, CompareOp, String)>,
}

impl ThetaCondition {
    /// The always-true condition (a pure temporal join).
    #[must_use]
    pub fn always() -> Self {
        Self {
            comparisons: Vec::new(),
        }
    }

    /// Single equality `left_column = right_column` (e.g. `a.Loc = b.Loc`).
    #[must_use]
    pub fn column_equals(left_column: &str, right_column: &str) -> Self {
        Self {
            comparisons: vec![(
                left_column.to_owned(),
                CompareOp::Eq,
                right_column.to_owned(),
            )],
        }
    }

    /// Adds another comparison to the conjunction.
    #[must_use]
    pub fn and_compare(mut self, left_column: &str, op: CompareOp, right_column: &str) -> Self {
        self.comparisons
            .push((left_column.to_owned(), op, right_column.to_owned()));
        self
    }

    /// The comparisons of the conjunction.
    #[must_use]
    pub fn comparisons(&self) -> &[(String, CompareOp, String)] {
        &self.comparisons
    }

    /// The same condition with the roles of the two relations swapped
    /// (used when computing windows of `s` with respect to `r` for right
    /// outer and full outer joins).
    #[must_use]
    pub fn flipped(&self) -> Self {
        Self {
            comparisons: self
                .comparisons
                .iter()
                .map(|(l, op, r)| (r.clone(), op.flip(), l.clone()))
                .collect(),
        }
    }

    /// Resolves the column names against concrete schemas.
    pub fn bind(&self, left: &Schema, right: &Schema) -> Result<BoundTheta, StorageError> {
        let mut comparisons = Vec::with_capacity(self.comparisons.len());
        let mut equi_keys = Vec::new();
        for (l, op, r) in &self.comparisons {
            let li = left.require(l)?;
            let ri = right.require(r)?;
            comparisons.push((li, *op, ri));
            if *op == CompareOp::Eq {
                equi_keys.push((li, ri));
            }
        }
        let pure_equi = comparisons.len() == equi_keys.len();
        Ok(BoundTheta {
            comparisons,
            equi_keys,
            pure_equi,
        })
    }
}

impl fmt::Display for ThetaCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.comparisons.is_empty() {
            return write!(f, "true");
        }
        for (i, (l, op, r)) in self.comparisons.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "r.{l} {op} s.{r}")?;
        }
        Ok(())
    }
}

/// A [`ThetaCondition`] resolved to column positions of two concrete
/// schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundTheta {
    comparisons: Vec<(usize, CompareOp, usize)>,
    equi_keys: Vec<(usize, usize)>,
    pure_equi: bool,
}

impl BoundTheta {
    /// Does the pair of tuples satisfy θ?
    #[must_use]
    pub fn matches(&self, left: &TpTuple, right: &TpTuple) -> bool {
        self.comparisons
            .iter()
            .all(|(li, op, ri)| op.eval(left.fact(*li), right.fact(*ri)))
    }

    /// Is the condition a pure conjunction of equalities (hash-joinable)?
    #[must_use]
    pub fn is_equi_join(&self) -> bool {
        self.pure_equi && !self.equi_keys.is_empty()
    }

    /// The left-side key of an equi-join condition.
    #[must_use]
    pub fn left_key(&self, t: &TpTuple) -> Vec<Value> {
        self.equi_keys
            .iter()
            .map(|(l, _)| t.fact(*l).clone())
            .collect()
    }

    /// The right-side key of an equi-join condition.
    #[must_use]
    pub fn right_key(&self, t: &TpTuple) -> Vec<Value> {
        self.equi_keys
            .iter()
            .map(|(_, r)| t.fact(*r).clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_lineage::Lineage;
    use tpdb_storage::DataType;
    use tpdb_temporal::Interval;

    fn schema_a() -> Schema {
        Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)])
    }

    fn schema_b() -> Schema {
        Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)])
    }

    fn tup(facts: Vec<Value>) -> TpTuple {
        TpTuple::new(facts, Lineage::tru(), Interval::new(0, 1), 1.0)
    }

    #[test]
    fn equality_binding_and_matching() {
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let bound = theta.bind(&schema_a(), &schema_b()).unwrap();
        assert!(bound.is_equi_join());
        let ann = tup(vec![Value::str("Ann"), Value::str("ZAK")]);
        let hotel_zak = tup(vec![Value::str("hotel1"), Value::str("ZAK")]);
        let hotel_sor = tup(vec![Value::str("hotel3"), Value::str("SOR")]);
        assert!(bound.matches(&ann, &hotel_zak));
        assert!(!bound.matches(&ann, &hotel_sor));
        assert_eq!(bound.left_key(&ann), vec![Value::str("ZAK")]);
        assert_eq!(bound.right_key(&hotel_sor), vec![Value::str("SOR")]);
    }

    #[test]
    fn always_condition_matches_everything() {
        let theta = ThetaCondition::always();
        let bound = theta.bind(&schema_a(), &schema_b()).unwrap();
        assert!(!bound.is_equi_join());
        assert!(bound.matches(
            &tup(vec![Value::str("Ann"), Value::str("ZAK")]),
            &tup(vec![Value::str("h"), Value::str("SOR")])
        ));
    }

    #[test]
    fn nulls_never_match() {
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let bound = theta.bind(&schema_a(), &schema_b()).unwrap();
        assert!(!bound.matches(
            &tup(vec![Value::str("Ann"), Value::Null]),
            &tup(vec![Value::str("h"), Value::Null])
        ));
    }

    #[test]
    fn inequality_conditions_are_not_equi_joins() {
        let theta = ThetaCondition::always().and_compare("Loc", CompareOp::Lt, "Loc");
        let bound = theta.bind(&schema_a(), &schema_b()).unwrap();
        assert!(!bound.is_equi_join());
        assert!(bound.matches(
            &tup(vec![Value::str("Ann"), Value::str("AAA")]),
            &tup(vec![Value::str("h"), Value::str("ZZZ")])
        ));
        assert!(!bound.matches(
            &tup(vec![Value::str("Ann"), Value::str("ZZZ")]),
            &tup(vec![Value::str("h"), Value::str("AAA")])
        ));
    }

    #[test]
    fn flipped_swaps_sides_and_operators() {
        let theta = ThetaCondition::always().and_compare("Name", CompareOp::Lt, "Hotel");
        let flipped = theta.flipped();
        let bound = flipped.bind(&schema_b(), &schema_a()).unwrap();
        // hotel > name  <=>  name < hotel
        assert!(bound.matches(
            &tup(vec![Value::str("zzz"), Value::str("ZAK")]),
            &tup(vec![Value::str("aaa"), Value::str("ZAK")])
        ));
    }

    #[test]
    fn unknown_columns_are_rejected_at_bind_time() {
        let theta = ThetaCondition::column_equals("Loc", "Missing");
        assert!(theta.bind(&schema_a(), &schema_b()).is_err());
    }

    #[test]
    fn display_renders_condition() {
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        assert_eq!(theta.to_string(), "r.Loc = s.Loc");
        assert_eq!(ThetaCondition::always().to_string(), "true");
    }

    #[test]
    fn multi_column_conjunction() {
        let theta =
            ThetaCondition::column_equals("Loc", "Loc").and_compare("Name", CompareOp::Ne, "Hotel");
        let bound = theta.bind(&schema_a(), &schema_b()).unwrap();
        assert!(!bound.is_equi_join()); // mixed ops: not a pure equi join
        assert!(bound.matches(
            &tup(vec![Value::str("Ann"), Value::str("ZAK")]),
            &tup(vec![Value::str("hotel1"), Value::str("ZAK")])
        ));
        assert!(!bound.matches(
            &tup(vec![Value::str("Ann"), Value::str("ZAK")]),
            &tup(vec![Value::str("Ann"), Value::str("ZAK")])
        ));
    }
}
