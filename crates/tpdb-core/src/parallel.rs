//! Morsel-driven work-stealing execution of the TP join and set-operation
//! pipelines.
//!
//! The streaming NJ pipeline (overlap join → LAWAU → LAWAN → output
//! formation) treats every `r` tuple's window group independently, and the
//! keyed overlap-join plans (sweep, hash) confine each probe to the build
//! partition of its equi-join key. Together these make the pipeline
//! *morselizable*: build the probe index over the full build side **once**,
//! share it read-only across workers, cut the probe side into small
//! key-group-respecting morsels ([`crate::morsel::MorselPlan`]), and let
//! `P` scoped workers steal morsels from a shared injector until the queue
//! is drained. A worker that draws a cheap morsel immediately steals the
//! next one, so skewed key distributions (meteo's 40 keys, or one key
//! holding 90% of the tuples) no longer cap the speedup the way static
//! partition-per-worker execution did.
//!
//! ## Determinism
//!
//! Parallel execution is **byte-identical** to serial execution:
//!
//! * Every morsel is claimed by exactly one worker, so each `r` tuple's
//!   complete window group — and therefore each output tuple — is produced
//!   by exactly one worker, by the same code the serial pipeline runs
//!   against the same shared index.
//! * Workers tag output tuples with the global index of the originating
//!   positive tuple. The serial pipeline emits output grouped by that index
//!   in ascending order, so a stable merge on it reconstructs the serial
//!   order exactly.
//! * Probabilities are computed per worker by a cloned
//!   [`ProbabilityEngine`]; the engine is a pure, deterministic function of
//!   the registered marginals, so the floating-point results are identical
//!   bit-for-bit regardless of which thread computes them.
//!
//! The set operations ride the same machinery ([`tp_set_op_parallel`]):
//! difference and intersection are the anti/inner join in disguise, and the
//! union's two window passes (r-vs-s and s-vs-r) each become one
//! work-stealing pass whose outputs merge by probe index — the streaming
//! union is no longer a serial fallback.
//!
//! ## Fallback
//!
//! The nested-loop plan compares every pair of tuples and cannot shard by
//! key. Requesting `parallelism > 1` for a join that resolves to a
//! nested-loop plan (a non-equi θ) is not an error: the join runs serially
//! and [`parallel_degree`] — which the query layer's `EXPLAIN` uses —
//! reports degree 1.

use crate::join::{form_output_tuple_interned, output_schema, Side};
use crate::morsel::{scope_workers, Injector, MorselPlan};
use crate::overlap::{
    auto_plan, interned_lineages, lineage_column, OverlapJoinPlan, OverlapWindowStream, ProbeIndex,
};
use crate::pipeline::{LawanStream, LawauStream};
use crate::setops::{all_columns_equal, TpSetOpKind, TpSetOpStream};
use crate::theta::{BoundTheta, ThetaCondition};
use crate::window::{Window, WindowKind};
use crate::TpJoinKind;
use std::sync::Arc;
use tpdb_lineage::{LineageRef, ProbabilityEngine};
use tpdb_storage::{StorageError, TpRelation, TpTuple};
use tpdb_temporal::Interval;

/// The default degree of parallelism: the number of hardware threads the
/// host exposes (1 when it cannot be determined).
#[must_use]
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Upper bound on the degree of parallelism. A requested degree is clamped
/// here instead of being handed verbatim to the OS: one worker maps to one
/// `std::thread`, and an absurd request (`PARALLEL 500000`) must degrade to
/// a bounded worker pool, not abort the query when thread creation fails.
pub const MAX_PARALLELISM: usize = 256;

/// The degree of parallelism a join will actually execute with: the
/// requested degree (clamped to `1..=`[`MAX_PARALLELISM`]) for shardable
/// (keyed) plans, 1 for the nested loop. `EXPLAIN` reports this value, so
/// what the plan output claims is what the executor does. The driver may
/// still run *fewer* workers when the data produces fewer morsels than the
/// degree — the surplus workers would find the injector already drained.
#[must_use]
pub fn parallel_degree(plan: OverlapJoinPlan, requested: usize) -> usize {
    if plan.is_shardable() {
        requested.clamp(1, MAX_PARALLELISM)
    } else {
        1
    }
}

/// Output tuples tagged with the global index of the positive tuple that
/// produced them (the merge key).
type TaggedTuples = Vec<(usize, TpTuple)>;

/// Merges per-worker `(positive index, tuple)` streams back into the serial
/// emission order. Morsel index sets are disjoint and each morsel is
/// processed by exactly one worker, so within one probe index all tuples
/// sit in a single vector in their emission order — a stable sort on the
/// index reproduces the serial order exactly.
fn merge_in_index_order(parts: Vec<TaggedTuples>, out: &mut TpRelation) {
    let mut all: Vec<(usize, TpTuple)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|(idx, _)| *idx);
    for (_, tuple) in all {
        out.push_unchecked(tuple);
    }
}

/// How deep into the window pipeline one parallel pass runs before output
/// formation — mirrors the serial pipeline composition per operator.
#[derive(Clone, Copy)]
enum PassDepth {
    /// Raw overlap-join windows (inner/right-outer left pass).
    Overlap,
    /// Overlap join → LAWAU (the union's second pass).
    Unmatched,
    /// Overlap join → LAWAU → LAWAN (everything else).
    Full,
}

/// One work-stealing pass of the window pipeline: `r`'s probe indices are
/// cut into morsels, up to `degree` scoped workers steal them, and each
/// stolen morsel runs the serial pipeline (to `depth`) against the shared
/// build-side index over `s`. `form` turns each window leaving the
/// pipeline into at most one output tuple; results are returned per worker,
/// tagged with the global probe index for [`merge_in_index_order`].
// The pass is fully parameterized (inputs, bound θ, plan, depth, degree,
// engine, formation) — bundling arguments into a struct would only rename
// the two call sites.
#[allow(clippy::too_many_arguments)]
fn run_pass<F>(
    r: &TpRelation,
    s: &TpRelation,
    bound: &BoundTheta,
    plan: OverlapJoinPlan,
    depth: PassDepth,
    degree: usize,
    engine: &ProbabilityEngine,
    form: F,
) -> Result<Vec<TaggedTuples>, StorageError>
where
    F: Fn(&Window<LineageRef>, &mut ProbabilityEngine) -> Option<TpTuple> + Sync,
{
    // Built once over the full build side and shared read-only — no
    // per-shard index rebuild.
    let index = Arc::new(ProbeIndex::build(s, bound, plan)?);
    let morsels = MorselPlan::build(r, bound);
    if morsels.morsel_count() == 0 {
        return Ok(Vec::new());
    }
    let injector = Injector::new(morsels.morsel_count());
    let workers = degree.min(morsels.morsel_count());
    Ok(scope_workers(workers, |_| {
        // Per-worker state, paid once per worker (not per morsel): a cloned
        // engine and both lineage columns interned into it.
        let mut engine = engine.clone();
        let r_lins = interned_lineages(r, engine.interner_mut());
        let s_lins = interned_lineages(s, engine.interner_mut());
        let mut out: TaggedTuples = Vec::new();
        while let Some(m) = injector.steal() {
            let wo = OverlapWindowStream::over_index(
                r,
                s,
                bound.clone(),
                Arc::clone(&index),
                morsels.morsel(m),
                Arc::clone(&r_lins),
                Arc::clone(&s_lins),
            );
            match depth {
                PassDepth::Overlap => {
                    for w in wo {
                        let idx = w.r_idx;
                        if let Some(t) = form(&w, &mut engine) {
                            out.push((idx, t));
                        }
                    }
                }
                PassDepth::Unmatched => {
                    let lins = wo.positive_lineages();
                    for w in LawauStream::with_lineages(wo, r, lins) {
                        let idx = w.r_idx;
                        if let Some(t) = form(&w, &mut engine) {
                            out.push((idx, t));
                        }
                    }
                }
                PassDepth::Full => {
                    let lins = wo.positive_lineages();
                    let mut stream = LawanStream::new(LawauStream::with_lineages(wo, r, lins));
                    while let Some(w) = stream.next_with(engine.interner_mut()) {
                        let idx = w.r_idx;
                        if let Some(t) = form(&w, &mut engine) {
                            out.push((idx, t));
                        }
                    }
                }
            }
        }
        out
    }))
}

/// [`crate::tp_join`] executed with morsel-driven work-stealing
/// parallelism. Base-tuple probabilities are derived from the two inputs;
/// see [`tp_join_parallel_with_engine_and_plan`] for the full-control
/// variant.
///
/// `parallelism` is the requested worker count; `1` (or a nested-loop plan)
/// means serial execution. The result is byte-identical to the serial join.
///
/// ```
/// use tpdb_core::{tp_join, tp_join_parallel, ThetaCondition, TpJoinKind};
///
/// let (a, b) = tpdb_datagen::booking_example();
/// let theta = ThetaCondition::column_equals("Loc", "Loc");
/// let serial = tp_join(&a, &b, &theta, TpJoinKind::LeftOuter).unwrap();
/// let parallel = tp_join_parallel(&a, &b, &theta, TpJoinKind::LeftOuter, 4).unwrap();
/// assert_eq!(parallel, serial);
/// ```
pub fn tp_join_parallel(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    parallelism: usize,
) -> Result<TpRelation, StorageError> {
    tp_join_parallel_with_plan(r, s, theta, kind, None, parallelism)
}

/// [`tp_join_parallel`] with an explicitly chosen overlap-join plan (`None`
/// lets the engine pick: sweep for equi-joins, nested loop otherwise).
///
/// # Errors
///
/// Returns [`StorageError::PlanNotApplicable`] when a hash or sweep plan is
/// forced but θ is not a pure equi-join — the same contract as the serial
/// [`crate::tp_join_with_plan`].
pub fn tp_join_parallel_with_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    plan: Option<OverlapJoinPlan>,
    parallelism: usize,
) -> Result<TpRelation, StorageError> {
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);
    tp_join_parallel_with_engine_and_plan(r, s, theta, kind, plan, parallelism, &engine)
}

/// The morsel-driven parallel TP join with an explicit probability engine
/// (cloned into every worker) and an optional forced overlap-join plan.
///
/// Falls back to the serial pipeline when the effective degree is 1: the
/// requested `parallelism` is 1, or the (resolved) plan is a nested loop,
/// which cannot shard by key.
pub fn tp_join_parallel_with_engine_and_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    plan: Option<OverlapJoinPlan>,
    parallelism: usize,
    engine: &ProbabilityEngine,
) -> Result<TpRelation, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    let plan = plan.unwrap_or_else(|| auto_plan(&bound));
    let degree = parallel_degree(plan, parallelism);
    // Serial fallback for everything that cannot (or should not) shard: a
    // requested degree of 1, a non-shardable plan, or a keyed plan forced on
    // a non-equi θ — for the latter the serial path returns the same
    // `PlanNotApplicable` error the serial join contract promises.
    if degree <= 1 || !bound.is_equi_join() {
        let mut engine = engine.clone();
        return crate::join::tp_join_with_engine_and_plan(
            r,
            s,
            theta,
            kind,
            Some(plan),
            &mut engine,
        );
    }

    let schema = output_schema(r, s, kind);
    let name = format!("{}{}{}", r.name(), kind.symbol(), s.name());
    let mut out = TpRelation::new(&name, schema);

    // Windows of r with respect to s (all operators), at the depth the
    // serial pipeline uses for this operator.
    let left_depth = match kind {
        TpJoinKind::Inner | TpJoinKind::RightOuter => PassDepth::Overlap,
        TpJoinKind::Anti | TpJoinKind::LeftOuter | TpJoinKind::FullOuter => PassDepth::Full,
    };
    let lefts = run_pass(r, s, &bound, plan, left_depth, degree, engine, |w, eng| {
        form_output_tuple_interned(w, r, s, kind, Side::Left, eng)
    })?;
    merge_in_index_order(lefts, &mut out);

    // Windows of s with respect to r (right-hand null-extension);
    // overlapping windows are skipped as duplicates of side one.
    if matches!(kind, TpJoinKind::RightOuter | TpJoinKind::FullOuter) {
        let flipped_bound = theta.flipped().bind(s.schema(), r.schema())?;
        let rights = run_pass(
            s,
            r,
            &flipped_bound,
            plan,
            PassDepth::Full,
            degree,
            engine,
            |w, eng| {
                if w.is_overlapping() {
                    return None;
                }
                form_output_tuple_interned(w, s, r, kind, Side::Right, eng)
            },
        )?;
        merge_in_index_order(rights, &mut out);
    }
    Ok(out)
}

/// Forms one union output tuple: prices `lambda`, re-wraps it as a tree and
/// copies the source tuple's facts — exactly the serial
/// [`TpSetOpStream`] union formation.
fn form_union_tuple(
    rel: &TpRelation,
    idx: usize,
    lambda: LineageRef,
    interval: Interval,
    engine: &mut ProbabilityEngine,
) -> TpTuple {
    let probability = engine.probability_ref(lambda);
    // Output-formation boundary: ids become trees exactly once, on the
    // emitted tuple. tpdb-lint: allow(no-lineage-clone-in-streams)
    let lineage = engine.to_lineage(lambda);
    TpTuple::new(
        rel.tuple(idx).facts().to_vec(),
        lineage,
        interval,
        probability,
    )
}

/// A TP set operation executed with morsel-driven work-stealing
/// parallelism. Base-tuple probabilities are derived from the two inputs;
/// see [`tp_set_op_parallel_with_engine_and_plan`] for the full-control
/// variant.
///
/// The result is byte-identical to the streaming [`TpSetOpStream`] (and
/// therefore to the one-shot [`crate::tp_union`] /
/// [`crate::tp_intersection`] / [`crate::tp_difference`]):
///
/// ```
/// use tpdb_core::{tp_set_op_parallel, tp_union, TpSetOpKind};
///
/// let (a, b) = tpdb_datagen::booking_example();
/// let serial = tp_union(&a, &b).unwrap();
/// let parallel = tp_set_op_parallel(&a, &b, TpSetOpKind::Union, 4).unwrap();
/// assert_eq!(parallel, serial);
/// ```
pub fn tp_set_op_parallel(
    r: &TpRelation,
    s: &TpRelation,
    kind: TpSetOpKind,
    parallelism: usize,
) -> Result<TpRelation, StorageError> {
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);
    tp_set_op_parallel_with_engine_and_plan(r, s, kind, None, parallelism, &engine)
}

/// The morsel-driven parallel TP set operation with an explicit probability
/// engine (cloned into every worker) and an optional forced overlap-join
/// plan.
///
/// Difference and intersection reuse the anti/inner join passes;
/// the union runs its two window passes (r-vs-s at full pipeline depth,
/// s-vs-r to LAWAU) as work-stealing morsel jobs, replicating the serial
/// [`TpSetOpStream`] window-by-window formation. Falls back to the
/// streaming set operation when the effective degree is 1 (requested
/// `parallelism` of 1, or a forced nested-loop plan).
///
/// # Errors
///
/// [`StorageError::ArityMismatch`] / [`StorageError::UnionIncompatible`]
/// when the inputs are not union-compatible.
pub fn tp_set_op_parallel_with_engine_and_plan(
    r: &TpRelation,
    s: &TpRelation,
    kind: TpSetOpKind,
    plan: Option<OverlapJoinPlan>,
    parallelism: usize,
    engine: &ProbabilityEngine,
) -> Result<TpRelation, StorageError> {
    let theta = all_columns_equal(r, s)?;
    let bound = theta.bind(r.schema(), s.schema())?;
    let plan = plan.unwrap_or_else(|| auto_plan(&bound));
    let degree = parallel_degree(plan, parallelism);
    // The all-attribute equality θ is always an equi-join; only a degree of
    // 1 or a forced nested-loop plan lands here.
    if degree <= 1 || !bound.is_equi_join() {
        return Ok(
            TpSetOpStream::with_engine_and_plan(r, s, kind, Some(plan), engine.clone())?
                .collect_relation(),
        );
    }

    let name = format!("{}{}{}", r.name(), kind.symbol(), s.name());
    let mut out = TpRelation::new(&name, r.schema().clone());
    match kind {
        TpSetOpKind::Difference => {
            let parts = run_pass(
                r,
                s,
                &bound,
                plan,
                PassDepth::Full,
                degree,
                engine,
                |w, eng| form_output_tuple_interned(w, r, s, TpJoinKind::Anti, Side::Left, eng),
            )?;
            merge_in_index_order(parts, &mut out);
        }
        TpSetOpKind::Intersection => {
            let arity = r.schema().arity();
            let parts = run_pass(
                r,
                s,
                &bound,
                plan,
                PassDepth::Overlap,
                degree,
                engine,
                |w, eng| {
                    form_output_tuple_interned(w, r, s, TpJoinKind::Inner, Side::Left, eng).map(
                        |t| {
                            TpTuple::new(
                                t.facts()[..arity].to_vec(),
                                // Projection back to r's schema re-wraps the
                                // finished tuple's tree.
                                // tpdb-lint: allow(no-lineage-clone-in-streams)
                                t.lineage().clone(),
                                t.interval(),
                                t.probability(),
                            )
                        },
                    )
                },
            )?;
            merge_in_index_order(parts, &mut out);
        }
        TpSetOpKind::Union => {
            // First pass: windows of r with respect to s. Overlapping
            // windows are skipped — the negating windows of the same group
            // cover the identical sub-intervals and already carry the full
            // disjunction λs of the matching s tuples.
            let lefts = run_pass(
                r,
                s,
                &bound,
                plan,
                PassDepth::Full,
                degree,
                engine,
                |w, eng| {
                    let lambda = match w.kind {
                        WindowKind::Unmatched => w.lambda_r,
                        WindowKind::Negating => eng.interner_mut().or2(
                            w.lambda_r,
                            // Window-kind invariant.
                            // tpdb-lint: allow(no-panic-in-lib)
                            w.lambda_s.expect("negating windows carry λs"),
                        ),
                        WindowKind::Overlapping => return None,
                    };
                    Some(form_union_tuple(r, w.r_idx, lambda, w.interval, eng))
                },
            )?;
            merge_in_index_order(lefts, &mut out);

            // Second pass: only the unmatched sub-intervals of s are new;
            // everything else was covered from r's perspective.
            let flipped_bound = theta.flipped().bind(s.schema(), r.schema())?;
            let rights = run_pass(
                s,
                r,
                &flipped_bound,
                plan,
                PassDepth::Unmatched,
                degree,
                engine,
                |w, eng| {
                    (w.kind == WindowKind::Unmatched)
                        .then(|| form_union_tuple(s, w.r_idx, w.lambda_r, w.interval, eng))
                },
            )?;
            merge_in_index_order(rights, &mut out);
        }
    }
    Ok(out)
}

/// Counts the `WUO` windows (overlap join → LAWAU) of an equi-join with
/// morsel-driven parallelism — the parallel counterpart of the Fig. 5
/// measurement kernel, consuming windows exactly as the join operator does.
/// Falls back to the serial stream when the resolved plan cannot shard or
/// `parallelism` is 1.
pub fn parallel_wuo_count(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    parallelism: usize,
) -> Result<usize, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    let plan = auto_plan(&bound);
    let degree = parallel_degree(plan, parallelism);
    if degree <= 1 {
        let wo = OverlapWindowStream::with_plan(r, s, bound, plan)?;
        return Ok(LawauStream::new(wo, r).count());
    }
    let index = Arc::new(ProbeIndex::build(s, &bound, plan)?);
    let morsels = MorselPlan::build(r, &bound);
    if morsels.morsel_count() == 0 {
        return Ok(0);
    }
    // The count consumes Lineage windows like the legacy stream; both
    // columns are materialized once and shared by every worker.
    let r_lins = lineage_column(r);
    let s_lins = lineage_column(s);
    let injector = Injector::new(morsels.morsel_count());
    let workers = degree.min(morsels.morsel_count());
    let counts = scope_workers(workers, |_| {
        let mut total = 0usize;
        while let Some(m) = injector.steal() {
            let wo = OverlapWindowStream::over_index(
                r,
                s,
                bound.clone(),
                Arc::clone(&index),
                morsels.morsel(m),
                Arc::clone(&r_lins),
                Arc::clone(&s_lins),
            );
            total += LawauStream::new(wo, r).count();
        }
        total
    });
    Ok(counts.into_iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::booking_relations;
    use crate::theta::CompareOp;
    use crate::tp_join_with_plan;
    use crate::{tp_difference, tp_intersection, tp_union};

    const KINDS: [TpJoinKind; 5] = [
        TpJoinKind::Inner,
        TpJoinKind::Anti,
        TpJoinKind::LeftOuter,
        TpJoinKind::RightOuter,
        TpJoinKind::FullOuter,
    ];

    const SET_OPS: [TpSetOpKind; 3] = [
        TpSetOpKind::Union,
        TpSetOpKind::Intersection,
        TpSetOpKind::Difference,
    ];

    fn theta() -> ThetaCondition {
        ThetaCondition::column_equals("Loc", "Loc")
    }

    #[test]
    fn parallel_equals_serial_for_every_kind_and_degree() {
        let (a, b, _) = booking_relations();
        for kind in KINDS {
            let serial = crate::tp_join(&a, &b, &theta(), kind).unwrap();
            for degree in [1, 2, 3, 8] {
                let parallel = tp_join_parallel(&a, &b, &theta(), kind, degree).unwrap();
                assert_eq!(parallel, serial, "kind = {kind:?}, degree = {degree}");
            }
        }
    }

    #[test]
    fn parallel_respects_forced_plans() {
        let (a, b, _) = booking_relations();
        for plan in [OverlapJoinPlan::Sweep, OverlapJoinPlan::Hash] {
            let serial =
                tp_join_with_plan(&a, &b, &theta(), TpJoinKind::FullOuter, Some(plan)).unwrap();
            let parallel =
                tp_join_parallel_with_plan(&a, &b, &theta(), TpJoinKind::FullOuter, Some(plan), 4)
                    .unwrap();
            assert_eq!(parallel, serial, "plan = {plan}");
        }
    }

    #[test]
    fn non_equi_theta_falls_back_to_serial() {
        // θ = true resolves to the nested-loop plan, which cannot shard:
        // the join must run (serially) instead of panicking.
        let (a, b, _) = booking_relations();
        let always = ThetaCondition::always();
        let serial = crate::tp_join(&a, &b, &always, TpJoinKind::LeftOuter).unwrap();
        let parallel = tp_join_parallel(&a, &b, &always, TpJoinKind::LeftOuter, 4).unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel_degree(OverlapJoinPlan::NestedLoop, 4), 1);
    }

    #[test]
    fn forced_keyed_plan_on_non_equi_theta_is_still_an_error() {
        let (a, b, _) = booking_relations();
        let non_equi = ThetaCondition::always().and_compare("Loc", CompareOp::Lt, "Loc");
        let err = tp_join_parallel_with_plan(
            &a,
            &b,
            &non_equi,
            TpJoinKind::Inner,
            Some(OverlapJoinPlan::Sweep),
            4,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::PlanNotApplicable { .. }));
    }

    #[test]
    fn degree_exceeding_morsel_count_trims_the_workers() {
        let (a, b, _) = booking_relations();
        // The tiny booking input fits one morsel; the driver runs one
        // worker instead of spawning 15 idle ones — and stays correct.
        let bound = theta().bind(a.schema(), b.schema()).unwrap();
        assert_eq!(MorselPlan::build(&a, &bound).morsel_count(), 1);
        let serial = crate::tp_join(&a, &b, &theta(), TpJoinKind::FullOuter).unwrap();
        let parallel = tp_join_parallel(&a, &b, &theta(), TpJoinKind::FullOuter, 16).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn absurd_degrees_are_clamped_not_crashed() {
        let (a, b, _) = booking_relations();
        assert_eq!(
            parallel_degree(OverlapJoinPlan::Sweep, 500_000),
            MAX_PARALLELISM
        );
        // Executes with a bounded worker pool instead of asking the OS for
        // half a million threads.
        let serial = crate::tp_join(&a, &b, &theta(), TpJoinKind::LeftOuter).unwrap();
        let parallel = tp_join_parallel(&a, &b, &theta(), TpJoinKind::LeftOuter, 500_000).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_inputs() {
        let (a, b, _) = booking_relations();
        let empty_a = TpRelation::new("a", a.schema().clone());
        let empty_b = TpRelation::new("b", b.schema().clone());
        assert_eq!(
            tp_join_parallel(&empty_a, &b, &theta(), TpJoinKind::LeftOuter, 4)
                .unwrap()
                .len(),
            0
        );
        let left_only = tp_join_parallel(&a, &empty_b, &theta(), TpJoinKind::LeftOuter, 4).unwrap();
        assert_eq!(
            left_only,
            crate::tp_join(&a, &empty_b, &theta(), TpJoinKind::LeftOuter).unwrap()
        );
        assert_eq!(
            tp_join_parallel(&empty_a, &empty_b, &theta(), TpJoinKind::FullOuter, 4)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn set_op_parallel_equals_serial_for_every_kind_and_degree() {
        // booking a (Name, Loc) and b (Hotel, Loc) are union-compatible
        // positionally: both are (Str, Str).
        let (a, b, _) = booking_relations();
        for kind in SET_OPS {
            let serial = match kind {
                TpSetOpKind::Union => tp_union(&a, &b).unwrap(),
                TpSetOpKind::Intersection => tp_intersection(&a, &b).unwrap(),
                TpSetOpKind::Difference => tp_difference(&a, &b).unwrap(),
            };
            for degree in [1, 2, 4, 7] {
                let parallel = tp_set_op_parallel(&a, &b, kind, degree).unwrap();
                assert_eq!(parallel, serial, "kind = {kind:?}, degree = {degree}");
            }
        }
    }

    #[test]
    fn set_op_parallel_with_forced_nested_loop_falls_back_to_serial() {
        let (a, b, _) = booking_relations();
        for kind in SET_OPS {
            let serial = TpSetOpStream::with_plan(&a, &b, kind, Some(OverlapJoinPlan::NestedLoop))
                .unwrap()
                .collect_relation();
            let mut engine = ProbabilityEngine::new();
            a.register_probabilities(&mut engine);
            b.register_probabilities(&mut engine);
            let parallel = tp_set_op_parallel_with_engine_and_plan(
                &a,
                &b,
                kind,
                Some(OverlapJoinPlan::NestedLoop),
                4,
                &engine,
            )
            .unwrap();
            assert_eq!(parallel, serial, "kind = {kind:?}");
        }
    }

    #[test]
    fn set_op_parallel_rejects_union_incompatible_inputs() {
        let (a, _, _) = booking_relations();
        let skinny = TpRelation::new(
            "s",
            tpdb_storage::Schema::tp(&[("x", tpdb_storage::DataType::Str)]),
        );
        let err = tp_set_op_parallel(&a, &skinny, TpSetOpKind::Union, 4).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn parallel_wuo_count_matches_serial_stream() {
        let (a, b, _) = booking_relations();
        let serial = {
            let wo = OverlapWindowStream::new(&a, &b, &theta()).unwrap();
            LawauStream::new(wo, &a).count()
        };
        for degree in [1, 2, 4, 7] {
            assert_eq!(
                parallel_wuo_count(&a, &b, &theta(), degree).unwrap(),
                serial,
                "degree = {degree}"
            );
        }
        // Non-equi θ falls back to the serial nested-loop stream.
        let always = ThetaCondition::always();
        let serial_nl = {
            let wo = OverlapWindowStream::new(&a, &b, &always).unwrap();
            LawauStream::new(wo, &a).count()
        };
        assert_eq!(parallel_wuo_count(&a, &b, &always, 4).unwrap(), serial_nl);
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
        assert_eq!(parallel_degree(OverlapJoinPlan::Sweep, 0), 1);
        assert_eq!(parallel_degree(OverlapJoinPlan::Sweep, 6), 6);
        assert_eq!(parallel_degree(OverlapJoinPlan::Hash, 3), 3);
    }
}
