//! Parallel partitioned execution of the TP join pipeline.
//!
//! The streaming NJ pipeline (overlap join → LAWAU → LAWAN → output
//! formation) treats every `r` tuple's window group independently, and the
//! keyed overlap-join plans (sweep, hash) confine each probe to the build
//! partition of its equi-join key. Together these make the whole pipeline
//! *partitionable*: hash-partition both inputs by join key into `P` shards,
//! run the full pipeline per shard on scoped worker threads, and merge the
//! shard outputs back into the serial emission order.
//!
//! ## Determinism
//!
//! Parallel execution is **byte-identical** to serial execution:
//!
//! * Every join key is assigned to exactly one shard, so each `r` tuple's
//!   complete window group — and therefore each output tuple — is produced
//!   by exactly one worker, by the same code the serial pipeline runs.
//! * Workers tag output tuples with the global index of the originating
//!   positive tuple. The serial pipeline emits output grouped by that index
//!   in ascending order, so a stable merge on it reconstructs the serial
//!   order exactly.
//! * Probabilities are computed per worker by a cloned
//!   [`ProbabilityEngine`]; the engine is a pure, deterministic function of
//!   the registered marginals, so the floating-point results are identical
//!   bit-for-bit regardless of which thread computes them.
//!
//! ## Fallback
//!
//! The nested-loop plan compares every pair of tuples and cannot shard by
//! key. Requesting `parallelism > 1` for a join that resolves to a
//! nested-loop plan (a non-equi θ) is not an error: the join runs serially
//! and [`parallel_degree`] — which the query layer's `EXPLAIN` uses —
//! reports degree 1.

use crate::join::{form_output_tuple_interned, output_schema, Side};
use crate::overlap::{auto_plan, OverlapJoinPlan, OverlapWindowStream};
use crate::pipeline::{LawanStream, LawauStream};
use crate::theta::{BoundTheta, ThetaCondition};
use crate::TpJoinKind;
use std::collections::HashMap;
use tpdb_lineage::ProbabilityEngine;
use tpdb_storage::{StorageError, TpRelation, TpTuple, Value};

/// The default degree of parallelism: the number of hardware threads the
/// host exposes (1 when it cannot be determined).
#[must_use]
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Upper bound on the degree of parallelism. A requested degree is clamped
/// here instead of being handed verbatim to the OS: one worker maps to one
/// `std::thread`, and an absurd request (`PARALLEL 500000`) must degrade to
/// a bounded worker pool, not abort the query when thread creation fails.
pub const MAX_PARALLELISM: usize = 256;

/// The degree of parallelism a join will actually execute with: the
/// requested degree (clamped to `1..=`[`MAX_PARALLELISM`]) for shardable
/// (keyed) plans, 1 for the nested loop. `EXPLAIN` reports this value, so
/// what the plan output claims is what the executor does. The driver may
/// still run *fewer* workers when the data has fewer distinct join keys
/// than the degree — the surplus shards would be empty.
#[must_use]
pub fn parallel_degree(plan: OverlapJoinPlan, requested: usize) -> usize {
    if plan.is_shardable() {
        requested.clamp(1, MAX_PARALLELISM)
    } else {
        1
    }
}

/// One shard of the partitioned join: the member indices of both inputs, in
/// ascending index order.
#[derive(Debug, Default)]
struct Shard {
    /// Indices into the positive relation `r` (the probe side).
    r_members: Vec<usize>,
    /// Indices into the negative relation `s` (the build side).
    s_members: Vec<usize>,
}

impl Shard {
    /// The load-balancing weight: tuples routed here from both sides.
    fn load(&self) -> usize {
        self.r_members.len() + self.s_members.len()
    }
}

/// Assigns every distinct join key to a shard and routes both inputs.
///
/// Keys are assigned greedily, heaviest first (load = number of `r` plus `s`
/// tuples of the key), to the least-loaded shard — plain hashing would be
/// hostage to key skew: the meteo workload has only 40 distinct keys, and an
/// unlucky `hash(key) % P` can leave a shard nearly empty. The assignment is
/// deterministic (ties broken by key value and shard id), though determinism
/// of the *output* never depends on it: the merge is ordered by tuple index.
///
/// Returns at most `min(degree, distinct keys)` shards — surplus shards
/// would be empty, and every shard costs a worker thread.
fn partition(r: &TpRelation, s: &TpRelation, bound: &BoundTheta, degree: usize) -> Vec<Shard> {
    debug_assert!(degree >= 1);
    // One pass per input: group member indices by join key (each key is
    // materialized once).
    let mut by_key: HashMap<Vec<Value>, Shard> = HashMap::new();
    for (ri, rt) in r.iter().enumerate() {
        by_key
            .entry(bound.left_key(rt))
            .or_default()
            .r_members
            .push(ri);
    }
    for (si, st) in s.iter().enumerate() {
        by_key
            .entry(bound.right_key(st))
            .or_default()
            .s_members
            .push(si);
    }

    // Heaviest key first; ties broken by the key value for determinism.
    let mut keyed: Vec<(Vec<Value>, Shard)> = by_key.into_iter().collect();
    keyed.sort_unstable_by(|a, b| {
        a.1.load()
            .cmp(&b.1.load())
            .reverse()
            .then_with(|| a.0.cmp(&b.0))
    });

    let shard_count = degree.min(keyed.len()).max(1);
    let mut shards: Vec<Shard> = (0..shard_count).map(|_| Shard::default()).collect();
    let mut loads = vec![0usize; shard_count];
    for (_, members) in keyed {
        let lightest = (0..shard_count)
            .min_by_key(|&w| loads[w])
            // The range is non-empty by construction (`.max(1)` above).
            // tpdb-lint: allow(no-panic-in-lib)
            .expect("shard_count >= 1");
        loads[lightest] += members.load();
        shards[lightest].r_members.extend(members.r_members);
        shards[lightest].s_members.extend(members.s_members);
    }
    // Keys arrived heaviest-first: restore ascending index order per shard
    // (cheap usize sorts), so each worker probes — and therefore emits — in
    // global index order.
    for shard in &mut shards {
        shard.r_members.sort_unstable();
        shard.s_members.sort_unstable();
    }
    shards
}

/// Runs `work` once per shard on `std::thread::scope` workers and returns
/// the results in shard order. A worker panic propagates to the caller.
fn run_shards<T, F>(shards: &[Shard], work: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Shard) -> T + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| scope.spawn(|| work(shard)))
            .collect();
        handles
            .into_iter()
            // Re-raising a worker panic on the caller is the documented
            // contract. tpdb-lint: allow(no-panic-in-lib)
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Output tuples tagged with the global index of the positive tuple that
/// produced them (the merge key).
type TaggedTuples = Vec<(usize, TpTuple)>;

/// Merges per-shard `(positive index, tuple)` streams back into the serial
/// emission order. Each shard's vector is already ascending in the index and
/// the index sets are disjoint across shards, so a stable sort on the index
/// reproduces the serial order exactly (within one index, all tuples come
/// from a single shard in their emission order).
fn merge_in_index_order(parts: Vec<TaggedTuples>, out: &mut TpRelation) {
    let mut all: Vec<(usize, TpTuple)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|(idx, _)| *idx);
    for (_, tuple) in all {
        out.push_unchecked(tuple);
    }
}

/// [`crate::tp_join`] executed with partitioned parallelism. Base-tuple
/// probabilities are derived from the two inputs; see
/// [`tp_join_parallel_with_engine_and_plan`] for the full-control variant.
///
/// `parallelism` is the requested worker count; `1` (or a nested-loop plan)
/// means serial execution. The result is byte-identical to the serial join.
///
/// ```
/// use tpdb_core::{tp_join, tp_join_parallel, ThetaCondition, TpJoinKind};
///
/// let (a, b) = tpdb_datagen::booking_example();
/// let theta = ThetaCondition::column_equals("Loc", "Loc");
/// let serial = tp_join(&a, &b, &theta, TpJoinKind::LeftOuter).unwrap();
/// let parallel = tp_join_parallel(&a, &b, &theta, TpJoinKind::LeftOuter, 4).unwrap();
/// assert_eq!(parallel, serial);
/// ```
pub fn tp_join_parallel(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    parallelism: usize,
) -> Result<TpRelation, StorageError> {
    tp_join_parallel_with_plan(r, s, theta, kind, None, parallelism)
}

/// [`tp_join_parallel`] with an explicitly chosen overlap-join plan (`None`
/// lets the engine pick: sweep for equi-joins, nested loop otherwise).
///
/// # Errors
///
/// Returns [`StorageError::PlanNotApplicable`] when a hash or sweep plan is
/// forced but θ is not a pure equi-join — the same contract as the serial
/// [`crate::tp_join_with_plan`].
pub fn tp_join_parallel_with_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    plan: Option<OverlapJoinPlan>,
    parallelism: usize,
) -> Result<TpRelation, StorageError> {
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);
    tp_join_parallel_with_engine_and_plan(r, s, theta, kind, plan, parallelism, &engine)
}

/// The partitioned parallel TP join with an explicit probability engine
/// (cloned into every worker) and an optional forced overlap-join plan.
///
/// Falls back to the serial pipeline when the effective degree is 1: the
/// requested `parallelism` is 1, or the (resolved) plan is a nested loop,
/// which cannot shard by key.
pub fn tp_join_parallel_with_engine_and_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    plan: Option<OverlapJoinPlan>,
    parallelism: usize,
    engine: &ProbabilityEngine,
) -> Result<TpRelation, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    let plan = plan.unwrap_or_else(|| auto_plan(&bound));
    let degree = parallel_degree(plan, parallelism);
    // Serial fallback for everything that cannot (or should not) shard: a
    // requested degree of 1, a non-shardable plan, or a keyed plan forced on
    // a non-equi θ — for the latter the serial path returns the same
    // `PlanNotApplicable` error the serial join contract promises.
    if degree <= 1 || !bound.is_equi_join() {
        let mut engine = engine.clone();
        return crate::join::tp_join_with_engine_and_plan(
            r,
            s,
            theta,
            kind,
            Some(plan),
            &mut engine,
        );
    }

    let schema = output_schema(r, s, kind);
    let name = format!("{}{}{}", r.name(), kind.symbol(), s.name());
    let mut out = TpRelation::new(&name, schema);

    let needs_right_side = matches!(kind, TpJoinKind::RightOuter | TpJoinKind::FullOuter);
    let flipped = theta.flipped();
    let flipped_bound = if needs_right_side {
        Some(flipped.bind(s.schema(), r.schema())?)
    } else {
        None
    };

    let shards = partition(r, s, &bound, degree);
    // Each worker runs the identical streaming pipeline the serial join
    // runs, restricted to its shard's key partitions, and tags every output
    // tuple with the global index of its positive tuple for the merge.
    let results: Vec<(TaggedTuples, TaggedTuples)> = run_shards(&shards, |shard| {
        let mut engine = engine.clone();

        // Windows of r with respect to s (all operators).
        let mut left = Vec::new();
        let wo = OverlapWindowStream::interned_subset(
            r,
            s,
            bound.clone(),
            plan,
            &shard.r_members,
            &shard.s_members,
            engine.interner_mut(),
        )
        // Plan applicability was validated before sharding.
        // tpdb-lint: allow(no-panic-in-lib)
        .expect("plan validated before sharding");
        match kind {
            TpJoinKind::Inner | TpJoinKind::RightOuter => {
                for w in wo {
                    let r_idx = w.r_idx;
                    if let Some(t) =
                        form_output_tuple_interned(&w, r, s, kind, Side::Left, &mut engine)
                    {
                        left.push((r_idx, t));
                    }
                }
            }
            TpJoinKind::Anti | TpJoinKind::LeftOuter | TpJoinKind::FullOuter => {
                let lins = wo.positive_lineages();
                let mut stream = LawanStream::new(LawauStream::with_lineages(wo, r, lins));
                while let Some(w) = stream.next_with(engine.interner_mut()) {
                    let r_idx = w.r_idx;
                    if let Some(t) =
                        form_output_tuple_interned(&w, r, s, kind, Side::Left, &mut engine)
                    {
                        left.push((r_idx, t));
                    }
                }
            }
        }

        // Windows of s with respect to r (right-hand null-extension);
        // overlapping windows are skipped as duplicates of side one.
        let mut right = Vec::new();
        if let Some(fb) = &flipped_bound {
            let wo = OverlapWindowStream::interned_subset(
                s,
                r,
                fb.clone(),
                plan,
                &shard.s_members,
                &shard.r_members,
                engine.interner_mut(),
            )
            // Plan applicability was validated before sharding.
            // tpdb-lint: allow(no-panic-in-lib)
            .expect("plan validated before sharding");
            let lins = wo.positive_lineages();
            let mut stream = LawanStream::new(LawauStream::with_lineages(wo, s, lins));
            while let Some(w) = stream.next_with(engine.interner_mut()) {
                if w.is_overlapping() {
                    continue;
                }
                let s_idx = w.r_idx;
                if let Some(t) =
                    form_output_tuple_interned(&w, s, r, kind, Side::Right, &mut engine)
                {
                    right.push((s_idx, t));
                }
            }
        }
        (left, right)
    });

    let (lefts, rights): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    merge_in_index_order(lefts, &mut out);
    merge_in_index_order(rights, &mut out);
    Ok(out)
}

/// Counts the `WUO` windows (overlap join → LAWAU) of an equi-join with
/// partitioned parallelism — the parallel counterpart of the Fig. 5
/// measurement kernel, consuming windows exactly as the join operator does.
/// Falls back to the serial stream when the resolved plan cannot shard or
/// `parallelism` is 1.
pub fn parallel_wuo_count(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    parallelism: usize,
) -> Result<usize, StorageError> {
    let bound = theta.bind(r.schema(), s.schema())?;
    let plan = auto_plan(&bound);
    let degree = parallel_degree(plan, parallelism);
    if degree <= 1 {
        let wo = OverlapWindowStream::with_plan(r, s, bound, plan)?;
        return Ok(LawauStream::new(wo, r).count());
    }
    let shards = partition(r, s, &bound, degree);
    let counts = run_shards(&shards, |shard| {
        let wo = OverlapWindowStream::with_subset(
            r,
            s,
            bound.clone(),
            plan,
            &shard.r_members,
            &shard.s_members,
        )
        // Plan applicability was validated before sharding.
        // tpdb-lint: allow(no-panic-in-lib)
        .expect("auto plan is applicable");
        LawauStream::new(wo, r).count()
    });
    Ok(counts.into_iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::booking_relations;
    use crate::theta::CompareOp;
    use crate::tp_join_with_plan;

    const KINDS: [TpJoinKind; 5] = [
        TpJoinKind::Inner,
        TpJoinKind::Anti,
        TpJoinKind::LeftOuter,
        TpJoinKind::RightOuter,
        TpJoinKind::FullOuter,
    ];

    fn theta() -> ThetaCondition {
        ThetaCondition::column_equals("Loc", "Loc")
    }

    #[test]
    fn parallel_equals_serial_for_every_kind_and_degree() {
        let (a, b, _) = booking_relations();
        for kind in KINDS {
            let serial = crate::tp_join(&a, &b, &theta(), kind).unwrap();
            for degree in [1, 2, 3, 8] {
                let parallel = tp_join_parallel(&a, &b, &theta(), kind, degree).unwrap();
                assert_eq!(parallel, serial, "kind = {kind:?}, degree = {degree}");
            }
        }
    }

    #[test]
    fn parallel_respects_forced_plans() {
        let (a, b, _) = booking_relations();
        for plan in [OverlapJoinPlan::Sweep, OverlapJoinPlan::Hash] {
            let serial =
                tp_join_with_plan(&a, &b, &theta(), TpJoinKind::FullOuter, Some(plan)).unwrap();
            let parallel =
                tp_join_parallel_with_plan(&a, &b, &theta(), TpJoinKind::FullOuter, Some(plan), 4)
                    .unwrap();
            assert_eq!(parallel, serial, "plan = {plan}");
        }
    }

    #[test]
    fn non_equi_theta_falls_back_to_serial() {
        // θ = true resolves to the nested-loop plan, which cannot shard:
        // the join must run (serially) instead of panicking.
        let (a, b, _) = booking_relations();
        let always = ThetaCondition::always();
        let serial = crate::tp_join(&a, &b, &always, TpJoinKind::LeftOuter).unwrap();
        let parallel = tp_join_parallel(&a, &b, &always, TpJoinKind::LeftOuter, 4).unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel_degree(OverlapJoinPlan::NestedLoop, 4), 1);
    }

    #[test]
    fn forced_keyed_plan_on_non_equi_theta_is_still_an_error() {
        let (a, b, _) = booking_relations();
        let non_equi = ThetaCondition::always().and_compare("Loc", CompareOp::Lt, "Loc");
        let err = tp_join_parallel_with_plan(
            &a,
            &b,
            &non_equi,
            TpJoinKind::Inner,
            Some(OverlapJoinPlan::Sweep),
            4,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::PlanNotApplicable { .. }));
    }

    #[test]
    fn degree_exceeding_key_count_trims_to_the_keys() {
        let (a, b, _) = booking_relations();
        // Only three distinct Loc values exist; the driver runs (at most)
        // three workers instead of spawning 13 idle ones.
        let bound = theta().bind(a.schema(), b.schema()).unwrap();
        assert_eq!(partition(&a, &b, &bound, 16).len(), 3);
        let serial = crate::tp_join(&a, &b, &theta(), TpJoinKind::FullOuter).unwrap();
        let parallel = tp_join_parallel(&a, &b, &theta(), TpJoinKind::FullOuter, 16).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn absurd_degrees_are_clamped_not_crashed() {
        let (a, b, _) = booking_relations();
        assert_eq!(
            parallel_degree(OverlapJoinPlan::Sweep, 500_000),
            MAX_PARALLELISM
        );
        // Executes with a bounded worker pool instead of asking the OS for
        // half a million threads.
        let serial = crate::tp_join(&a, &b, &theta(), TpJoinKind::LeftOuter).unwrap();
        let parallel = tp_join_parallel(&a, &b, &theta(), TpJoinKind::LeftOuter, 500_000).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_inputs() {
        let (a, b, _) = booking_relations();
        let empty_a = TpRelation::new("a", a.schema().clone());
        let empty_b = TpRelation::new("b", b.schema().clone());
        assert_eq!(
            tp_join_parallel(&empty_a, &b, &theta(), TpJoinKind::LeftOuter, 4)
                .unwrap()
                .len(),
            0
        );
        let left_only = tp_join_parallel(&a, &empty_b, &theta(), TpJoinKind::LeftOuter, 4).unwrap();
        assert_eq!(
            left_only,
            crate::tp_join(&a, &empty_b, &theta(), TpJoinKind::LeftOuter).unwrap()
        );
        assert_eq!(
            tp_join_parallel(&empty_a, &empty_b, &theta(), TpJoinKind::FullOuter, 4)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn parallel_wuo_count_matches_serial_stream() {
        let (a, b, _) = booking_relations();
        let serial = {
            let wo = OverlapWindowStream::new(&a, &b, &theta()).unwrap();
            LawauStream::new(wo, &a).count()
        };
        for degree in [1, 2, 4, 7] {
            assert_eq!(
                parallel_wuo_count(&a, &b, &theta(), degree).unwrap(),
                serial,
                "degree = {degree}"
            );
        }
        // Non-equi θ falls back to the serial nested-loop stream.
        let always = ThetaCondition::always();
        let serial_nl = {
            let wo = OverlapWindowStream::new(&a, &b, &always).unwrap();
            LawauStream::new(wo, &a).count()
        };
        assert_eq!(parallel_wuo_count(&a, &b, &always, 4).unwrap(), serial_nl);
    }

    #[test]
    fn partitioning_is_balanced_and_complete() {
        let (a, b, _) = booking_relations();
        let bound = theta().bind(a.schema(), b.schema()).unwrap();
        let shards = partition(&a, &b, &bound, 2);
        let r_total: usize = shards.iter().map(|p| p.r_members.len()).sum();
        let s_total: usize = shards.iter().map(|p| p.s_members.len()).sum();
        assert_eq!(r_total, a.len());
        assert_eq!(s_total, b.len());
        // members are ascending within each shard
        for shard in &shards {
            assert!(shard.r_members.windows(2).all(|w| w[0] < w[1]));
            assert!(shard.s_members.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
        assert_eq!(parallel_degree(OverlapJoinPlan::Sweep, 0), 1);
        assert_eq!(parallel_degree(OverlapJoinPlan::Sweep, 6), 6);
        assert_eq!(parallel_degree(OverlapJoinPlan::Hash, 3), 3);
    }
}
