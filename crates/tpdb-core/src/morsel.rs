//! The morsel scheduler: work-stealing decomposition of the window
//! pipeline's probe side (ROADMAP item 4).
//!
//! The parallel driver used to split both join inputs into one static
//! partition per worker (greedy heaviest-first over the key histogram).
//! That design loses twice on skew: a single hot key caps speedup at the
//! size of its partition, and every worker rebuilds its own build-side
//! index. The morsel scheduler replaces it:
//!
//! * [`MorselPlan`] splits the **probe** side into small morsels of
//!   [`MORSEL_MIN`]`..=`[`MORSEL_MAX`] probe indices. Morsels respect
//!   key-group boundaries where possible (so a sweep partition is scanned
//!   by as few workers as needed), but a group larger than a morsel is
//!   simply chopped — correctness never depends on a key staying whole,
//!   because every probe tuple's window group is computed independently
//!   against the *shared* build-side index
//!   ([`ProbeIndex`](crate::overlap::ProbeIndex) behind an `Arc`).
//! * [`Injector`] is the shared queue the workers steal from: a single
//!   atomic cursor over the fixed morsel list. `fetch_add` hands each
//!   morsel to exactly one worker; a worker that finishes early steals the
//!   next morsel instead of idling, so a 90%-hot-key distribution still
//!   keeps every core busy.
//! * [`scope_workers`] runs `P` scoped worker threads to completion and
//!   collects their results. It is the **only** place in `tpdb-core` that
//!   creates threads (`tpdb-lint` enforces this), which keeps the worker
//!   topology auditable: workers are born here, joined here, and cannot
//!   outlive the relations they borrow.
//!
//! Output stays byte-identical to serial execution because workers tag
//! every output tuple with its global probe index and the driver merges by
//! that index (see [`crate::parallel`]).

use crate::theta::BoundTheta;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use tpdb_storage::{TpRelation, Value};

/// Morsels smaller than this are packed together (when key groups allow):
/// below ~256 probes the per-morsel bookkeeping (stream construction, one
/// atomic increment) stops being negligible against the probe work.
pub(crate) const MORSEL_MIN: usize = 256;

/// No morsel exceeds this many probes: above ~1024 a single stolen morsel
/// is big enough to become the tail that the other workers wait on.
pub(crate) const MORSEL_MAX: usize = 1024;

/// The probe side of one parallel pass, cut into morsels.
///
/// `probes` holds the probe (`r`) indices grouped by join key — groups
/// ordered by their smallest member index, members in ascending index
/// order — and `morsels` are consecutive ranges of it. The grouping is
/// deterministic, so two runs (or a run and its byte-identity test) cut
/// identical morsels.
pub(crate) struct MorselPlan {
    probes: Vec<usize>,
    morsels: Vec<Range<usize>>,
}

impl MorselPlan {
    /// Cuts `r`'s probe indices into key-group-respecting morsels of
    /// [`MORSEL_MIN`]`..=`[`MORSEL_MAX`] entries under `bound`'s left key.
    /// Small groups sharing a morsel and oversized groups split across
    /// morsels are both fine: each probe's windows depend only on its own
    /// key partition of the shared build index.
    pub(crate) fn build(r: &TpRelation, bound: &BoundTheta) -> Self {
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, rt) in r.iter().enumerate() {
            groups.entry(bound.left_key(rt)).or_default().push(ri);
        }
        let mut ordered: Vec<Vec<usize>> = groups.into_values().collect();
        // Deterministic order: members are pushed in ascending `r` index,
        // so the first element is the group minimum. Groups are never
        // empty — an entry exists only after its first push.
        // tpdb-lint: allow(no-panic-in-lib)
        ordered.sort_unstable_by_key(|group| group[0]);

        let mut probes = Vec::with_capacity(r.len());
        let mut morsels = Vec::new();
        let mut start = 0;
        let mut cut = |probes: &mut Vec<usize>, start: &mut usize| {
            if probes.len() > *start {
                morsels.push(*start..probes.len());
                *start = probes.len();
            }
        };
        for group in ordered {
            if group.len() > MORSEL_MAX {
                // A hot key bigger than one morsel: close the open morsel
                // and chop the group into MORSEL_MAX-sized morsels, so the
                // 90%-key case spreads across all workers.
                cut(&mut probes, &mut start);
                for chunk in group.chunks(MORSEL_MAX) {
                    probes.extend_from_slice(chunk);
                    cut(&mut probes, &mut start);
                }
            } else {
                if probes.len() - start + group.len() > MORSEL_MAX {
                    cut(&mut probes, &mut start);
                }
                probes.extend_from_slice(&group);
                if probes.len() - start >= MORSEL_MIN {
                    cut(&mut probes, &mut start);
                }
            }
        }
        cut(&mut probes, &mut start);
        MorselPlan { probes, morsels }
    }

    /// Number of morsels (the [`Injector`]'s range).
    pub(crate) fn morsel_count(&self) -> usize {
        self.morsels.len()
    }

    /// The probe indices of morsel `m`.
    pub(crate) fn morsel(&self, m: usize) -> &[usize] {
        &self.probes[self.morsels[m].clone()]
    }
}

/// The shared injector the workers steal from: an atomic cursor over
/// `0..limit`. `fetch_add` gives away each morsel exactly once; there is no
/// per-worker deque to rebalance because ownership is only ever decided at
/// steal time.
pub(crate) struct Injector {
    cursor: AtomicUsize,
    limit: usize,
}

impl Injector {
    pub(crate) fn new(limit: usize) -> Self {
        Injector {
            cursor: AtomicUsize::new(0),
            limit,
        }
    }

    /// Claims the next unclaimed morsel, or `None` when the queue is
    /// drained. Relaxed ordering suffices: the morsel list is immutable and
    /// the claim itself is the only synchronization the index needs.
    pub(crate) fn steal(&self) -> Option<usize> {
        let m = self.cursor.fetch_add(1, Ordering::Relaxed);
        (m < self.limit).then_some(m)
    }
}

/// Runs `count` scoped workers to completion and returns their results in
/// worker-id order. The sanctioned thread creation point of `tpdb-core`:
/// scoped threads cannot outlive the borrowed relations, and every worker
/// is joined before the call returns. A worker panic is re-raised on the
/// caller's thread.
pub(crate) fn scope_workers<T, F>(count: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..count)
            .map(|wid| scope.spawn(move || work(wid)))
            .collect();
        handles
            .into_iter()
            // Worker panics are bugs; propagate them instead of returning a
            // partial result. tpdb-lint: allow(no-panic-in-lib)
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaCondition;
    use tpdb_lineage::{Lineage, VarId};
    use tpdb_storage::{DataType, Schema, TpTuple};
    use tpdb_temporal::Interval;

    /// A single-key relation with `sizes[k]` tuples of key `k`, interleaved
    /// round-robin so key groups are not contiguous in index order.
    fn keyed_relation(sizes: &[usize]) -> TpRelation {
        let mut rel = TpRelation::new("r", Schema::tp(&[("k", DataType::Int)]));
        let mut remaining: Vec<usize> = sizes.to_vec();
        let mut t = 0i64;
        loop {
            let mut pushed = false;
            for (k, left) in remaining.iter_mut().enumerate() {
                if *left > 0 {
                    *left -= 1;
                    pushed = true;
                    rel.push(TpTuple::new(
                        vec![Value::Int(k as i64)],
                        Lineage::var(VarId(t as u32)),
                        Interval::new(t, t + 1),
                        0.5,
                    ))
                    .unwrap();
                    t += 1;
                }
            }
            if !pushed {
                return rel;
            }
        }
    }

    fn plan_for(sizes: &[usize]) -> (MorselPlan, usize) {
        let r = keyed_relation(sizes);
        let theta = ThetaCondition::column_equals("k", "k");
        let bound = theta.bind(r.schema(), r.schema()).unwrap();
        (MorselPlan::build(&r, &bound), r.len())
    }

    #[test]
    fn morsels_cover_every_probe_exactly_once() {
        let (plan, len) = plan_for(&[700, 60, 3000, 1, 0, 129]);
        let mut seen: Vec<usize> = (0..plan.morsel_count())
            .flat_map(|m| plan.morsel(m).iter().copied())
            .collect();
        assert_eq!(seen.len(), len);
        seen.sort_unstable();
        let expected: Vec<usize> = (0..len).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn morsels_respect_the_size_bounds() {
        let (plan, _) = plan_for(&[700, 60, 3000, 1, 129, 500, 2]);
        assert!(plan.morsel_count() > 1);
        for m in 0..plan.morsel_count() {
            assert!(plan.morsel(m).len() <= MORSEL_MAX, "morsel {m} too large");
        }
        // All but the per-group remainders reach MORSEL_MIN; at minimum the
        // majority must (otherwise packing is broken).
        let small = (0..plan.morsel_count())
            .filter(|&m| plan.morsel(m).len() < MORSEL_MIN)
            .count();
        assert!(
            small * 2 <= plan.morsel_count(),
            "{small} of {} morsels under MORSEL_MIN",
            plan.morsel_count()
        );
    }

    #[test]
    fn a_hot_key_is_split_across_many_morsels() {
        // one key holds ~90% of the tuples — the distribution static
        // partitioning handled worst (its speedup capped at ~1.1x).
        let (plan, len) = plan_for(&[9_000, 200, 200, 200, 200, 200]);
        assert!(
            plan.morsel_count() >= 9_000 / MORSEL_MAX,
            "hot key must not stay one unit of work"
        );
        let total: usize = (0..plan.morsel_count()).map(|m| plan.morsel(m).len()).sum();
        assert_eq!(total, len);
    }

    #[test]
    fn small_groups_are_packed_together() {
        // 64 keys of 8 tuples each: packing should produce ~2 morsels, not 64.
        let (plan, _) = plan_for(&[8; 64]);
        assert!(plan.morsel_count() <= 2, "{} morsels", plan.morsel_count());
    }

    #[test]
    fn morselization_is_deterministic() {
        let sizes = [700usize, 60, 3000, 1, 129];
        let (a, _) = plan_for(&sizes);
        let (b, _) = plan_for(&sizes);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.morsels, b.morsels);
    }

    #[test]
    fn injector_hands_each_morsel_out_exactly_once() {
        let injector = Injector::new(97);
        let stolen = scope_workers(4, |_| {
            let mut mine = Vec::new();
            while let Some(m) = injector.steal() {
                mine.push(m);
            }
            mine
        });
        let mut all: Vec<usize> = stolen.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..97).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn empty_relation_produces_no_morsels() {
        let (plan, _) = plan_for(&[]);
        assert_eq!(plan.morsel_count(), 0);
    }
}
