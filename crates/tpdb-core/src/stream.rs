//! The TP join as a lazy tuple stream.
//!
//! [`TpJoinStream`] drives the full streaming window pipeline
//! (`OverlapWindowStream → LawauStream → LawanStream → output formation`)
//! one **output tuple** at a time, instead of collecting the join into a
//! [`TpRelation`]. It is the engine behind the query layer's result
//! cursors: the first output tuple is available after probing a single
//! positive tuple's window group — the full output is never materialized
//! unless the caller drains the stream.
//!
//! The input relations are held through any [`Borrow`]`<TpRelation>`, so
//! the stream works with plain references inside a one-shot join (this is
//! how [`crate::tp_join`] itself is implemented) and with
//! `Arc<TpRelation>` in long-lived cursors that must own their inputs.
//!
//! Like a conventional hash join, the stream builds its probe index (and,
//! for right and full outer joins, the index of the flipped second pass)
//! eagerly at construction; everything downstream of the build side is
//! lazy.
//!
//! ```
//! use tpdb_core::{ThetaCondition, TpJoinKind, TpJoinStream};
//!
//! let (a, b) = tpdb_datagen::booking_example();
//! let theta = ThetaCondition::column_equals("Loc", "Loc");
//!
//! let mut stream = TpJoinStream::new(&a, &b, &theta, TpJoinKind::LeftOuter).unwrap();
//! let first = stream.next().unwrap();
//! // Exactly one window was consumed to form the first answer tuple.
//! assert_eq!(stream.windows_consumed(), 1);
//! assert!((0.0..=1.0).contains(&first.probability()));
//!
//! // Draining the stream yields the full Fig. 1b result (7 tuples).
//! assert_eq!(1 + stream.count(), 7);
//! ```

use crate::join::{form_output_tuple_interned, output_schema, Side};
use crate::overlap::{auto_plan, OverlapJoinPlan, OverlapWindowStream};
use crate::pipeline::{LawanStream, LawauStream};
use crate::theta::ThetaCondition;
use crate::window::Window;
use crate::TpJoinKind;
use std::borrow::{Borrow, BorrowMut};
use tpdb_lineage::{LineageInterner, LineageRef, ProbabilityEngine};
use tpdb_storage::{Schema, StorageError, TpRelation, TpTuple};

/// How deep into the window pipeline a pass runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PipeDepth {
    /// Overlapping + whole-interval unmatched windows only (the bare
    /// overlap join: inner joins and the first pass of right outer joins
    /// need no left null-extension).
    Overlap,
    /// Overlap join → LAWAU (the second pass of the streaming union only
    /// needs the unmatched sub-intervals of the right side).
    Unmatched,
    /// The full stack: overlap join → LAWAU → LAWAN.
    Full,
}

/// The interned overlap join → LAWAU stack (the `Wu` depth of a [`Pipe`]).
type WuStream<P, N> = LawauStream<OverlapWindowStream<P, N, Vec<usize>, LineageRef>, P, LineageRef>;

/// One pass of the window pipeline, cut off at a [`PipeDepth`].
// One Pipe exists per stream (two for right/full outer joins and unions);
// the size difference between the variants is irrelevant at that
// cardinality.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Pipe<P, N>
where
    P: Borrow<TpRelation> + Clone,
    N: Borrow<TpRelation>,
{
    /// Overlapping + whole-interval unmatched windows only.
    Wo(OverlapWindowStream<P, N, Vec<usize>, LineageRef>),
    /// Overlap join → LAWAU.
    Wu(WuStream<P, N>),
    /// The full pipeline: overlap join → LAWAU → LAWAN.
    Wuon(LawanStream<WuStream<P, N>, LineageRef>),
}

impl<P, N> Pipe<P, N>
where
    P: Borrow<TpRelation> + Clone,
    N: Borrow<TpRelation>,
{
    /// Builds the pipe for windows of `pos` with respect to `neg`. The
    /// lineage columns of both inputs are interned into `interner` up
    /// front; everything downstream moves [`LineageRef`] ids only.
    pub(crate) fn build(
        pos: P,
        neg: N,
        theta: &ThetaCondition,
        plan: Option<OverlapJoinPlan>,
        depth: PipeDepth,
        interner: &mut LineageInterner,
    ) -> Result<Self, StorageError> {
        let bound = theta.bind(pos.borrow().schema(), neg.borrow().schema())?;
        let plan = plan.unwrap_or_else(|| auto_plan(&bound));
        let wo = OverlapWindowStream::interned(pos.clone(), neg, bound, plan, interner)?;
        Ok(match depth {
            PipeDepth::Overlap => Pipe::Wo(wo),
            PipeDepth::Unmatched => {
                let lins = wo.positive_lineages();
                Pipe::Wu(LawauStream::with_lineages(wo, pos, lins))
            }
            PipeDepth::Full => {
                let lins = wo.positive_lineages();
                Pipe::Wuon(LawanStream::new(LawauStream::with_lineages(wo, pos, lins)))
            }
        })
    }

    /// The next window of the pass; `interner` receives the `λs`
    /// disjunction nodes of negating windows (only the LAWAN stage builds
    /// new lineage nodes).
    pub(crate) fn next_with(
        &mut self,
        interner: &mut LineageInterner,
    ) -> Option<Window<LineageRef>> {
        match self {
            Pipe::Wo(inner) => inner.next(),
            Pipe::Wu(inner) => inner.next(),
            Pipe::Wuon(inner) => inner.next_with(interner),
        }
    }
}

/// A TP join with negation, executed lazily: an iterator producing the
/// output tuples of [`crate::tp_join`] one at a time, in the identical
/// order. Collecting the stream ([`TpJoinStream::collect_relation`]) gives
/// exactly the relation the one-shot join returns.
///
/// `R`/`S` hold the two input relations (`&TpRelation`, `Arc<TpRelation>`,
/// …); `E` holds the probability engine (`ProbabilityEngine` owned, or
/// `&mut ProbabilityEngine` borrowed from the caller).
///
/// Like a conventional hash join, the stream builds its probe index (and,
/// for right and full outer joins, the index of the flipped second pass)
/// eagerly at construction; everything downstream of the build side is
/// lazy — [`windows_consumed`](TpJoinStream::windows_consumed) counts how
/// much of the window pipeline an iteration has actually pulled.
///
/// ```
/// use tpdb_core::{ThetaCondition, TpJoinKind, TpJoinStream};
///
/// let (a, b) = tpdb_datagen::booking_example();
/// let theta = ThetaCondition::column_equals("Loc", "Loc");
///
/// let mut stream = TpJoinStream::new(&a, &b, &theta, TpJoinKind::LeftOuter).unwrap();
/// let first = stream.next().unwrap();
/// // Exactly one window was consumed to form the first answer tuple.
/// assert_eq!(stream.windows_consumed(), 1);
/// assert!((0.0..=1.0).contains(&first.probability()));
///
/// // Draining the stream yields the full Fig. 1b result (7 tuples).
/// assert_eq!(1 + stream.count(), 7);
/// ```
pub struct TpJoinStream<R, S, E = ProbabilityEngine>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
    E: BorrowMut<ProbabilityEngine>,
{
    r: R,
    s: S,
    kind: TpJoinKind,
    engine: E,
    schema: Schema,
    name: String,
    /// Windows of `r` with respect to `s` (all operators); `None` once
    /// exhausted.
    left: Option<Pipe<R, S>>,
    /// Windows of `s` with respect to `r` (right/full outer joins only);
    /// overlapping windows of this pass are skipped as duplicates.
    right: Option<Pipe<S, R>>,
    windows_consumed: usize,
    produced: usize,
}

impl<R, S> TpJoinStream<R, S, ProbabilityEngine>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
{
    /// Creates the stream with an owned probability engine preloaded with
    /// the base-tuple probabilities of the two inputs, and the
    /// automatically chosen overlap-join plan.
    pub fn new(r: R, s: S, theta: &ThetaCondition, kind: TpJoinKind) -> Result<Self, StorageError> {
        Self::with_plan(r, s, theta, kind, None)
    }

    /// [`TpJoinStream::new`] with an explicitly chosen overlap-join plan
    /// (`None` lets the engine pick: sweep for equi-joins, nested loop
    /// otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::PlanNotApplicable`] when a hash or sweep
    /// plan is forced but θ is not a pure equi-join.
    pub fn with_plan(
        r: R,
        s: S,
        theta: &ThetaCondition,
        kind: TpJoinKind,
        plan: Option<OverlapJoinPlan>,
    ) -> Result<Self, StorageError> {
        let mut engine = ProbabilityEngine::new();
        r.borrow().register_probabilities(&mut engine);
        s.borrow().register_probabilities(&mut engine);
        Self::with_engine_and_plan(r, s, theta, kind, plan, engine)
    }
}

impl<R, S, E> TpJoinStream<R, S, E>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
    E: BorrowMut<ProbabilityEngine>,
{
    /// Creates the stream with an explicit probability engine (owned or
    /// `&mut`-borrowed) and an optional forced overlap-join plan. Use this
    /// variant when the inputs are derived relations whose compound
    /// lineages reference base tuples not present in `r`/`s`.
    pub fn with_engine_and_plan(
        r: R,
        s: S,
        theta: &ThetaCondition,
        kind: TpJoinKind,
        plan: Option<OverlapJoinPlan>,
        mut engine: E,
    ) -> Result<Self, StorageError> {
        let schema = output_schema(r.borrow(), s.borrow(), kind);
        let name = format!(
            "{}{}{}",
            r.borrow().name(),
            kind.symbol(),
            s.borrow().name()
        );
        // The operators with left null-extension pipe the overlap join
        // through the LAWAU and LAWAN adaptors; inner and right outer joins
        // only need the overlapping windows of this pass.
        let left_depth = if matches!(kind, TpJoinKind::Inner | TpJoinKind::RightOuter) {
            PipeDepth::Overlap
        } else {
            PipeDepth::Full
        };
        let left = Pipe::build(
            r.clone(),
            s.clone(),
            theta,
            plan,
            left_depth,
            engine.borrow_mut().interner_mut(),
        )?;
        // Right-hand null-extension for right and full outer joins: the
        // same pipeline with the roles of r and s flipped.
        let right = if matches!(kind, TpJoinKind::RightOuter | TpJoinKind::FullOuter) {
            Some(Pipe::build(
                s.clone(),
                r.clone(),
                &theta.flipped(),
                plan,
                PipeDepth::Full,
                engine.borrow_mut().interner_mut(),
            )?)
        } else {
            None
        };
        Ok(Self {
            r,
            s,
            kind,
            engine,
            schema,
            name,
            left: Some(left),
            right,
            windows_consumed: 0,
            produced: 0,
        })
    }

    /// The fact schema of the output tuples.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The name the collected result relation carries (`r⟕s`, `r▷s`, …).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many windows have left the pipeline so far — the laziness probe:
    /// after pulling the first output tuple of a left outer join this is
    /// `1`, not the total window count of the join.
    #[must_use]
    pub fn windows_consumed(&self) -> usize {
        self.windows_consumed
    }

    /// How many output tuples the stream has produced so far.
    #[must_use]
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// Drains the remaining stream into a materialized relation — the exact
    /// relation [`crate::tp_join`] returns when called on fresh inputs.
    #[must_use]
    pub fn collect_relation(self) -> TpRelation {
        let name = self.name.clone();
        let mut out = TpRelation::new(&name, self.schema.clone());
        for t in self {
            out.push_unchecked(t);
        }
        out
    }
}

impl<R, S, E> Iterator for TpJoinStream<R, S, E>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
    E: BorrowMut<ProbabilityEngine>,
{
    type Item = TpTuple;

    fn next(&mut self) -> Option<TpTuple> {
        while let Some(pipe) = &mut self.left {
            match pipe.next_with(self.engine.borrow_mut().interner_mut()) {
                Some(w) => {
                    self.windows_consumed += 1;
                    if let Some(t) = form_output_tuple_interned(
                        &w,
                        self.r.borrow(),
                        self.s.borrow(),
                        self.kind,
                        Side::Left,
                        self.engine.borrow_mut(),
                    ) {
                        self.produced += 1;
                        return Some(t);
                    }
                }
                None => self.left = None,
            }
        }
        while let Some(pipe) = &mut self.right {
            match pipe.next_with(self.engine.borrow_mut().interner_mut()) {
                Some(w) => {
                    self.windows_consumed += 1;
                    // WO(r;s,θ) = WO(s;r,θ) was already produced by the
                    // first pass.
                    if w.is_overlapping() {
                        continue;
                    }
                    if let Some(t) = form_output_tuple_interned(
                        &w,
                        self.s.borrow(),
                        self.r.borrow(),
                        self.kind,
                        Side::Right,
                        self.engine.borrow_mut(),
                    ) {
                        self.produced += 1;
                        return Some(t);
                    }
                }
                None => self.right = None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::booking_relations;
    use std::sync::Arc;

    const KINDS: [TpJoinKind; 5] = [
        TpJoinKind::Inner,
        TpJoinKind::Anti,
        TpJoinKind::LeftOuter,
        TpJoinKind::RightOuter,
        TpJoinKind::FullOuter,
    ];

    fn theta() -> ThetaCondition {
        ThetaCondition::column_equals("Loc", "Loc")
    }

    #[test]
    fn stream_collects_to_the_one_shot_join_for_every_kind() {
        let (a, b, _) = booking_relations();
        for kind in KINDS {
            let one_shot = crate::tp_join(&a, &b, &theta(), kind).unwrap();
            let streamed = TpJoinStream::new(&a, &b, &theta(), kind)
                .unwrap()
                .collect_relation();
            assert_eq!(streamed, one_shot, "kind = {kind:?}");
        }
    }

    #[test]
    fn stream_works_with_arc_inputs() {
        let (a, b, _) = booking_relations();
        let one_shot = crate::tp_join(&a, &b, &theta(), TpJoinKind::FullOuter).unwrap();
        let (a, b) = (Arc::new(a), Arc::new(b));
        let streamed = TpJoinStream::new(a, b, &theta(), TpJoinKind::FullOuter)
            .unwrap()
            .collect_relation();
        assert_eq!(streamed, one_shot);
    }

    #[test]
    fn first_tuple_is_produced_lazily() {
        // A large meteo workload: the full left outer join has thousands of
        // output tuples, but forming the first one must consume exactly one
        // window (every window of a left outer join participates).
        let (r, s) = tpdb_datagen::meteo_like(2_000, 7);
        let theta = ThetaCondition::column_equals("Metric", "Metric");
        let mut stream = TpJoinStream::new(&r, &s, &theta, TpJoinKind::LeftOuter).unwrap();
        let first = stream.next();
        assert!(first.is_some());
        assert_eq!(stream.windows_consumed(), 1);
        assert_eq!(stream.produced(), 1);
        // Draining consumes the rest: orders of magnitude more windows.
        let total = 1 + stream.count();
        assert!(total > 1_000, "expected a large output, got {total}");
    }

    #[test]
    fn forced_plan_errors_match_the_one_shot_contract() {
        let (a, b, _) = booking_relations();
        let non_equi = ThetaCondition::always();
        match TpJoinStream::with_plan(
            &a,
            &b,
            &non_equi,
            TpJoinKind::Inner,
            Some(OverlapJoinPlan::Sweep),
        ) {
            Err(err) => assert!(matches!(err, StorageError::PlanNotApplicable { .. })),
            Ok(_) => panic!("forced sweep on non-equi θ must fail"),
        }
    }

    #[test]
    fn name_and_schema_are_available_before_iteration() {
        let (a, b, _) = booking_relations();
        let stream = TpJoinStream::new(&a, &b, &theta(), TpJoinKind::LeftOuter).unwrap();
        assert_eq!(stream.name(), "a⟕b");
        assert_eq!(stream.schema().arity(), 4);
    }
}
