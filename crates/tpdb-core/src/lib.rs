//! # tpdb-core
//!
//! Generalized lineage-aware temporal windows and temporal-probabilistic
//! (TP) outer and anti joins — the primary contribution of *"Outer and Anti
//! Joins in Temporal-Probabilistic Databases"* (Papaioannou, Theobald,
//! Böhlen — ICDE 2019).
//!
//! The result of a TP join with negation includes, at each time point, the
//! probability with which a tuple of the positive relation `r` matches none
//! of the tuples of the negative relation `s` for a join condition θ. The
//! crate computes these joins in three pipelined steps:
//!
//! 1. [`overlapping_windows`] — a conventional outer join with the overlap
//!    predicate `θo ∧ θ`, producing the overlapping windows `WO(r;s,θ)` and
//!    the whole-interval unmatched windows,
//! 2. [`lawau`] — a sweep over each `r` tuple's windows filling the
//!    uncovered gaps with the remaining unmatched windows `WU(r;s,θ)`,
//! 3. [`lawan`] — a sweep with a priority queue of ending points producing
//!    the negating windows `WN(r;s,θ)`.
//!
//! Output tuples are then formed per window with the appropriate
//! lineage-concatenation function (`and`, `andNot`, pass-through) and their
//! probabilities are computed from the combined lineage.
//!
//! The [`tp_join`] family executes all of this as a **streaming pipeline**:
//! [`OverlapWindowStream`] (an endpoint-sorted sweep join by default — see
//! [`OverlapJoinPlan`]) yields windows one `r`-tuple group at a time,
//! already grouped and start-ordered; [`LawauStream`] and [`LawanStream`]
//! extend each group in place; and output tuples are formed as the windows
//! leave the pipeline. The materializing entry points ([`lawau`],
//! [`lawan`], [`overlapping_windows`]) remain available for callers that
//! need whole window sets.
//!
//! On multi-core hosts the pipeline also executes with **morsel-driven
//! work stealing**: [`tp_join_parallel`] (and [`tp_set_op_parallel`] for
//! the set operations) builds the probe index once, cuts the probe side
//! into small key-group-respecting morsels, and lets scoped worker threads
//! steal morsels from a shared injector until the queue drains; outputs
//! are tagged with the global probe index and merged back into the serial
//! emission order, so the result is byte-identical to serial execution
//! (see the [`parallel`](crate::tp_join_parallel) module functions).
//!
//! ## Example — the query of Fig. 1
//!
//! ```
//! use tpdb_core::{tp_left_outer_join, ThetaCondition};
//! use tpdb_lineage::Lineage;
//! use tpdb_storage::{Catalog, DataType, Schema, Value};
//! use tpdb_temporal::Interval;
//!
//! let mut catalog = Catalog::new();
//! let mut a = catalog
//!     .create_relation("a", Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]))
//!     .unwrap();
//! a.push(vec![Value::str("Ann"), Value::str("ZAK")], Interval::new(2, 8), 0.7);
//! a.push(vec![Value::str("Jim"), Value::str("WEN")], Interval::new(7, 10), 0.8);
//! let a = a.finish();
//!
//! let mut b = catalog
//!     .create_relation("b", Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]))
//!     .unwrap();
//! b.push(vec![Value::str("hotel3"), Value::str("SOR")], Interval::new(1, 4), 0.9);
//! b.push(vec![Value::str("hotel2"), Value::str("ZAK")], Interval::new(5, 8), 0.6);
//! b.push(vec![Value::str("hotel1"), Value::str("ZAK")], Interval::new(4, 6), 0.7);
//! let b = b.finish();
//!
//! let q = tp_left_outer_join(&a, &b, &ThetaCondition::column_equals("Loc", "Loc")).unwrap();
//! assert_eq!(q.len(), 7); // the seven answer tuples of Fig. 1b
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod join;
mod lawan;
mod lawau;
mod morsel;
mod overlap;
mod parallel;
mod pipeline;
mod setops;
mod stream;
mod theta;
mod window;

#[cfg(test)]
pub(crate) mod testutil;

pub use join::{
    assemble_join_result, tp_anti_join, tp_full_outer_join, tp_inner_join, tp_join,
    tp_join_with_engine, tp_join_with_engine_and_plan, tp_join_with_plan, tp_left_outer_join,
    tp_right_outer_join, TpJoinKind,
};
pub use lawan::lawan;
pub use lawau::lawau;
pub use overlap::{
    auto_plan, overlapping_windows, overlapping_windows_with_plan, OverlapJoinPlan,
    OverlapWindowStream,
};
pub use parallel::{
    default_parallelism, parallel_degree, parallel_wuo_count, tp_join_parallel,
    tp_join_parallel_with_engine_and_plan, tp_join_parallel_with_plan, tp_set_op_parallel,
    tp_set_op_parallel_with_engine_and_plan, MAX_PARALLELISM,
};
pub use pipeline::{LawanStream, LawauStream, WindowStream};
pub use setops::{
    all_columns_equal, check_union_compatible, tp_difference, tp_intersection, tp_union,
    tp_union_materialized, TpSetOpKind, TpSetOpStream,
};
pub use stream::TpJoinStream;
pub use theta::{BoundTheta, CompareOp, ThetaCondition};
pub use window::{Window, WindowKind};
