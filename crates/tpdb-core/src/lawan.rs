//! LAWAN — the Lineage-Aware Window Algorithm for Negating windows
//! (Section III-C).
//!
//! LAWAN extends the result `WUO` of [`lawau`](crate::lawau::lawau) with the
//! negating windows. The windows of `WUO` are ordered by the fact of `r`
//! (here: by the originating `r` tuple) and by their starting point; the
//! algorithm sweeps over `WUO` and produces negating windows whenever a
//! group of overlapping windows with the same fact `Fr` is encountered. A
//! new negating window starts at every point where a θ-matching `s` tuple
//! starts or stops being valid; its `λs` is the disjunction of the lineages
//! of the `s` tuples valid over the window.
//!
//! The three cases of Fig. 4 of the paper determine the ending point of the
//! sweeping window: (1) the current elementary interval is covered by a
//! single overlapping window which is simply copied, (2) the next boundary
//! is the ending point of an active `s` tuple (taken from the priority
//! queue of ending points), (3) the next boundary is the starting point of
//! the next group. The implementation keeps the ending points of the active
//! overlapping windows in a priority queue ([`EventQueue`]) exactly as the
//! paper describes.
//!
//! The disjunction `λs` of the active lineages is maintained
//! **incrementally** ([`IncrementalDisjunction`]): a window starting or
//! ending at a boundary updates the flattened, reference-counted operand
//! list in time proportional to its own lineage, and emitting a negating
//! window only clones the live operands — the full active set is never
//! re-flattened or re-deduplicated at a boundary.

use crate::window::{Window, WindowSink};
use tpdb_lineage::{
    IncrementalDisjunction, InternedDisjunction, Lineage, LineageInterner, LineageRef,
};
use tpdb_temporal::{EventQueue, Interval, TimePoint};

/// Runs LAWAN over the output `WUO` of [`lawau`](crate::lawau::lawau).
///
/// `wuo` must be grouped by `r_idx` with windows sorted by start within each
/// group. The result `WUON` contains every input window plus the negating
/// windows, grouped by `r_idx`.
#[must_use]
pub fn lawan(wuo: &[Window]) -> Vec<Window> {
    let mut out: Vec<Window> = Vec::with_capacity(wuo.len() * 2);
    let mut idx = 0;
    while idx < wuo.len() {
        let r_idx = wuo[idx].r_idx;
        let group_start = idx;
        while idx < wuo.len() && wuo[idx].r_idx == r_idx {
            idx += 1;
        }
        sweep_group(&wuo[group_start..idx], &mut out);
    }
    out
}

/// Sweeps one group (all `WUO` windows of a single `r` tuple): copies the
/// unmatched and overlapping windows to the output and inserts the negating
/// windows derived from the overlapping ones.
pub(crate) fn sweep_group(group: &[Window], out: &mut impl WindowSink<Lineage>) {
    // Copy every existing window through (Case 1 alternates these copies
    // with the creation of negating windows; emitting them up front keeps
    // the output grouped by r tuple, which is all downstream consumers
    // need).
    for w in group {
        out.put(w.clone());
    }

    let overlapping: Vec<&Window> = group.iter().filter(|w| w.is_overlapping()).collect();
    let Some(first) = overlapping.first() else {
        return;
    };
    let r_idx = first.r_idx;
    // Legacy tree-lineage path (the interned sweep below copies ids): λr is
    // cloned once per group. tpdb-lint: allow(no-lineage-clone-in-streams)
    let lambda_r = first.lambda_r.clone();

    // Sweep the overlapping windows of the group in start order, keeping the
    // ending points of the active windows in a priority queue and their
    // lineage disjunction in an incrementally maintained operand list.
    let mut queue = EventQueue::new();
    let mut active = IncrementalDisjunction::new();
    let mut i = 0usize;
    let mut wind_ts: Option<TimePoint> = None;

    loop {
        // Determine the next boundary: the smaller of the next start point
        // (Case 3: a new window group/start follows) and the next ending
        // point in the priority queue (Case 2).
        let next_start = overlapping.get(i).map(|w| w.interval.start());
        let next_end = queue.peek().map(|(t, _)| t);
        let boundary = match (next_start, next_end) {
            (Some(s), Some(e)) => s.min(e),
            (Some(s), None) => s,
            (None, Some(e)) => e,
            (None, None) => break,
        };

        // Close the sweeping window [wind_ts, boundary) if any s tuple was
        // active over it.
        if let Some(ts) = wind_ts {
            if !active.is_empty() && ts < boundary {
                out.put(Window::negating(
                    Interval::new(ts, boundary),
                    r_idx,
                    lambda_r.clone(), // tpdb-lint: allow(no-lineage-clone-in-streams)
                    active.disjunction(),
                ));
            }
        }

        // Apply all events at `boundary`: expire ended windows first (their
        // intervals are half-open), then activate windows starting here.
        for item in queue.pop_expired(boundary) {
            active.remove(
                overlapping[item]
                    .lambda_s
                    .as_ref()
                    // Window-kind invariant. tpdb-lint: allow(no-panic-in-lib)
                    .expect("overlapping windows always carry λs"),
            );
        }
        while let Some(w) = overlapping.get(i) {
            if w.interval.start() != boundary {
                break;
            }
            active.insert(
                w.lambda_s
                    .as_ref()
                    // Window-kind invariant. tpdb-lint: allow(no-panic-in-lib)
                    .expect("overlapping windows always carry λs"),
            );
            queue.push(w.interval.end(), i);
            i += 1;
        }
        wind_ts = Some(boundary);
    }
}

/// The interned counterpart of [`sweep_group`]: the identical sweep over
/// [`LineageRef`] windows, maintaining the active disjunction as an
/// [`InternedDisjunction`] (membership updates hash a single `u32`) and
/// emitting each negating window's `λs` through the interner. Operand order
/// and slot discipline match the legacy sweep exactly, so the converted
/// trees — and therefore the output tuples — are byte-identical.
pub(crate) fn sweep_group_interned(
    group: &[Window<LineageRef>],
    interner: &mut LineageInterner,
    out: &mut impl WindowSink<LineageRef>,
) {
    for w in group {
        out.put(w.clone());
    }

    let overlapping: Vec<&Window<LineageRef>> =
        group.iter().filter(|w| w.is_overlapping()).collect();
    let Some(first) = overlapping.first() else {
        return;
    };
    let r_idx = first.r_idx;
    let lambda_r = first.lambda_r;

    let mut queue = EventQueue::new();
    let mut active = InternedDisjunction::new();
    let mut i = 0usize;
    let mut wind_ts: Option<TimePoint> = None;

    loop {
        let next_start = overlapping.get(i).map(|w| w.interval.start());
        let next_end = queue.peek().map(|(t, _)| t);
        let boundary = match (next_start, next_end) {
            (Some(s), Some(e)) => s.min(e),
            (Some(s), None) => s,
            (None, Some(e)) => e,
            (None, None) => break,
        };

        if let Some(ts) = wind_ts {
            if !active.is_empty() && ts < boundary {
                let lambda_s = active.disjunction(interner);
                out.put(Window::negating(
                    Interval::new(ts, boundary),
                    r_idx,
                    lambda_r,
                    lambda_s,
                ));
            }
        }

        for item in queue.pop_expired(boundary) {
            active.remove(
                overlapping[item]
                    .lambda_s
                    // Window-kind invariant. tpdb-lint: allow(no-panic-in-lib)
                    .expect("overlapping windows always carry λs"),
                interner,
            );
        }
        while let Some(w) = overlapping.get(i) {
            if w.interval.start() != boundary {
                break;
            }
            active.insert(
                // Window-kind invariant. tpdb-lint: allow(no-panic-in-lib)
                w.lambda_s.expect("overlapping windows always carry λs"),
                interner,
            );
            queue.push(w.interval.end(), i);
            i += 1;
        }
        wind_ts = Some(boundary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lawau::lawau;
    use crate::overlap::overlapping_windows;
    use crate::testutil::booking_relations;
    use crate::theta::ThetaCondition;
    use crate::window::WindowKind;
    use tpdb_lineage::{Lineage, SymbolTable};
    use tpdb_storage::{DataType, Schema, TpRelation, TpTuple, Value};

    fn run_booking() -> (Vec<Window>, SymbolTable) {
        let (a, b, syms) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let wo = overlapping_windows(&a, &b, &theta).unwrap();
        let wuo = lawau(&wo, &a);
        (lawan(&wuo), syms)
    }

    #[test]
    fn paper_example_negating_windows() {
        let (wuon, syms) = run_booking();
        // Fig. 2: WN = { w5 = (a1, [4,5), b3), w6 = (a1, [5,6), b2 ∨ b3),
        //                w7 = (a1, [6,8), b2) }
        let negating: Vec<&Window> = wuon.iter().filter(|w| w.is_negating()).collect();
        assert_eq!(negating.len(), 3);

        assert_eq!(negating[0].interval, Interval::new(4, 5));
        assert_eq!(
            negating[0].lambda_s.as_ref().unwrap().display_with(&syms),
            "b3"
        );

        assert_eq!(negating[1].interval, Interval::new(5, 6));
        let l = negating[1].lambda_s.as_ref().unwrap().display_with(&syms);
        assert!(l == "b3 ∨ b2" || l == "b2 ∨ b3", "got {l}");

        assert_eq!(negating[2].interval, Interval::new(6, 8));
        assert_eq!(
            negating[2].lambda_s.as_ref().unwrap().display_with(&syms),
            "b2"
        );

        // all windows of WUO are preserved
        assert_eq!(wuon.iter().filter(|w| w.is_overlapping()).count(), 2);
        assert_eq!(wuon.iter().filter(|w| w.is_unmatched()).count(), 2);
        assert_eq!(wuon.len(), 7);
    }

    #[test]
    fn negating_windows_only_for_groups_with_overlaps() {
        let (wuon, _) = run_booking();
        // Jim (r_idx = 1) has no overlapping window, hence no negating ones.
        assert!(wuon
            .iter()
            .filter(|w| w.r_idx == 1)
            .all(|w| w.is_unmatched()));
    }

    /// One positive tuple over [0, 20), several negative tuples; returns the
    /// negating windows (interval, number of disjuncts in λs).
    fn negating_for(negative_intervals: &[(i64, i64)]) -> Vec<(Interval, usize)> {
        let mut syms = SymbolTable::new();
        let mut r = TpRelation::new("r", Schema::tp(&[("k", DataType::Int)]));
        r.push(TpTuple::new(
            vec![Value::Int(1)],
            Lineage::var(syms.intern("r1")),
            Interval::new(0, 20),
            0.5,
        ))
        .unwrap();
        let mut s = TpRelation::new("s", Schema::tp(&[("k", DataType::Int)]));
        for (i, (a, b)) in negative_intervals.iter().enumerate() {
            s.push(TpTuple::new(
                vec![Value::Int(1)],
                Lineage::var(syms.intern(&format!("s{i}"))),
                Interval::new(*a, *b),
                0.5,
            ))
            .unwrap();
        }
        let theta = ThetaCondition::column_equals("k", "k");
        let wo = overlapping_windows(&r, &s, &theta).unwrap();
        let wuon = lawan(&lawau(&wo, &r));
        wuon.into_iter()
            .filter(|w| w.is_negating())
            .map(|w| {
                let n = match w.lambda_s.as_ref().unwrap().node() {
                    tpdb_lineage::LineageNode::Or(cs) => cs.len(),
                    tpdb_lineage::LineageNode::Var(_) => 1,
                    other => panic!("unexpected λs shape: {other:?}"),
                };
                (w.interval, n)
            })
            .collect()
    }

    #[test]
    fn case2_boundaries_at_ending_points() {
        // two nested negative tuples: [2,10) and [4,6)
        // elementary negating windows: [2,4){1}, [4,6){2}, [6,10){1}
        assert_eq!(
            negating_for(&[(2, 10), (4, 6)]),
            vec![
                (Interval::new(2, 4), 1),
                (Interval::new(4, 6), 2),
                (Interval::new(6, 10), 1)
            ]
        );
    }

    #[test]
    fn case3_boundaries_at_starting_points_of_next_group() {
        // two disjoint negative tuples produce two separate negating windows
        assert_eq!(
            negating_for(&[(1, 3), (7, 9)]),
            vec![(Interval::new(1, 3), 1), (Interval::new(7, 9), 1)]
        );
    }

    #[test]
    fn meeting_negative_tuples_produce_adjacent_windows() {
        assert_eq!(
            negating_for(&[(1, 5), (5, 9)]),
            vec![(Interval::new(1, 5), 1), (Interval::new(5, 9), 1)]
        );
    }

    #[test]
    fn identical_negative_intervals_are_disjoined() {
        assert_eq!(
            negating_for(&[(3, 7), (3, 7)]),
            vec![(Interval::new(3, 7), 2)]
        );
    }

    #[test]
    fn staircase_of_overlapping_negative_tuples() {
        assert_eq!(
            negating_for(&[(0, 6), (4, 12), (10, 20)]),
            vec![
                (Interval::new(0, 4), 1),
                (Interval::new(4, 6), 2),
                (Interval::new(6, 10), 1),
                (Interval::new(10, 12), 2),
                (Interval::new(12, 20), 1),
            ]
        );
    }

    #[test]
    fn negating_windows_cover_exactly_the_overlapped_part() {
        let (wuon, _) = run_booking();
        // For the Ann tuple (valid [2,8)): negating windows must cover
        // exactly the time points covered by overlapping windows.
        for t in 2..8 {
            let in_overlap = wuon
                .iter()
                .any(|w| w.r_idx == 0 && w.is_overlapping() && w.interval.contains_point(t));
            let in_negating = wuon
                .iter()
                .any(|w| w.r_idx == 0 && w.is_negating() && w.interval.contains_point(t));
            assert_eq!(in_overlap, in_negating, "t = {t}");
        }
    }

    #[test]
    fn negating_windows_do_not_overlap_each_other() {
        let (wuon, _) = run_booking();
        let negs: Vec<&Window> = wuon.iter().filter(|w| w.is_negating()).collect();
        for (i, w1) in negs.iter().enumerate() {
            for w2 in negs.iter().skip(i + 1) {
                if w1.r_idx == w2.r_idx {
                    assert!(!w1.interval.overlaps(&w2.interval));
                }
            }
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(lawan(&[]).is_empty());
    }

    #[test]
    fn kinds_partition_the_output() {
        let (wuon, _) = run_booking();
        for w in &wuon {
            match w.kind {
                WindowKind::Overlapping => {
                    assert!(w.s_idx.is_some());
                    assert!(w.lambda_s.is_some());
                }
                WindowKind::Unmatched => {
                    assert!(w.s_idx.is_none());
                    assert!(w.lambda_s.is_none());
                }
                WindowKind::Negating => {
                    assert!(w.s_idx.is_none());
                    assert!(w.lambda_s.is_some());
                }
            }
        }
    }
}
