//! Generalized lineage-aware temporal windows (Definition 1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;
use tpdb_lineage::Lineage;
use tpdb_storage::TpRelation;
use tpdb_temporal::Interval;

/// The three disjoint classes of generalized lineage-aware temporal windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowKind {
    /// `WO(r; s, θ)` — a maximal interval over which a tuple of `r` overlaps
    /// a tuple of `s` and θ is satisfied.
    Overlapping,
    /// `WU(r; s, θ)` — a maximal (sub-)interval of a tuple of `r` during
    /// which no tuple of `s` is valid or satisfies θ.
    Unmatched,
    /// `WN(r; s, θ)` — a maximal sub-interval of a tuple of `r` during which
    /// the set of valid, θ-matching tuples of `s` is non-empty and constant.
    Negating,
}

impl fmt::Display for WindowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WindowKind::Overlapping => "WO",
            WindowKind::Unmatched => "WU",
            WindowKind::Negating => "WN",
        };
        write!(f, "{s}")
    }
}

/// A generalized lineage-aware temporal window with schema
/// `(Fr, Fs, T, λr, λs)`.
///
/// The facts `Fr`/`Fs` are not copied into the window: `r_idx` (and, for
/// overlapping windows, `s_idx`) reference the originating tuples of the
/// input relations. Keeping facts by reference — and keeping `λr` and `λs`
/// decoupled until output formation — is exactly what lets the window
/// algorithms avoid the tuple replication of alignment-based approaches.
///
/// The window is generic over the lineage representation `L`: the default
/// [`Lineage`] tree is the serde/test conversion boundary, while the
/// executing pipelines pass hash-consed
/// [`LineageRef`](tpdb_lineage::LineageRef) ids (`Copy`, `O(1)` equality)
/// so no formula tree is cloned at window boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window<L = Lineage> {
    /// Which of the three window classes this window belongs to.
    pub kind: WindowKind,
    /// The window interval `T`.
    pub interval: Interval,
    /// Index of the originating tuple of the positive relation `r`
    /// (determines `Fr` and the tuple's full validity interval).
    pub r_idx: usize,
    /// Index of the matching tuple of the negative relation `s`
    /// (overlapping windows only; `None` means `Fs = null`).
    pub s_idx: Option<usize>,
    /// `λr` — the lineage of the valid tuple of `r` over `T`.
    pub lambda_r: L,
    /// `λs` — for overlapping windows the lineage of the matching `s` tuple;
    /// for negating windows the disjunction of the lineages of all valid,
    /// θ-matching `s` tuples over `T`; for unmatched windows `None` (null).
    pub lambda_s: Option<L>,
}

/// A destination for produced windows: the materializing algorithms write
/// into a `Vec`, the streaming adaptors into their reusable `VecDeque` group
/// buffer. Keeping the sweep kernels generic over the sink is what lets the
/// streaming path run without per-group intermediate vectors.
pub(crate) trait WindowSink<L> {
    /// Accepts one produced window.
    fn put(&mut self, w: Window<L>);
}

impl<L> WindowSink<L> for Vec<Window<L>> {
    fn put(&mut self, w: Window<L>) {
        self.push(w);
    }
}

impl<L> WindowSink<L> for std::collections::VecDeque<Window<L>> {
    fn put(&mut self, w: Window<L>) {
        self.push_back(w);
    }
}

impl<L> Window<L> {
    /// Creates an overlapping window for the pair `(r[r_idx], s[s_idx])`.
    #[must_use]
    pub fn overlapping(
        interval: Interval,
        r_idx: usize,
        s_idx: usize,
        lambda_r: L,
        lambda_s: L,
    ) -> Self {
        Self {
            kind: WindowKind::Overlapping,
            interval,
            r_idx,
            s_idx: Some(s_idx),
            lambda_r,
            lambda_s: Some(lambda_s),
        }
    }

    /// Creates an unmatched window for `r[r_idx]`.
    #[must_use]
    pub fn unmatched(interval: Interval, r_idx: usize, lambda_r: L) -> Self {
        Self {
            kind: WindowKind::Unmatched,
            interval,
            r_idx,
            s_idx: None,
            lambda_r,
            lambda_s: None,
        }
    }

    /// Creates a negating window for `r[r_idx]` with the disjunction
    /// `lambda_s` of the matching negative lineages.
    #[must_use]
    pub fn negating(interval: Interval, r_idx: usize, lambda_r: L, lambda_s: L) -> Self {
        Self {
            kind: WindowKind::Negating,
            interval,
            r_idx,
            s_idx: None,
            lambda_r,
            lambda_s: Some(lambda_s),
        }
    }

    /// Is this an overlapping window?
    #[must_use]
    pub fn is_overlapping(&self) -> bool {
        self.kind == WindowKind::Overlapping
    }

    /// Is this an unmatched window?
    #[must_use]
    pub fn is_unmatched(&self) -> bool {
        self.kind == WindowKind::Unmatched
    }

    /// Is this a negating window?
    #[must_use]
    pub fn is_negating(&self) -> bool {
        self.kind == WindowKind::Negating
    }
}

impl Window<Lineage> {
    /// Renders the window against its input relations, using the lineage
    /// symbol names of `syms` (useful in examples and tests).
    #[must_use]
    pub fn display_with(
        &self,
        r: &TpRelation,
        s: &TpRelation,
        syms: &tpdb_lineage::SymbolTable,
    ) -> String {
        let fr: Vec<String> = r
            .tuple(self.r_idx)
            .facts()
            .iter()
            .map(|v| v.to_string())
            .collect();
        let fs = match self.s_idx {
            Some(i) => s
                .tuple(i)
                .facts()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(","),
            None => "null".to_owned(),
        };
        let ls = match &self.lambda_s {
            Some(l) => l.display_with(syms),
            None => "null".to_owned(),
        };
        format!(
            "{}({}; {}; {}; {}; {})",
            self.kind,
            fr.join(","),
            fs,
            self.interval,
            self.lambda_r.display_with(syms),
            ls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_lineage::{SymbolTable, VarId};

    #[test]
    fn constructors_set_kinds_and_nulls() {
        let lr = Lineage::var(VarId(0));
        let ls = Lineage::var(VarId(1));
        let o = Window::overlapping(Interval::new(4, 6), 0, 2, lr.clone(), ls.clone());
        assert!(o.is_overlapping());
        assert_eq!(o.s_idx, Some(2));
        assert_eq!(o.lambda_s, Some(ls.clone()));

        let u = Window::unmatched(Interval::new(2, 4), 0, lr.clone());
        assert!(u.is_unmatched());
        assert!(u.s_idx.is_none());
        assert!(u.lambda_s.is_none());

        let n = Window::negating(
            Interval::new(5, 6),
            0,
            lr,
            Lineage::or2(ls, Lineage::var(VarId(2))),
        );
        assert!(n.is_negating());
        assert!(n.s_idx.is_none());
        assert!(n.lambda_s.is_some());
    }

    #[test]
    fn kind_display() {
        assert_eq!(WindowKind::Overlapping.to_string(), "WO");
        assert_eq!(WindowKind::Unmatched.to_string(), "WU");
        assert_eq!(WindowKind::Negating.to_string(), "WN");
    }

    #[test]
    fn display_with_uses_symbols() {
        use tpdb_storage::{DataType, Schema, TpTuple, Value};
        let mut syms = SymbolTable::new();
        let a1 = syms.intern("a1");
        let b3 = syms.intern("b3");
        let mut r = TpRelation::new("a", Schema::tp(&[("Name", DataType::Str)]));
        r.push(TpTuple::new(
            vec![Value::str("Ann")],
            Lineage::var(a1),
            Interval::new(2, 8),
            0.7,
        ))
        .unwrap();
        let mut s = TpRelation::new("b", Schema::tp(&[("Hotel", DataType::Str)]));
        s.push(TpTuple::new(
            vec![Value::str("hotel1")],
            Lineage::var(b3),
            Interval::new(4, 6),
            0.7,
        ))
        .unwrap();
        let w = Window::overlapping(
            Interval::new(4, 6),
            0,
            0,
            Lineage::var(a1),
            Lineage::var(b3),
        );
        let text = w.display_with(&r, &s, &syms);
        assert!(text.contains("WO"));
        assert!(text.contains("Ann"));
        assert!(text.contains("hotel1"));
        assert!(text.contains("a1"));
    }
}
