//! Pipelined (streaming) window operators.
//!
//! The paper's central systems claim is that the window computation can be
//! *pipelined*: unmatched and negating windows are derived incrementally
//! from the stream of overlapping windows, without materializing
//! intermediate relations or replicating tuples. [`LawauStream`] and
//! [`LawanStream`] are iterator adaptors implementing exactly that: they
//! consume an upstream window iterator grouped by `r` tuple and emit the
//! extended window stream, buffering at most one group (the windows of a
//! single `r` tuple) at a time. The Volcano-style physical operators of
//! `tpdb-query` are thin wrappers around these adaptors.

use crate::lawan;
use crate::lawau;
use crate::window::Window;
use std::collections::VecDeque;
use std::sync::Arc;
use tpdb_storage::TpRelation;

/// A stream of generalized lineage-aware temporal windows grouped by the
/// originating tuple of the positive relation.
pub trait WindowStream: Iterator<Item = Window> {}

impl<T: Iterator<Item = Window>> WindowStream for T {}

/// Streaming LAWAU: extends a stream of overlap-join windows with the
/// remaining unmatched windows, one `r`-tuple group at a time.
#[derive(Debug)]
pub struct LawauStream<I: Iterator<Item = Window>> {
    input: std::iter::Peekable<I>,
    positive: Arc<TpRelation>,
    ready: VecDeque<Window>,
}

impl<I: Iterator<Item = Window>> LawauStream<I> {
    /// Wraps `input` (grouped by `r_idx`, sorted by start within groups).
    pub fn new(input: I, positive: Arc<TpRelation>) -> Self {
        Self {
            input: input.peekable(),
            positive,
            ready: VecDeque::new(),
        }
    }

    /// Pulls the next complete group from the input and runs the LAWAU sweep
    /// over it.
    fn fill(&mut self) {
        let Some(first) = self.input.peek() else {
            return;
        };
        let r_idx = first.r_idx;
        let mut group = Vec::new();
        while let Some(w) = self.input.peek() {
            if w.r_idx != r_idx {
                break;
            }
            group.push(self.input.next().expect("peeked"));
        }
        let mut out = Vec::with_capacity(group.len() + 2);
        lawau::sweep_group(&group, &self.positive, &mut out);
        self.ready.extend(out);
    }
}

impl<I: Iterator<Item = Window>> Iterator for LawauStream<I> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.ready.is_empty() {
            self.fill();
        }
        self.ready.pop_front()
    }
}

/// Streaming LAWAN: extends a `WUO` stream with the negating windows, one
/// `r`-tuple group at a time.
#[derive(Debug)]
pub struct LawanStream<I: Iterator<Item = Window>> {
    input: std::iter::Peekable<I>,
    ready: VecDeque<Window>,
}

impl<I: Iterator<Item = Window>> LawanStream<I> {
    /// Wraps `input` (grouped by `r_idx`).
    pub fn new(input: I) -> Self {
        Self {
            input: input.peekable(),
            ready: VecDeque::new(),
        }
    }

    fn fill(&mut self) {
        let Some(first) = self.input.peek() else {
            return;
        };
        let r_idx = first.r_idx;
        let mut group = Vec::new();
        while let Some(w) = self.input.peek() {
            if w.r_idx != r_idx {
                break;
            }
            group.push(self.input.next().expect("peeked"));
        }
        let mut out = Vec::with_capacity(group.len() * 2);
        lawan::sweep_group(&group, &mut out);
        self.ready.extend(out);
    }
}

impl<I: Iterator<Item = Window>> Iterator for LawanStream<I> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.ready.is_empty() {
            self.fill();
        }
        self.ready.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::overlapping_windows;
    use crate::testutil::booking_relations;
    use crate::theta::ThetaCondition;

    fn setup() -> (Vec<Window>, Arc<TpRelation>) {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let wo = overlapping_windows(&a, &b, &theta).unwrap();
        (wo, Arc::new(a))
    }

    #[test]
    fn streaming_lawau_matches_materializing_lawau() {
        let (wo, a) = setup();
        let materialized = lawau::lawau(&wo, &a);
        let streamed: Vec<Window> = LawauStream::new(wo.into_iter(), Arc::clone(&a)).collect();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn streaming_lawan_matches_materializing_lawan() {
        let (wo, a) = setup();
        let wuo = lawau::lawau(&wo, &a);
        let materialized = lawan::lawan(&wuo);
        let streamed: Vec<Window> = LawanStream::new(wuo.into_iter()).collect();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn full_pipeline_is_composable() {
        let (wo, a) = setup();
        let expected = lawan::lawan(&lawau::lawau(&wo, &a));
        let piped: Vec<Window> =
            LawanStream::new(LawauStream::new(wo.into_iter(), Arc::clone(&a))).collect();
        assert_eq!(piped, expected);
    }

    #[test]
    fn empty_stream() {
        let (_, a) = setup();
        let piped: Vec<Window> =
            LawanStream::new(LawauStream::new(std::iter::empty(), a)).collect();
        assert!(piped.is_empty());
    }
}
