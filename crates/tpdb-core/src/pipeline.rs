//! Pipelined (streaming) window operators.
//!
//! The paper's central systems claim is that the window computation can be
//! *pipelined*: unmatched and negating windows are derived incrementally
//! from the stream of overlapping windows, without materializing
//! intermediate relations or replicating tuples. [`LawauStream`] and
//! [`LawanStream`] are iterator adaptors implementing exactly that: they
//! consume an upstream window iterator grouped by `r` tuple and emit the
//! extended window stream, buffering at most one group (the windows of a
//! single `r` tuple) at a time. Stacked on top of
//! [`OverlapWindowStream`](crate::overlap::OverlapWindowStream) they form
//! the fully streaming NJ pipeline that
//! [`tp_join`](crate::join::tp_join) executes:
//!
//! ```text
//! OverlapWindowStream → LawauStream → LawanStream → output formation
//! ```
//!
//! Each adaptor owns two reusable buffers — the current input group and the
//! group's output windows — so the steady-state streaming path performs no
//! per-group allocations: buffers are cleared and refilled in place, and
//! windows move (rather than clone) from the output buffer to the consumer.
//!
//! The positive relation is held through any [`Borrow`]`<TpRelation>`, so
//! the adaptors work with plain references inside a join operator and with
//! `Arc<TpRelation>` in long-lived cursors alike.
//!
//! ```
//! use tpdb_core::{LawanStream, LawauStream, OverlapWindowStream, ThetaCondition};
//!
//! let (a, b) = tpdb_datagen::booking_example();
//! let theta = ThetaCondition::column_equals("Loc", "Loc");
//!
//! // The full streaming pipeline: overlap join → LAWAU → LAWAN. For the
//! // paper's running example it produces the seven windows behind the
//! // seven answer tuples of Fig. 1b.
//! let overlap = OverlapWindowStream::new(&a, &b, &theta).unwrap();
//! let windows: Vec<_> = LawanStream::new(LawauStream::new(overlap, &a)).collect();
//! assert_eq!(windows.len(), 7);
//! assert_eq!(windows.iter().filter(|w| w.is_negating()).count(), 3);
//! ```

use crate::lawan;
use crate::lawau;
use crate::window::Window;
use std::borrow::Borrow;
use std::collections::VecDeque;
use tpdb_storage::TpRelation;

/// A stream of generalized lineage-aware temporal windows grouped by the
/// originating tuple of the positive relation.
pub trait WindowStream: Iterator<Item = Window> {}

impl<T: Iterator<Item = Window>> WindowStream for T {}

/// Pulls the next complete `r`-tuple group from `input` into `group`
/// (cleared first). Returns `false` when the input is exhausted.
fn next_group<I: Iterator<Item = Window>>(
    input: &mut std::iter::Peekable<I>,
    group: &mut Vec<Window>,
) -> bool {
    group.clear();
    let Some(first) = input.peek() else {
        return false;
    };
    let r_idx = first.r_idx;
    while let Some(w) = input.peek() {
        if w.r_idx != r_idx {
            break;
        }
        group.push(input.next().expect("peeked"));
    }
    true
}

/// Streaming LAWAU: extends a stream of overlap-join windows with the
/// remaining unmatched windows, one `r`-tuple group at a time.
#[derive(Debug)]
pub struct LawauStream<I: Iterator<Item = Window>, P: Borrow<TpRelation>> {
    input: std::iter::Peekable<I>,
    positive: P,
    /// Scratch buffer holding the current input group (reused across
    /// groups).
    group: Vec<Window>,
    /// Output buffer of the current group (reused across groups); windows
    /// are moved out of the front.
    ready: VecDeque<Window>,
}

impl<I: Iterator<Item = Window>, P: Borrow<TpRelation>> LawauStream<I, P> {
    /// Wraps `input` (grouped by `r_idx`, sorted by start within groups).
    pub fn new(input: I, positive: P) -> Self {
        Self {
            input: input.peekable(),
            positive,
            group: Vec::new(),
            ready: VecDeque::new(),
        }
    }

    /// Pulls the next complete group from the input and runs the LAWAU sweep
    /// over it.
    fn fill(&mut self) {
        if next_group(&mut self.input, &mut self.group) {
            lawau::sweep_group(&self.group, self.positive.borrow(), &mut self.ready);
        }
    }
}

impl<I: Iterator<Item = Window>, P: Borrow<TpRelation>> Iterator for LawauStream<I, P> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.ready.is_empty() {
            self.fill();
        }
        self.ready.pop_front()
    }
}

/// Streaming LAWAN: extends a `WUO` stream with the negating windows, one
/// `r`-tuple group at a time.
#[derive(Debug)]
pub struct LawanStream<I: Iterator<Item = Window>> {
    input: std::iter::Peekable<I>,
    /// Scratch buffer holding the current input group (reused across
    /// groups).
    group: Vec<Window>,
    /// Output buffer of the current group (reused across groups).
    ready: VecDeque<Window>,
}

impl<I: Iterator<Item = Window>> LawanStream<I> {
    /// Wraps `input` (grouped by `r_idx`).
    pub fn new(input: I) -> Self {
        Self {
            input: input.peekable(),
            group: Vec::new(),
            ready: VecDeque::new(),
        }
    }

    fn fill(&mut self) {
        if next_group(&mut self.input, &mut self.group) {
            lawan::sweep_group(&self.group, &mut self.ready);
        }
    }
}

impl<I: Iterator<Item = Window>> Iterator for LawanStream<I> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.ready.is_empty() {
            self.fill();
        }
        self.ready.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::{overlapping_windows, OverlapWindowStream};
    use crate::testutil::booking_relations;
    use crate::theta::ThetaCondition;
    use std::sync::Arc;

    fn setup() -> (Vec<Window>, Arc<TpRelation>) {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let wo = overlapping_windows(&a, &b, &theta).unwrap();
        (wo, Arc::new(a))
    }

    #[test]
    fn streaming_lawau_matches_materializing_lawau() {
        let (wo, a) = setup();
        let materialized = lawau::lawau(&wo, &a);
        let streamed: Vec<Window> = LawauStream::new(wo.into_iter(), Arc::clone(&a)).collect();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn streaming_lawan_matches_materializing_lawan() {
        let (wo, a) = setup();
        let wuo = lawau::lawau(&wo, &a);
        let materialized = lawan::lawan(&wuo);
        let streamed: Vec<Window> = LawanStream::new(wuo.into_iter()).collect();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn full_pipeline_is_composable() {
        let (wo, a) = setup();
        let expected = lawan::lawan(&lawau::lawau(&wo, &a));
        let piped: Vec<Window> =
            LawanStream::new(LawauStream::new(wo.into_iter(), Arc::clone(&a))).collect();
        assert_eq!(piped, expected);
    }

    #[test]
    fn streams_borrow_plain_references_too() {
        // The fully streaming pipeline: no window vector is ever built.
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let wo = overlapping_windows(&a, &b, &theta).unwrap();
        let expected = lawan::lawan(&lawau::lawau(&wo, &a));
        let overlap = OverlapWindowStream::new(&a, &b, &theta).unwrap();
        let piped: Vec<Window> = LawanStream::new(LawauStream::new(overlap, &a)).collect();
        assert_eq!(piped, expected);
    }

    #[test]
    fn empty_stream() {
        let (_, a) = setup();
        let piped: Vec<Window> =
            LawanStream::new(LawauStream::new(std::iter::empty(), a)).collect();
        assert!(piped.is_empty());
    }
}
