//! Pipelined (streaming) window operators.
//!
//! The paper's central systems claim is that the window computation can be
//! *pipelined*: unmatched and negating windows are derived incrementally
//! from the stream of overlapping windows, without materializing
//! intermediate relations or replicating tuples. [`LawauStream`] and
//! [`LawanStream`] are iterator adaptors implementing exactly that: they
//! consume an upstream window iterator grouped by `r` tuple and emit the
//! extended window stream, buffering at most one group (the windows of a
//! single `r` tuple) at a time. Stacked on top of
//! [`OverlapWindowStream`](crate::overlap::OverlapWindowStream) they form
//! the fully streaming NJ pipeline that
//! [`tp_join`](crate::join::tp_join) executes:
//!
//! ```text
//! OverlapWindowStream → LawauStream → LawanStream → output formation
//! ```
//!
//! Each adaptor owns two reusable buffers — the current input group and the
//! group's output windows — so the steady-state streaming path performs no
//! per-group allocations: buffers are cleared and refilled in place, and
//! windows move (rather than clone) from the output buffer to the consumer.
//!
//! The positive relation is held through any [`Borrow`]`<TpRelation>`, so
//! the adaptors work with plain references inside a join operator and with
//! `Arc<TpRelation>` in long-lived cursors alike.
//!
//! ```
//! use tpdb_core::{LawanStream, LawauStream, OverlapWindowStream, ThetaCondition};
//!
//! let (a, b) = tpdb_datagen::booking_example();
//! let theta = ThetaCondition::column_equals("Loc", "Loc");
//!
//! // The full streaming pipeline: overlap join → LAWAU → LAWAN. For the
//! // paper's running example it produces the seven windows behind the
//! // seven answer tuples of Fig. 1b.
//! let overlap = OverlapWindowStream::new(&a, &b, &theta).unwrap();
//! let windows: Vec<_> = LawanStream::new(LawauStream::new(overlap, &a)).collect();
//! assert_eq!(windows.len(), 7);
//! assert_eq!(windows.iter().filter(|w| w.is_negating()).count(), 3);
//! ```

use crate::lawan;
use crate::lawau;
use crate::window::Window;
use std::borrow::Borrow;
use std::collections::VecDeque;
use std::sync::Arc;
use tpdb_lineage::{Lineage, LineageInterner, LineageRef};
use tpdb_storage::TpRelation;

/// A stream of generalized lineage-aware temporal windows grouped by the
/// originating tuple of the positive relation.
pub trait WindowStream: Iterator<Item = Window> {}

impl<T: Iterator<Item = Window>> WindowStream for T {}

/// Pulls the next complete `r`-tuple group from `input` into `group`
/// (cleared first). Returns the group's `r_idx`, or `None` when the input
/// is exhausted (`Some` implies a non-empty group).
fn next_group<L, I: Iterator<Item = Window<L>>>(
    input: &mut std::iter::Peekable<I>,
    group: &mut Vec<Window<L>>,
) -> Option<usize> {
    group.clear();
    let r_idx = input.peek()?.r_idx;
    while let Some(w) = input.next_if(|w| w.r_idx == r_idx) {
        group.push(w);
    }
    Some(r_idx)
}

/// Streaming LAWAU: extends a stream of overlap-join windows with the
/// remaining unmatched windows, one `r`-tuple group at a time.
///
/// Generic over the lineage representation `L` of the windows: the default
/// [`Lineage`] stream reads each group's `λr` from the positive relation,
/// while the interned stream (built through the crate-internal
/// `with_lineages` constructor) reads it from the pre-interned lineage
/// column shared with the upstream overlap stream.
#[derive(Debug)]
pub struct LawauStream<I: Iterator<Item = Window<L>>, P: Borrow<TpRelation>, L = Lineage> {
    input: std::iter::Peekable<I>,
    positive: P,
    /// The positive side's lineage column for non-tree representations
    /// (`None` on the default [`Lineage`] path, which clones from the
    /// relation instead).
    lins: Option<Arc<Vec<L>>>,
    /// Scratch buffer holding the current input group (reused across
    /// groups).
    group: Vec<Window<L>>,
    /// Output buffer of the current group (reused across groups); windows
    /// are moved out of the front.
    ready: VecDeque<Window<L>>,
}

impl<I: Iterator<Item = Window<L>>, P: Borrow<TpRelation>, L> LawauStream<I, P, L> {
    /// Wraps `input` (grouped by `r_idx`, sorted by start within groups).
    pub fn new(input: I, positive: P) -> Self {
        Self {
            input: input.peekable(),
            positive,
            lins: None,
            group: Vec::new(),
            ready: VecDeque::new(),
        }
    }
}

impl<I, P> LawauStream<I, P, LineageRef>
where
    I: Iterator<Item = Window<LineageRef>>,
    P: Borrow<TpRelation>,
{
    /// Wraps an interned window stream, taking the positive side's interned
    /// lineage column (`Arc`-shared with the upstream
    /// [`OverlapWindowStream`](crate::overlap::OverlapWindowStream)) for the
    /// per-group `λr`.
    pub(crate) fn with_lineages(input: I, positive: P, lins: Arc<Vec<LineageRef>>) -> Self {
        Self {
            input: input.peekable(),
            positive,
            lins: Some(lins),
            group: Vec::new(),
            ready: VecDeque::new(),
        }
    }
}

impl<I: Iterator<Item = Window>, P: Borrow<TpRelation>> Iterator for LawauStream<I, P, Lineage> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.ready.is_empty() {
            if let Some(r_idx) = next_group(&mut self.input, &mut self.group) {
                let r_tuple = self.positive.borrow().tuple(r_idx);
                lawau::sweep_group(
                    &self.group,
                    r_tuple.interval(),
                    r_tuple.lineage(),
                    &mut self.ready,
                );
            }
        }
        self.ready.pop_front()
    }
}

impl<I, P> Iterator for LawauStream<I, P, LineageRef>
where
    I: Iterator<Item = Window<LineageRef>>,
    P: Borrow<TpRelation>,
{
    type Item = Window<LineageRef>;

    fn next(&mut self) -> Option<Window<LineageRef>> {
        if self.ready.is_empty() {
            if let Some(r_idx) = next_group(&mut self.input, &mut self.group) {
                let interval = self.positive.borrow().tuple(r_idx).interval();
                let lins = self
                    .lins
                    .as_ref()
                    // `with_lineages` is the only `LineageRef` constructor,
                    // so the column is always present.
                    // tpdb-lint: allow(no-panic-in-lib)
                    .expect("interned LAWAU streams carry the lineage column");
                lawau::sweep_group(&self.group, interval, &lins[r_idx], &mut self.ready);
            }
        }
        self.ready.pop_front()
    }
}

/// Streaming LAWAN: extends a `WUO` stream with the negating windows, one
/// `r`-tuple group at a time.
///
/// The default [`Lineage`] stream is a plain [`Iterator`]; the interned
/// stream is driven through the crate-internal `next_with`, which takes
/// the interner the negating windows' `λs` disjunctions are built in.
#[derive(Debug)]
pub struct LawanStream<I: Iterator<Item = Window<L>>, L = Lineage> {
    input: std::iter::Peekable<I>,
    /// Scratch buffer holding the current input group (reused across
    /// groups).
    group: Vec<Window<L>>,
    /// Output buffer of the current group (reused across groups).
    ready: VecDeque<Window<L>>,
}

impl<I: Iterator<Item = Window<L>>, L> LawanStream<I, L> {
    /// Wraps `input` (grouped by `r_idx`).
    pub fn new(input: I) -> Self {
        Self {
            input: input.peekable(),
            group: Vec::new(),
            ready: VecDeque::new(),
        }
    }
}

impl<I: Iterator<Item = Window>> Iterator for LawanStream<I, Lineage> {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.ready.is_empty() && next_group(&mut self.input, &mut self.group).is_some() {
            lawan::sweep_group(&self.group, &mut self.ready);
        }
        self.ready.pop_front()
    }
}

impl<I: Iterator<Item = Window<LineageRef>>> LawanStream<I, LineageRef> {
    /// The next window of the interned stream; `interner` receives the
    /// `λs` disjunction nodes of emitted negating windows.
    pub(crate) fn next_with(
        &mut self,
        interner: &mut LineageInterner,
    ) -> Option<Window<LineageRef>> {
        if self.ready.is_empty() && next_group(&mut self.input, &mut self.group).is_some() {
            lawan::sweep_group_interned(&self.group, interner, &mut self.ready);
        }
        self.ready.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::{overlapping_windows, OverlapWindowStream};
    use crate::testutil::booking_relations;
    use crate::theta::ThetaCondition;
    use std::sync::Arc;

    fn setup() -> (Vec<Window>, Arc<TpRelation>) {
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let wo = overlapping_windows(&a, &b, &theta).unwrap();
        (wo, Arc::new(a))
    }

    #[test]
    fn streaming_lawau_matches_materializing_lawau() {
        let (wo, a) = setup();
        let materialized = lawau::lawau(&wo, &a);
        let streamed: Vec<Window> = LawauStream::new(wo.into_iter(), Arc::clone(&a)).collect();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn streaming_lawan_matches_materializing_lawan() {
        let (wo, a) = setup();
        let wuo = lawau::lawau(&wo, &a);
        let materialized = lawan::lawan(&wuo);
        let streamed: Vec<Window> = LawanStream::new(wuo.into_iter()).collect();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn full_pipeline_is_composable() {
        let (wo, a) = setup();
        let expected = lawan::lawan(&lawau::lawau(&wo, &a));
        let piped: Vec<Window> =
            LawanStream::new(LawauStream::new(wo.into_iter(), Arc::clone(&a))).collect();
        assert_eq!(piped, expected);
    }

    #[test]
    fn streams_borrow_plain_references_too() {
        // The fully streaming pipeline: no window vector is ever built.
        let (a, b, _) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let wo = overlapping_windows(&a, &b, &theta).unwrap();
        let expected = lawan::lawan(&lawau::lawau(&wo, &a));
        let overlap = OverlapWindowStream::new(&a, &b, &theta).unwrap();
        let piped: Vec<Window> = LawanStream::new(LawauStream::new(overlap, &a)).collect();
        assert_eq!(piped, expected);
    }

    #[test]
    fn empty_stream() {
        let (_, a) = setup();
        let piped: Vec<Window> =
            LawanStream::new(LawauStream::new(std::iter::empty::<Window>(), a)).collect();
        assert!(piped.is_empty());
    }
}
