//! LAWAU — the Lineage-Aware Window Algorithm for Unmatched windows
//! (Section III-B).
//!
//! LAWAU extends the result of the overlap join `r ⟕_{θo∧θ} s` with the
//! *remaining* unmatched windows: the maximal sub-intervals of an `r` tuple
//! during which no θ-matching tuple of `s` is valid. The input windows are
//! grouped by the originating `r` tuple (fact `Fr` and interval) and sorted
//! by the starting point of the overlapping intervals; a single sweep over
//! each group fills the uncovered gaps.
//!
//! The five cases of Fig. 3 of the paper describe how the ending point
//! `windTe` of the sweeping window is determined; in this implementation the
//! sweep keeps a *coverage cursor* (the largest end point of any overlapping
//! window seen so far) and the cases map onto it as follows:
//!
//! * **Case 1/2** — the next overlapping window starts after the cursor:
//!   the sweeping window ends at that start point and an unmatched window
//!   `[cursor, next.start)` is produced.
//! * **Case 3/4** — the next overlapping window starts at or before the
//!   cursor: no gap; the cursor advances to `max(cursor, next.end)`.
//! * **Case 5** — the group is exhausted and the cursor lies before the end
//!   of the `r` tuple's interval: a final unmatched window
//!   `[cursor, r.Te)` is produced.

use crate::window::{Window, WindowSink};
use tpdb_storage::TpRelation;
use tpdb_temporal::Interval;

/// Runs LAWAU over the output of
/// [`overlapping_windows`](crate::overlap::overlapping_windows).
///
/// `windows` must be grouped by `r_idx` and sorted by window start within
/// each group (the order the overlap join produces). The result `WUO`
/// contains every input window plus the newly created unmatched windows,
/// grouped by `r_idx` and sorted by start within each group.
#[must_use]
pub fn lawau(windows: &[Window], r: &TpRelation) -> Vec<Window> {
    let mut out: Vec<Window> = Vec::with_capacity(windows.len() + windows.len() / 2);
    let mut idx = 0;
    while idx < windows.len() {
        let r_idx = windows[idx].r_idx;
        let group_start = idx;
        while idx < windows.len() && windows[idx].r_idx == r_idx {
            idx += 1;
        }
        let r_tuple = r.tuple(r_idx);
        sweep_group(
            &windows[group_start..idx],
            r_tuple.interval(),
            r_tuple.lineage(),
            &mut out,
        );
    }
    out
}

/// Sweeps one group (all windows of a single `r` tuple), copying the
/// existing windows to the output and inserting the gap-filling unmatched
/// windows in chronological position. Generic over the lineage
/// representation: `r_interval`/`lambda_r` describe the originating `r`
/// tuple (the interned pipeline passes the tuple's [`LineageRef`] here, so
/// the sweep never touches a formula tree).
pub(crate) fn sweep_group<L: Clone>(
    group: &[Window<L>],
    r_interval: Interval,
    lambda_r: &L,
    out: &mut impl WindowSink<L>,
) {
    let Some(first) = group.first() else {
        return;
    };
    let r_idx = first.r_idx;

    // Whole-interval unmatched windows (produced by the outer part of the
    // overlap join) already cover the entire tuple: copy and return.
    if group.len() == 1 && first.is_unmatched() && first.interval == r_interval {
        out.put(first.clone());
        return;
    }

    // `cursor` is the end of the covered prefix of r.T (Cases 3/4 advance
    // it, Cases 1/2 emit a gap before it advances).
    let mut cursor = r_interval.start();
    for w in group {
        let ws = w.interval.start();
        if ws > cursor {
            // Cases 1/2: a gap [cursor, ws) not covered by any overlapping
            // window — emit an unmatched window.
            out.put(Window::unmatched(
                Interval::new(cursor, ws),
                r_idx,
                // Generic over L: a `u32` copy on the interned path.
                // tpdb-lint: allow(no-lineage-clone-in-streams)
                lambda_r.clone(),
            ));
        }
        out.put(w.clone());
        cursor = cursor.max(w.interval.end());
    }
    if cursor < r_interval.end() {
        // Case 5: the suffix of r.T after the last overlapping window.
        out.put(Window::unmatched(
            Interval::new(cursor, r_interval.end()),
            r_idx,
            // Generic over L: a `u32` copy on the interned path.
            // tpdb-lint: allow(no-lineage-clone-in-streams)
            lambda_r.clone(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::overlapping_windows;
    use crate::testutil::booking_relations;
    use crate::theta::ThetaCondition;
    use crate::window::WindowKind;
    use tpdb_lineage::Lineage;
    use tpdb_storage::{DataType, Schema, TpTuple, Value};

    fn run_booking() -> (
        Vec<Window>,
        TpRelation,
        TpRelation,
        tpdb_lineage::SymbolTable,
    ) {
        let (a, b, syms) = booking_relations();
        let theta = ThetaCondition::column_equals("Loc", "Loc");
        let wo = overlapping_windows(&a, &b, &theta).unwrap();
        let wuo = lawau(&wo, &a);
        (wuo, a, b, syms)
    }

    #[test]
    fn paper_example_unmatched_windows() {
        let (wuo, _, _, _) = run_booking();
        // Fig. 2: WU = { w1 = (a1, null, [2,4)), w2 = (a2, null, [7,10)) }
        //         WO = { w3 = (a1, b3, [4,6)), w4 = (a1, b2, [5,8)) }
        assert_eq!(wuo.len(), 4);
        let unmatched: Vec<&Window> = wuo.iter().filter(|w| w.is_unmatched()).collect();
        assert_eq!(unmatched.len(), 2);
        assert_eq!(unmatched[0].r_idx, 0);
        assert_eq!(unmatched[0].interval, Interval::new(2, 4));
        assert_eq!(unmatched[1].r_idx, 1);
        assert_eq!(unmatched[1].interval, Interval::new(7, 10));
        // overlapping windows are passed through untouched
        assert_eq!(wuo.iter().filter(|w| w.is_overlapping()).count(), 2);
    }

    #[test]
    fn output_keeps_group_and_start_order() {
        let (wuo, _, _, _) = run_booking();
        let keys: Vec<(usize, i64)> = wuo.iter().map(|w| (w.r_idx, w.interval.start())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    /// Builds a single-column positive relation with one tuple spanning
    /// `[0, 20)` and a negative relation with the given matching intervals,
    /// then returns the unmatched windows LAWAU produces for the tuple.
    fn gaps_for(negative_intervals: &[(i64, i64)]) -> Vec<Interval> {
        let mut syms = tpdb_lineage::SymbolTable::new();
        let mut r = TpRelation::new("r", Schema::tp(&[("k", DataType::Int)]));
        r.push(TpTuple::new(
            vec![Value::Int(1)],
            Lineage::var(syms.intern("r1")),
            Interval::new(0, 20),
            0.5,
        ))
        .unwrap();
        let mut s = TpRelation::new("s", Schema::tp(&[("k", DataType::Int)]));
        for (i, (a, b)) in negative_intervals.iter().enumerate() {
            s.push(TpTuple::new(
                vec![Value::Int(1)],
                Lineage::var(syms.intern(&format!("s{i}"))),
                Interval::new(*a, *b),
                0.5,
            ))
            .unwrap();
        }
        let theta = ThetaCondition::column_equals("k", "k");
        let wo = overlapping_windows(&r, &s, &theta).unwrap();
        lawau(&wo, &r)
            .into_iter()
            .filter(|w| w.is_unmatched())
            .map(|w| w.interval)
            .collect()
    }

    #[test]
    fn case1_gap_before_first_overlap() {
        assert_eq!(gaps_for(&[(5, 20)]), vec![Interval::new(0, 5)]);
    }

    #[test]
    fn case2_gap_between_overlaps() {
        assert_eq!(gaps_for(&[(0, 5), (10, 20)]), vec![Interval::new(5, 10)]);
    }

    #[test]
    fn case3_contained_overlap_produces_no_extra_gap() {
        // second negative interval is contained in the coverage of the first
        assert_eq!(gaps_for(&[(0, 12), (3, 6)]), vec![Interval::new(12, 20)]);
    }

    #[test]
    fn case4_chained_overlaps_extend_coverage() {
        assert_eq!(gaps_for(&[(0, 8), (6, 20)]), vec![]);
    }

    #[test]
    fn case5_suffix_gap_after_last_overlap() {
        assert_eq!(gaps_for(&[(0, 15)]), vec![Interval::new(15, 20)]);
    }

    #[test]
    fn multiple_gaps_and_exact_cover() {
        assert_eq!(
            gaps_for(&[(2, 4), (8, 10), (14, 16)]),
            vec![
                Interval::new(0, 2),
                Interval::new(4, 8),
                Interval::new(10, 14),
                Interval::new(16, 20)
            ]
        );
        assert_eq!(gaps_for(&[(0, 20)]), vec![]);
    }

    #[test]
    fn whole_interval_unmatched_windows_pass_through_unchanged() {
        let (wuo, a, _, _) = run_booking();
        let jim = wuo.iter().filter(|w| w.r_idx == 1).collect::<Vec<_>>();
        assert_eq!(jim.len(), 1);
        assert_eq!(jim[0].kind, WindowKind::Unmatched);
        assert_eq!(jim[0].interval, a.tuple(1).interval());
    }

    #[test]
    fn unmatched_windows_cover_exactly_the_uncovered_part() {
        // Point-wise check on the paper example: for every time point of a1,
        // either an overlapping or an unmatched window covers it, never both.
        let (wuo, a, _, _) = run_booking();
        let a1 = a.tuple(0).interval();
        for t in a1.points() {
            let in_overlap = wuo
                .iter()
                .any(|w| w.r_idx == 0 && w.is_overlapping() && w.interval.contains_point(t));
            let in_unmatched = wuo
                .iter()
                .any(|w| w.r_idx == 0 && w.is_unmatched() && w.interval.contains_point(t));
            assert!(in_overlap ^ in_unmatched, "t = {t}");
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let (a, _, _) = booking_relations();
        assert!(lawau(&[], &a).is_empty());
    }
}
